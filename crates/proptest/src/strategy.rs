//! Value-generation strategies: deterministic, non-shrinking analogues of
//! `proptest::strategy`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by the test runner (xoshiro256\*\*).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    pub fn seed_from_u64(state: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut sm = state;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// `impl Strategy for &S` lets `proptest!` sample from `&($strat)` and also
// reuse a strategy by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128).wrapping_sub(self.start as i128);
                assert!(span > 0, "empty integer strategy range");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128) - (lo as i128) + 1;
                assert!(span > 0, "empty integer strategy range");
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Weighted union over same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights changed mid-sample")
    }
}

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive; hi == lo means "exactly lo"
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi > self.size.lo {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        } else {
            self.size.lo
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// `any::<T>()`: the full-range strategy for a primitive type.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive types supported by [`any`].
pub trait ArbitraryValue: Sized {
    /// Draws a full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = (1usize..7).sample(&mut rng);
            assert!((1..7).contains(&x));
            let f = (-2.0..2.0f64).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
        let v = vec(0usize..10, 3..6).sample(&mut rng);
        assert!((3..6).contains(&v.len()));
        let exact = vec(0usize..10, 4).sample(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn map_tuple_just_union_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (0usize..5, 0usize..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) <= 8);
        }
        let u = Union::new(vec![(3, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        for _ in 0..50 {
            let v = u.sample(&mut rng);
            assert!(v == 1 || v == 2);
        }
    }
}
