//! Offline drop-in replacement for the subset of `proptest` 1.x used by
//! this workspace.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the pieces it calls: the [`proptest!`] test macro (with optional
//! `#![proptest_config(...)]`), [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], range/tuple/`Just`/`any` strategies,
//! `prop::collection::vec`, and `Strategy::prop_map`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! deterministic case index so it can be replayed by rerunning the test.
//! Generation is fully deterministic (seeded from the test's
//! `module_path!()` + name + case index), so a red test stays red.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

use std::fmt;

pub use strategy::{Strategy, TestRng};

/// Error type carried by `prop_assert!` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Drives the per-case loop for [`proptest!`]-generated tests.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    test_name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &'static str) -> Self {
        TestRunner { config, test_name }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Deterministic per-case generator, keyed on test name and index.
    pub fn rng_for(&self, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
}

/// Conventional glob-import surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests. See the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..runner.cases() {
                    let mut __rng = runner.rng_for(__case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Weighted or unweighted union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
