//! Known-bad fixture: iterating `HashMap`/`HashSet` contents is
//! flagged (method form and `for .. in` form); keyed lookups and
//! BTree containers are not.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn totals(m: &HashMap<u32, f64>) -> f64 {
    // BAD: flagged by hash-order (f64 reduction in hash order).
    m.values().sum()
}

pub fn label_all(set: &HashSet<String>) -> String {
    let mut out = String::new();
    // BAD: flagged by hash-order (ordered output from hash order).
    for name in set {
        out.push_str(name);
    }
    out
}

pub fn fine(m: &HashMap<u32, f64>, ordered: &BTreeMap<u32, f64>) -> f64 {
    // Keyed lookups are deterministic.
    let x = m.get(&7).copied().unwrap_or(0.0);
    // BTree iteration is ordered.
    x + ordered.values().sum::<f64>()
}

pub fn waived(m: &HashMap<u32, f64>) -> f64 {
    // lint: allow(hash-order): max over totally ordered bits
    m.values().fold(0.0, |a, &b| if b.to_bits() > a.to_bits() { b } else { a })
}
