//! Known-bad fixture: `.unwrap()` in library code must be flagged,
//! while `unwrap_or` relatives, strings, comments, and test code must
//! not be.

pub fn first_char(s: &str) -> char {
    // BAD: flagged by no-panic.
    s.chars().next().unwrap()
}

pub fn fine(s: &str) -> char {
    // These are all fine: not `.unwrap()` calls.
    let _ = s.parse::<u32>().unwrap_or(0);
    let _ = s.parse::<u32>().unwrap_or_else(|_| 7);
    let _ = s.parse::<u32>().unwrap_or_default();
    let _ = "call .unwrap() please"; // in a string
    s.chars().next().unwrap_or('x')
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
