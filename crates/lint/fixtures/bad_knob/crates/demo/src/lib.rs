//! Known-bad fixture for the env-knob registry: `PUBSUB_BOGUS` is
//! read here but missing from docs/BENCHMARK.md, and the docs promise
//! `PUBSUB_GHOST`, which no code reads. Both directions must be
//! flagged. `PUBSUB_DOCUMENTED` agrees on both sides and must not be.

pub fn knobs() -> (Option<String>, Option<String>) {
    // BAD: undocumented knob.
    let a = std::env::var("PUBSUB_BOGUS").ok();
    // Fine: documented.
    let b = std::env::var("PUBSUB_DOCUMENTED").ok();
    (a, b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_knobs_are_exempt() {
        // Fine: test-only reads are outside the registry.
        let _ = std::env::var("PUBSUB_ONLY_IN_TESTS");
    }
}
