//! Known-bad fixture: `panic!`, `todo!`, and `unimplemented!` in
//! library code are flagged; mentions in comments/strings and
//! `#[cfg(test)]` uses are not.

pub fn pick(v: &[u8]) -> u8 {
    if v.is_empty() {
        // BAD: flagged by no-panic.
        panic!("empty input");
    }
    v[v.len() - 1]
}

pub fn later() {
    // BAD: flagged by no-panic.
    todo!()
}

pub fn never() {
    // BAD: flagged by no-panic.
    unimplemented!()
}

pub fn fine() {
    // This comment says panic! and that is fine.
    let _ = "panic!";
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panicking_test_is_fine() {
        panic!("tests may panic");
    }
}
