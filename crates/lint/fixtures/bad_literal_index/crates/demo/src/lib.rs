//! Known-bad fixture: numeric-literal indexing in library code is
//! flagged; variable indexing, array literals/types, attributes, and
//! waived sites are not.

pub fn head(v: &[u8]) -> u8 {
    // BAD: flagged by no-literal-index.
    v[0]
}

pub fn second(v: &[u8]) -> u8 {
    // BAD: flagged by no-literal-index.
    v[1]
}

pub fn fine(v: &[u8], i: usize) -> u8 {
    let arr = [0u8; 4]; // array literal + type, not indexing
    let first = v.first().copied().unwrap_or(0);
    first + arr[i] + v[i] // variable indexing is allowed
}

pub fn waived(v: &[u8]) -> u8 {
    debug_assert!(!v.is_empty());
    // lint: allow(no-literal-index): asserted non-empty above
    v[0]
}
