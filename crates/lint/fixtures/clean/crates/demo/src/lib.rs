//! Clean fixture: exercises every rule's *allowed* side plus the
//! waiver syntax; `pubsub-lint` must exit 0 on this tree.

use std::collections::HashMap;

pub fn knob() -> usize {
    std::env::var("PUBSUB_FIXTURE_KNOB")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1) // unwrap_or is not unwrap
}

pub fn lookup(m: &HashMap<u32, f64>, k: u32) -> f64 {
    m.get(&k).copied().unwrap_or(0.0)
}

pub fn sorted_keys(m: &HashMap<u32, f64>) -> Vec<u32> {
    // lint: allow(hash-order): collected then sorted on the next line
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

pub fn head(v: &[u8]) -> u8 {
    assert!(!v.is_empty(), "head of empty slice");
    // lint: allow(no-literal-index): asserted non-empty above
    v[0]
}

// lint: hot-path
pub fn per_event(xs: &[u64], scratch: &mut Vec<u64>) -> u64 {
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.iter().sum()
}
// lint: hot-path end

pub fn stated_invariant(s: &str) -> u32 {
    s.len().to_string().parse().expect("usize formats as u32")
}

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Epoch {
    epoch: AtomicU64,
}

impl Epoch {
    // A paired Acquire/Release couple on the same atomic is the
    // sanctioned pattern and needs no waiver.
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub fn publish(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    pub fn stale_peek(&self) -> u64 {
        // lint: allow(atomic-order): monitoring read of a monotonic
        // epoch; staleness is fine, exact values use current()
        self.epoch.load(Ordering::Relaxed)
    }
}

static FIRST: Mutex<u32> = Mutex::new(0);
static SECOND: Mutex<u32> = Mutex::new(0);

// Nested acquisition in one consistent order keeps the lock graph
// acyclic and is allowed.
pub fn in_order() -> u32 {
    let a = FIRST.lock().unwrap_or_else(|e| e.into_inner());
    let b = SECOND.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

// A serial sum over a plain slice is order-stable and allowed.
pub fn mean(xs: &[f64]) -> f64 {
    let total: f64 = xs.iter().sum();
    total / xs.len().max(1) as f64
}

// A thread-boundary closure that cannot panic needs no containment.
pub fn quiet_worker() -> std::thread::JoinHandle<u64> {
    std::thread::spawn(|| 1 + 1)
}

// A panicking closure behind a catch_unwind boundary is allowed.
pub fn guarded_worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {
        let _ = std::panic::catch_unwind(|| {
            let v: Vec<u32> = Vec::new();
            v.iter().copied().max().expect("nonempty")
        });
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_anything() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], 1);
        assert_eq!(super::head(&v), v.first().copied().unwrap());
    }
}
