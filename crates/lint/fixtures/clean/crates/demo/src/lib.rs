//! Clean fixture: exercises every rule's *allowed* side plus the
//! waiver syntax; `pubsub-lint` must exit 0 on this tree.

use std::collections::HashMap;

pub fn knob() -> usize {
    std::env::var("PUBSUB_FIXTURE_KNOB")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1) // unwrap_or is not unwrap
}

pub fn lookup(m: &HashMap<u32, f64>, k: u32) -> f64 {
    m.get(&k).copied().unwrap_or(0.0)
}

pub fn sorted_keys(m: &HashMap<u32, f64>) -> Vec<u32> {
    // lint: allow(hash-order): collected then sorted on the next line
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

pub fn head(v: &[u8]) -> u8 {
    assert!(!v.is_empty(), "head of empty slice");
    // lint: allow(no-literal-index): asserted non-empty above
    v[0]
}

// lint: hot-path
pub fn per_event(xs: &[u64], scratch: &mut Vec<u64>) -> u64 {
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.iter().sum()
}
// lint: hot-path end

pub fn stated_invariant(s: &str) -> u32 {
    s.len().to_string().parse().expect("usize formats as u32")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_anything() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], 1);
        assert_eq!(super::head(&v), v.first().copied().unwrap());
    }
}
