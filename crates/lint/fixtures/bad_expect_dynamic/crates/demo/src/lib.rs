//! Known-bad fixture: `.expect(..)` with a computed message is
//! flagged; a string-literal message (our sanctioned invariant idiom)
//! is not.

pub fn load(name: &str) -> u32 {
    let msg = format!("{name} must parse");
    // BAD: computed message, flagged by no-panic.
    name.len().to_string().parse().expect(&msg)
}

pub fn fine(name: &str) -> u32 {
    // Literal messages state invariants and are allowed.
    name.len().to_string().parse().expect("a usize formats as a u32")
}

pub fn fine_multiline(name: &str) -> u32 {
    name.len().to_string().parse().expect(
        "a usize formats as a u32, even with the literal on its own line",
    )
}
