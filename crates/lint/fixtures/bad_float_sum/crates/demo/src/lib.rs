//! Bad fixture: order-sensitive f64 reduction outside the blessed
//! `pubsub_core::parallel` fixed-chunk reducers — once through a
//! `.sum()` chain over parallel-produced data, once through `+=` in a
//! loop over it.

use pubsub_core::parallel;

pub fn chained_total(n: usize) -> f64 {
    parallel::par_map_indexed(n, 1, |i| i as f64 * 0.5)
        .into_iter()
        .sum()
}

pub fn looped_total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for part in parallel::par_map(xs, 1, |x| x * 0.5) {
        acc += part;
    }
    acc
}
