//! Bad fixture: three atomic-order violations on three distinct
//! atomics — a Relaxed RMW whose waiver has no recorded reason, an
//! Acquire load with no Release-side writer, and a probably-overkill
//! SeqCst store.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counters {
    counter: AtomicU64,
    gate: AtomicU64,
    total: AtomicU64,
}

impl Counters {
    pub fn bump(&self) -> u64 {
        // A reasonless waiver must not silence the rule.
        // lint: allow(atomic-order)
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    pub fn is_open(&self) -> bool {
        self.gate.load(Ordering::Acquire) != 0
    }

    pub fn publish_total(&self, v: u64) {
        self.total.store(v, Ordering::SeqCst);
    }
}
