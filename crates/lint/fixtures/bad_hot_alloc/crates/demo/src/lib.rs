//! Known-bad fixture: allocating calls inside a `lint: hot-path`
//! region are flagged; the same calls outside the region are not.

pub fn setup(n: usize) -> Vec<u64> {
    // Outside the region: allocation is fine.
    (0..n as u64).collect()
}

// lint: hot-path
pub fn per_event(xs: &[u64]) -> u64 {
    // BAD: flagged by hot-path-alloc.
    let copy = xs.to_vec();
    // BAD: flagged by hot-path-alloc.
    let doubled: Vec<u64> = copy.iter().map(|x| x * 2).collect();
    // BAD: flagged by hot-path-alloc.
    let mut extra = Vec::new();
    extra.extend_from_slice(&doubled);
    // BAD: flagged by hot-path-alloc.
    let label = format!("{}", extra.len());
    label.len() as u64 + extra.iter().sum::<u64>()
}
// lint: hot-path end

pub fn teardown(xs: &[u64]) -> Vec<u64> {
    // Outside again: fine.
    xs.to_vec()
}
