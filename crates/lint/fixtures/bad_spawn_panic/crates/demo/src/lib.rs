//! Bad fixture: closures crossing a thread boundary that can panic —
//! directly (`.expect` inside a `thread::spawn` closure) and
//! transitively (`par_map_vec` closure calling a same-crate function
//! that can panic) — with no `catch_unwind`-style containment.

use pubsub_core::parallel;

pub fn helper(v: &[u64]) -> u64 {
    v.first().copied().expect("nonempty batch")
}

pub fn direct() {
    std::thread::spawn(|| {
        let x: Option<u64> = None;
        let _ = x.expect("boom");
    });
}

pub fn transitive(vals: Vec<Vec<u64>>) -> Vec<u64> {
    parallel::par_map_vec(vals, 1, |v| helper(&v))
}
