//! Bad fixture: two functions acquire the same pair of mutexes in
//! opposite orders — a classic deadlock cycle in the lock graph.

use std::sync::Mutex;

static ALPHA: Mutex<u32> = Mutex::new(0);
static BETA: Mutex<u32> = Mutex::new(0);

pub fn alpha_then_beta() -> u32 {
    let a = ALPHA.lock().unwrap_or_else(|e| e.into_inner());
    let b = BETA.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

pub fn beta_then_alpha() -> u32 {
    let b = BETA.lock().unwrap_or_else(|e| e.into_inner());
    let a = ALPHA.lock().unwrap_or_else(|e| e.into_inner());
    *a - *b
}
