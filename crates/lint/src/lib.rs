//! Workspace-local static analysis for the pub-sub clustering repo.
//!
//! `pubsub-lint` is a dependency-free, token-level checker that
//! enforces the project's correctness conventions (see DESIGN.md §12):
//!
//! * **no-panic** — library code never calls `.unwrap()`, `panic!`,
//!   `todo!`, `unimplemented!`, or `.expect(..)` with a computed
//!   message; `.expect("string literal")` is the sanctioned way to
//!   state an internal invariant.
//! * **no-literal-index** — no `xs[0]`-style numeric-literal indexing
//!   in library code; use `.first()` / `.get(..)` or waive the site
//!   with a written bound proof.
//! * **hot-path-alloc** — no allocating calls (`collect`, `clone`,
//!   `to_vec`, `Vec::new`, `format!`, ...) inside regions bracketed by
//!   `// lint: hot-path` markers.
//! * **hash-order** — no iteration over `HashMap`/`HashSet` contents,
//!   which would feed nondeterministic order into output or float
//!   reductions.
//! * **env-knob-registry** — every `PUBSUB_*` knob read in code is
//!   documented in `docs/BENCHMARK.md` and vice versa.
//!
//! Any finding can be waived in place with
//! `// lint: allow(<rule>): <reason>`; the reason is mandatory by
//! convention and reviewed like code.
//!
//! The checker deliberately does not parse Rust. It works on a
//! comment- and string-stripped view of each file, which keeps it
//! fast, dependency-free, and immune to churn in the language grammar
//! at the cost of a handful of documented blind spots (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod rules;
mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use registry::{check_registry, collect_knobs, knob_names, KnobSites};
pub use rules::{
    lint_file, FileKind, Finding, RULE_HASH_ORDER, RULE_HOT_ALLOC, RULE_KNOB_REGISTRY,
    RULE_LITERAL_INDEX, RULE_NO_PANIC,
};
pub use scan::{scan, ScannedFile};

/// Vendored third-party API stand-ins: not our code style to police.
const VENDORED_CRATES: [&str; 3] = ["rand", "proptest", "criterion"];

/// Lint one source string as `pubsub-lint` would lint the file at
/// `path` (workspace-relative, used for reporting and for `bin/`
/// detection when `kind` is [`FileKind::Binary`]).
pub fn lint_source(path: &str, source: &str, kind: FileKind) -> Vec<Finding> {
    lint_file(path, &scan(source), kind)
}

/// Lint the whole workspace rooted at `root`.
///
/// Scans `crates/*/src/**/*.rs` (skipping the vendored stub crates),
/// applies the per-file rules, and finishes with the env-knob registry
/// check against `docs/BENCHMARK.md`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    let mut knobs = KnobSites::new();
    for crate_dir in &crate_dirs {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if VENDORED_CRATES.contains(&name) {
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for file in files {
            let source = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let scanned = scan(&source);
            findings.extend(lint_file(&rel, &scanned, classify(&rel)));
            collect_knobs(&rel, &scanned, &mut knobs);
        }
    }

    let doc_rel = "docs/BENCHMARK.md";
    let doc_text = fs::read_to_string(root.join(doc_rel)).unwrap_or_default();
    findings.extend(check_registry(&knobs, doc_rel, &doc_text));
    findings.sort();
    Ok(findings)
}

/// A file under `src/bin/` or named `src/main.rs` belongs to a binary
/// target; everything else under `src/` is library code.
pub fn classify(rel_path: &str) -> FileKind {
    if rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs") {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk upward from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
