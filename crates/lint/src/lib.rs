//! Workspace-local static analysis for the pub-sub clustering repo.
//!
//! `pubsub-lint` is a dependency-free checker that enforces the
//! project's correctness conventions (see DESIGN.md §12 and §17):
//!
//! * **no-panic** — library code never calls `.unwrap()`, `panic!`,
//!   `todo!`, `unimplemented!`, or `.expect(..)` with a computed
//!   message; `.expect("string literal")` is the sanctioned way to
//!   state an internal invariant.
//! * **no-literal-index** — no `xs[0]`-style numeric-literal indexing
//!   in library code; use `.first()` / `.get(..)` or waive the site
//!   with a written bound proof.
//! * **hot-path-alloc** — no allocating calls (`collect`, `clone`,
//!   `to_vec`, `Vec::new`, `format!`, ...) inside regions bracketed by
//!   `// lint: hot-path` markers.
//! * **hash-order** — no iteration over `HashMap`/`HashSet` contents,
//!   which would feed nondeterministic order into output or float
//!   reductions.
//! * **env-knob-registry** — every `PUBSUB_*` knob read in code is
//!   documented in `docs/BENCHMARK.md` and vice versa.
//! * **atomic-order** — `Ordering::Relaxed` and unpaired
//!   `Acquire`/`Release` atomic sites must record a happens-before
//!   argument; `SeqCst` is flagged as probably-overkill.
//! * **lock-order** — the workspace Mutex/RwLock acquisition graph
//!   (nested guard scopes plus same-crate calls) must be acyclic.
//! * **float-det** — order-sensitive `f64` accumulation over
//!   parallel-produced or hash-ordered sequences is confined to the
//!   blessed fixed-chunk reducers in `pubsub_core::parallel`.
//! * **thread-panic** — closures crossing a thread boundary must not
//!   panic without a `catch_unwind`-style containment.
//!
//! Any finding can be waived in place with
//! `// lint: allow(<rule>): <reason>`. The four concurrency rules
//! additionally require the reason to be nonempty — the recorded
//! happens-before / determinism argument is the audit trail.
//!
//! The checker deliberately does not parse Rust. It works on a
//! comment- and string-stripped view of each file — tokenized once,
//! shared by every rule — plus a brace-matched [`ItemTree`] and a
//! per-crate function/call index for the concurrency rules. That
//! keeps it fast, dependency-free, and immune to churn in the
//! language grammar at the cost of a handful of documented blind
//! spots (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concur;
mod item_tree;
mod output;
mod registry;
mod rules;
mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

pub use concur::{
    build_indexes, check_atomic_order, check_float_det, check_lock_order, check_thread_panic,
    CrateIndex, FnFacts, RULE_ATOMIC_ORDER, RULE_FLOAT_DET, RULE_LOCK_ORDER, RULE_THREAD_PANIC,
};
pub use item_tree::{calls_in, Block, FnItem, ItemTree};
pub use output::{format_github, format_json};
pub use registry::{check_registry, collect_knobs, knob_names, KnobSites};
pub use rules::{
    lint_file, FileKind, Finding, LineDirectives, RULE_HASH_ORDER, RULE_HOT_ALLOC,
    RULE_KNOB_REGISTRY, RULE_LITERAL_INDEX, RULE_NO_PANIC,
};
pub use scan::{scan, ScannedFile};

/// Vendored third-party API stand-ins: not our code style to police.
const VENDORED_CRATES: [&str; 3] = ["rand", "proptest", "criterion"];

/// One source file, scanned and indexed exactly once; every rule
/// shares this view (one tokenization, N rules).
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Library or binary target, which decides rule applicability.
    pub kind: FileKind,
    /// The comment/string-blanked token view.
    pub scanned: ScannedFile,
    /// Parsed waivers and hot-path regions.
    pub directives: LineDirectives,
    /// Brace-matched blocks and `fn` items.
    pub tree: ItemTree,
}

impl SourceFile {
    /// Scans and indexes one source string.
    pub fn new(rel: impl Into<String>, source: &str, kind: FileKind) -> Self {
        let scanned = scan(source);
        let directives = LineDirectives::parse(&scanned);
        let tree = ItemTree::build(&scanned);
        SourceFile {
            rel: rel.into(),
            kind,
            scanned,
            directives,
            tree,
        }
    }
}

/// The result of a lint run: findings plus per-rule wall-clock cost.
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Cumulative wall-clock time per rule (plus the shared
    /// `symbol-index` build), in execution order.
    pub timings: Vec<(&'static str, Duration)>,
    /// How many files went through the shared scan pass.
    pub files_scanned: usize,
}

/// Accumulates per-rule durations in first-seen order.
struct Timings(Vec<(&'static str, Duration)>);

impl Timings {
    fn add(&mut self, name: &'static str, dur: Duration) {
        match self.0.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += dur,
            None => self.0.push((name, dur)),
        }
    }

    fn run(&mut self, name: &'static str, f: impl FnOnce()) {
        let t0 = Instant::now();
        f();
        self.add(name, t0.elapsed());
    }
}

/// Runs every rule over a pre-scanned file set. `benchmark_doc` is the
/// `(relative path, text)` of `docs/BENCHMARK.md` for the env-knob
/// registry check; pass `None` to skip it (e.g. single-file linting).
pub fn lint_files(files: &[SourceFile], benchmark_doc: Option<(&str, &str)>) -> LintReport {
    let mut findings = Vec::new();
    let mut timings = Timings(Vec::new());

    for file in files {
        let (s, d, rel) = (&file.scanned, &file.directives, file.rel.as_str());
        if file.kind == FileKind::Library {
            timings.run(RULE_NO_PANIC, || {
                rules::check_no_panic(rel, s, d, &mut findings)
            });
            timings.run(RULE_LITERAL_INDEX, || {
                rules::check_literal_index(rel, s, d, &mut findings)
            });
        }
        timings.run(RULE_HOT_ALLOC, || {
            rules::check_hot_alloc(rel, s, d, &mut findings)
        });
        timings.run(RULE_HASH_ORDER, || {
            rules::check_hash_order(rel, s, d, &mut findings)
        });
        timings.run(RULE_ATOMIC_ORDER, || {
            check_atomic_order(file, &mut findings)
        });
        timings.run(RULE_FLOAT_DET, || check_float_det(file, &mut findings));
    }

    let t0 = Instant::now();
    let indexes = build_indexes(files);
    timings.add("symbol-index", t0.elapsed());
    timings.run(RULE_LOCK_ORDER, || {
        check_lock_order(files, &indexes, &mut findings)
    });
    timings.run(RULE_THREAD_PANIC, || {
        check_thread_panic(files, &indexes, &mut findings)
    });

    if let Some((doc_rel, doc_text)) = benchmark_doc {
        timings.run(RULE_KNOB_REGISTRY, || {
            let mut knobs = KnobSites::new();
            for file in files {
                collect_knobs(&file.rel, &file.scanned, &mut knobs);
            }
            findings.extend(check_registry(&knobs, doc_rel, doc_text));
        });
    }

    findings.sort();
    findings.dedup();
    LintReport {
        findings,
        timings: timings.0,
        files_scanned: files.len(),
    }
}

/// Lint one source string as `pubsub-lint` would lint the file at
/// `path` (workspace-relative, used for reporting and for `bin/`
/// detection when `kind` is [`FileKind::Binary`]). Runs every rule
/// except the cross-file env-knob registry check.
pub fn lint_source(path: &str, source: &str, kind: FileKind) -> Vec<Finding> {
    let files = [SourceFile::new(path, source, kind)];
    lint_files(&files, None).findings
}

/// Lint the whole workspace rooted at `root`, with per-rule timings.
///
/// Scans `crates/*/src/**/*.rs` (skipping the vendored stub crates)
/// once, applies every rule over the shared scan, and finishes with
/// the env-knob registry check against `docs/BENCHMARK.md`.
pub fn lint_workspace_report(root: &Path) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in &crate_dirs {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if VENDORED_CRATES.contains(&name) {
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs_files(&src, &mut paths)?;
        for path in paths {
            let source = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = classify(&rel);
            files.push(SourceFile::new(rel, &source, kind));
        }
    }

    let doc_rel = "docs/BENCHMARK.md";
    let doc_text = fs::read_to_string(root.join(doc_rel)).unwrap_or_default();
    Ok(lint_files(&files, Some((doc_rel, &doc_text))))
}

/// Lint the whole workspace rooted at `root` (findings only).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_report(root)?.findings)
}

/// A file under `src/bin/` or named `src/main.rs` belongs to a binary
/// target; everything else under `src/` is library code.
pub fn classify(rel_path: &str) -> FileKind {
    if rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs") {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk upward from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
