//! The per-file lint rules.
//!
//! Every rule reports [`Finding`]s against the *cleaned* code produced
//! by [`crate::scan`], skips `#[cfg(test)]` regions, and honours inline
//! waivers of the form
//!
//! ```text
//! // lint: allow(<rule>): <reason>
//! ```
//!
//! placed either on the offending line or on a comment line directly
//! above it. The hot-path allocation rule additionally only fires
//! inside regions bracketed by `// lint: hot-path` and
//! `// lint: hot-path end` markers.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::ScannedFile;

/// Panic hygiene: no `.unwrap()`, `panic!`, `todo!`, `unimplemented!`,
/// or `.expect(<non-literal>)` in library code.
pub const RULE_NO_PANIC: &str = "no-panic";
/// No numeric-literal slice indexing (`xs[0]`) in library code.
pub const RULE_LITERAL_INDEX: &str = "no-literal-index";
/// No allocating calls inside `// lint: hot-path` regions.
pub const RULE_HOT_ALLOC: &str = "hot-path-alloc";
/// No iteration over `HashMap`/`HashSet` (nondeterministic order).
pub const RULE_HASH_ORDER: &str = "hash-order";
/// `PUBSUB_*` knobs in code and `docs/BENCHMARK.md` must agree.
pub const RULE_KNOB_REGISTRY: &str = "env-knob-registry";

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file is compiled, which decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a library target: all rules apply.
    Library,
    /// A binary / example target: panic hygiene is relaxed (a CLI
    /// aborting on its own bug is acceptable), determinism and
    /// hot-path rules still apply.
    Binary,
}

/// Per-line rule waivers (with or without a recorded reason) and
/// hot-path region membership.
pub struct LineDirectives {
    /// `rule -> the waiver carries a nonempty reason`, per line.
    allowed: Vec<BTreeMap<String, bool>>,
    hot: Vec<bool>,
}

impl LineDirectives {
    /// Parse directives out of a scanned file's comments.
    pub fn parse(s: &ScannedFile) -> Self {
        let n = s.num_lines();
        let mut allowed: Vec<BTreeMap<String, bool>> = vec![BTreeMap::new(); n];
        let mut hot = vec![false; n];
        let mut pending: BTreeMap<String, bool> = BTreeMap::new();
        let mut in_hot = false;
        for line in 1..=n {
            let comment = s.comment(line);
            // Directives must be the whole comment, so prose that
            // *mentions* the marker syntax doesn't open a region.
            let directive = strip_comment_markers(comment);
            if directive == "lint: hot-path end" {
                in_hot = false;
            } else if directive == "lint: hot-path" {
                in_hot = true;
            }
            hot[line - 1] = in_hot;

            let mut rules = parse_allows(comment);
            if s.line_has_code(line) {
                rules.append(&mut pending);
                allowed[line - 1] = rules;
            } else {
                // Comment-only line: the waiver applies to the next
                // line that carries code.
                pending.append(&mut rules);
            }
        }
        Self { allowed, hot }
    }

    pub(crate) fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allowed
            .get(line - 1)
            .is_some_and(|set| set.contains_key(rule))
    }

    /// Whether a waiver for `rule` on `line` also records a nonempty
    /// reason. The concurrency rules require one (the happens-before /
    /// order-determinism argument is the point of the waiver).
    pub(crate) fn is_allowed_with_reason(&self, line: usize, rule: &str) -> bool {
        self.allowed
            .get(line - 1)
            .and_then(|set| set.get(rule))
            .copied()
            .unwrap_or(false)
    }

    fn is_hot(&self, line: usize) -> bool {
        self.hot.get(line - 1).copied().unwrap_or(false)
    }
}

/// Reduce a captured comment to its directive text: strip the comment
/// sigils (`//`, `///`, `//!`, block-comment stars) and surrounding
/// whitespace.
fn strip_comment_markers(comment: &str) -> &str {
    comment
        .trim()
        .trim_start_matches(['/', '!', '*'])
        .trim()
        .trim_end_matches("*/")
        .trim()
}

fn parse_allows(comment: &str) -> BTreeMap<String, bool> {
    let mut rules = BTreeMap::new();
    let mut rest = strip_comment_markers(comment);
    // Only comments *leading* with the directive count; prose that
    // quotes the syntax mid-sentence is ignored.
    while let Some(tail) = rest.strip_prefix("lint: allow(") {
        if let Some(close) = tail.find(')') {
            let rule = tail[..close].trim().to_string();
            rest = tail[close + 1..].trim_start();
            // `): <reason>` — the reason runs to the end of the
            // comment (or to a chained reasonless `lint: allow(..)`).
            let has_reason = rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
            let entry = rules.entry(rule).or_insert(false);
            *entry = *entry || has_reason;
        } else {
            break;
        }
    }
    rules
}

pub(crate) fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets where `word` occurs as a whole identifier.
pub(crate) fn ident_occurrences(code: &[u8], word: &str) -> Vec<usize> {
    let w = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(at) = crate::scan::find_bytes(code, w, from) {
        let before_ok = at == 0 || !is_ident_char(code[at - 1]);
        let after = at + w.len();
        let after_ok = after >= code.len() || !is_ident_char(code[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

pub(crate) fn next_non_ws(code: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < code.len() {
        if !code[i].is_ascii_whitespace() {
            return Some((i, code[i]));
        }
        i += 1;
    }
    None
}

pub(crate) fn prev_non_ws(code: &[u8], mut i: usize) -> Option<(usize, u8)> {
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        if !code[i].is_ascii_whitespace() {
            return Some((i, code[i]));
        }
    }
}

/// The identifier ending just before byte `end` (exclusive), if any.
pub(crate) fn ident_before(code: &[u8], end: usize) -> Option<&str> {
    let mut start = end;
    while start > 0 && is_ident_char(code[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        std::str::from_utf8(&code[start..end]).ok()
    }
}

/// Run the token-level per-file rules over one source file. (The
/// concurrency rules need the cross-file [`crate::SourceFile`] view;
/// use [`crate::lint_source`] or [`crate::lint_files`] for those.)
pub fn lint_file(path: &str, s: &ScannedFile, kind: FileKind) -> Vec<Finding> {
    let d = LineDirectives::parse(s);
    let mut out = Vec::new();
    if kind == FileKind::Library {
        check_no_panic(path, s, &d, &mut out);
        check_literal_index(path, s, &d, &mut out);
    }
    check_hot_alloc(path, s, &d, &mut out);
    check_hash_order(path, s, &d, &mut out);
    out.sort();
    out
}

fn push(
    out: &mut Vec<Finding>,
    s: &ScannedFile,
    d: &LineDirectives,
    path: &str,
    pos: usize,
    rule: &'static str,
    message: String,
) {
    let line = s.line_of(pos);
    if s.is_test_line(line) || d.is_allowed(line, rule) {
        return;
    }
    out.push(Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    });
}

/// Like [`push`], but the waiver only counts when it records a
/// nonempty reason. The concurrency rules use this: the recorded
/// happens-before / order-determinism argument *is* the audit trail,
/// so a bare `lint: allow(atomic-order)` does not silence them.
pub(crate) fn push_reasoned(
    out: &mut Vec<Finding>,
    s: &ScannedFile,
    d: &LineDirectives,
    path: &str,
    pos: usize,
    rule: &'static str,
    message: String,
) {
    let line = s.line_of(pos);
    if s.is_test_line(line) || d.is_allowed_with_reason(line, rule) {
        return;
    }
    out.push(Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    });
}

pub(crate) fn check_no_panic(
    path: &str,
    s: &ScannedFile,
    d: &LineDirectives,
    out: &mut Vec<Finding>,
) {
    let code = s.code.as_bytes();
    for at in ident_occurrences(code, "unwrap") {
        let is_method = matches!(prev_non_ws(code, at), Some((_, b'.')));
        let called = matches!(next_non_ws(code, at + "unwrap".len()), Some((_, b'(')));
        if is_method && called {
            push(
                out,
                s,
                d,
                path,
                at,
                RULE_NO_PANIC,
                "`.unwrap()` in library code; return an error or use `.expect(\"why this holds\")`"
                    .to_string(),
            );
        }
    }
    for at in ident_occurrences(code, "expect") {
        let is_method = matches!(prev_non_ws(code, at), Some((_, b'.')));
        let open = match next_non_ws(code, at + "expect".len()) {
            Some((i, b'(')) => i,
            _ => continue,
        };
        if !is_method {
            continue;
        }
        // A literal message starts with `"`, `r"`, `r#"`, or a
        // concatenation thereof; anything else is a computed message.
        let literal = match next_non_ws(code, open + 1) {
            Some((_, b'"')) => true,
            Some((i, b'r')) => {
                matches!(next_non_ws(code, i + 1), Some((_, b'"')) | Some((_, b'#')))
            }
            _ => false,
        };
        if !literal {
            push(
                out,
                s,
                d,
                path,
                at,
                RULE_NO_PANIC,
                "`.expect(...)` with a non-literal message in library code".to_string(),
            );
        }
    }
    for macro_name in ["panic", "todo", "unimplemented"] {
        for at in ident_occurrences(code, macro_name) {
            if code.get(at + macro_name.len()) == Some(&b'!') {
                push(
                    out,
                    s,
                    d,
                    path,
                    at,
                    RULE_NO_PANIC,
                    format!("`{macro_name}!` in library code; return an error instead"),
                );
            }
        }
    }
}

pub(crate) fn check_literal_index(
    path: &str,
    s: &ScannedFile,
    d: &LineDirectives,
    out: &mut Vec<Finding>,
) {
    let code = s.code.as_bytes();
    for at in 0..code.len() {
        if code[at] != b'[' || at == 0 {
            continue;
        }
        let prev = code[at - 1];
        // Indexing expressions follow an identifier, a close bracket
        // or a close paren; array literals / types / attributes don't.
        if !(is_ident_char(prev) || prev == b']' || prev == b')') {
            continue;
        }
        let mut j = at + 1;
        let mut digits = 0usize;
        while j < code.len() && (code[j].is_ascii_digit() || code[j] == b'_') {
            digits += 1;
            j += 1;
        }
        if digits > 0 && code.get(j) == Some(&b']') {
            let index = std::str::from_utf8(&code[at + 1..j]).unwrap_or("?");
            push(
                out,
                s,
                d,
                path,
                at,
                RULE_LITERAL_INDEX,
                format!(
                    "literal index `[{index}]` in library code; \
                     use `.first()`/`.get({index})` or prove the bound with a waiver"
                ),
            );
        }
    }
}

/// Allocating method calls banned inside hot-path regions.
const HOT_METHODS: [&str; 5] = ["collect", "clone", "to_vec", "to_string", "to_owned"];
/// Allocating macros banned inside hot-path regions.
const HOT_MACROS: [&str; 2] = ["vec", "format"];
/// Allocating constructor paths banned inside hot-path regions.
const HOT_PATHS: [&str; 4] = ["Vec::new", "String::new", "Box::new", "String::from"];

pub(crate) fn check_hot_alloc(
    path: &str,
    s: &ScannedFile,
    d: &LineDirectives,
    out: &mut Vec<Finding>,
) {
    let code = s.code.as_bytes();
    let mut hits: Vec<(usize, String)> = Vec::new();
    for method in HOT_METHODS {
        for at in ident_occurrences(code, method) {
            let is_method = matches!(prev_non_ws(code, at), Some((_, b'.')));
            let called = matches!(
                next_non_ws(code, at + method.len()),
                Some((_, b'(')) | Some((_, b':'))
            );
            if is_method && called {
                hits.push((at, format!("allocating call `.{method}(..)`")));
            }
        }
    }
    for mac in HOT_MACROS {
        for at in ident_occurrences(code, mac) {
            if code.get(at + mac.len()) == Some(&b'!') {
                hits.push((at, format!("allocating macro `{mac}!`")));
            }
        }
    }
    for p in HOT_PATHS {
        let mut from = 0usize;
        while let Some(at) = crate::scan::find_bytes(code, p.as_bytes(), from) {
            if at == 0 || !is_ident_char(code[at - 1]) {
                hits.push((at, format!("allocating constructor `{p}`")));
            }
            from = at + 1;
        }
    }
    for (at, what) in hits {
        let line = s.line_of(at);
        if !d.is_hot(line) {
            continue;
        }
        push(
            out,
            s,
            d,
            path,
            at,
            RULE_HOT_ALLOC,
            format!("{what} inside a `lint: hot-path` region"),
        );
    }
}

/// Iteration adaptors whose order is nondeterministic on hash
/// containers.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

pub(crate) fn check_hash_order(
    path: &str,
    s: &ScannedFile,
    d: &LineDirectives,
    out: &mut Vec<Finding>,
) {
    let code = s.code.as_bytes();
    let tracked = hash_bound_idents(s);
    if tracked.is_empty() {
        return;
    }
    for method in HASH_ITER_METHODS {
        for at in ident_occurrences(code, method) {
            let dot = match prev_non_ws(code, at) {
                Some((i, b'.')) => i,
                _ => continue,
            };
            let called = matches!(
                next_non_ws(code, at + method.len()),
                Some((_, b'(')) | Some((_, b':'))
            );
            if !called {
                continue;
            }
            // The receiver may sit on the previous line of a method
            // chain; skip whitespace between it and the dot.
            let recv_end = match prev_non_ws(code, dot) {
                Some((i, b)) if is_ident_char(b) => i + 1,
                _ => continue,
            };
            let receiver = match ident_before(code, recv_end) {
                Some(id) => id,
                None => continue,
            };
            if tracked.contains(receiver) {
                push(
                    out,
                    s,
                    d,
                    path,
                    at,
                    RULE_HASH_ORDER,
                    format!(
                        "`{receiver}.{method}()` iterates a hash container in nondeterministic \
                         order; collect and sort, use a BTree container, or waive with a reason"
                    ),
                );
            }
        }
    }
    // `for x in [&][mut ]path.to.ident { ... }`
    for at in ident_occurrences(code, "in") {
        let mut j = at + 2;
        loop {
            match code.get(j) {
                Some(&b) if b.is_ascii_whitespace() || b == b'&' => j += 1,
                _ => break,
            }
        }
        if code.get(j..j + 4) == Some(b"mut ") {
            j += 4;
        }
        let start = j;
        while j < code.len() && (is_ident_char(code[j]) || code[j] == b'.' || code[j] == b':') {
            j += 1;
        }
        if j == start {
            continue;
        }
        // Trailing identifier of the path: `self.cell_to_hyper` ->
        // `cell_to_hyper`. Method calls (`map.keys()`) end with `)` and
        // are handled by the method branch above.
        let last = match ident_before(code, j) {
            Some(id) => id,
            None => continue,
        };
        let followed_by_block = matches!(next_non_ws(code, j), Some((_, b'{')));
        if followed_by_block && tracked.contains(last) {
            push(
                out,
                s,
                d,
                path,
                at,
                RULE_HASH_ORDER,
                format!(
                    "`for .. in {last}` iterates a hash container in nondeterministic order; \
                     collect and sort, use a BTree container, or waive with a reason"
                ),
            );
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` values in this file:
/// `let [mut] <id> ... Hash{Map,Set}` bindings and
/// `<id>: [&][mut ][path::]Hash{Map,Set}` field or parameter
/// declarations.
pub(crate) fn hash_bound_idents(s: &ScannedFile) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    let code = s.code.as_bytes();
    for container in ["HashMap", "HashSet"] {
        for at in ident_occurrences(code, container) {
            let line = s.line_of(at);
            let text = s.line_str(line);
            if find_token(text, "use").is_some() {
                continue;
            }
            if let Some(let_pos) = find_token(text, "let") {
                let mut rest = text[let_pos + 3..].trim_start();
                if let Some(r) = rest.strip_prefix("mut ") {
                    rest = r.trim_start();
                }
                let id: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !id.is_empty() {
                    tracked.insert(id);
                }
                continue;
            }
            // Work backwards from the container token through the type
            // prefix (`&`, `mut`, `path::` segments) to a single `:`.
            let col = at - s.line_start(line);
            let mut prefix = text[..col].trim_end();
            loop {
                if let Some(p) = prefix.strip_suffix('&') {
                    prefix = p.trim_end();
                } else if let Some(p) = prefix.strip_suffix("mut") {
                    if p.is_empty() || p.ends_with([' ', '&', '(']) {
                        prefix = p.trim_end();
                    } else {
                        break;
                    }
                } else if let Some(p) = prefix.strip_suffix("::") {
                    // `std::collections::HashMap`: drop the whole
                    // leading path, then resume.
                    prefix = p.trim_end_matches(|c: char| c.is_ascii_alphanumeric() || c == '_');
                    prefix = prefix.trim_end();
                } else {
                    break;
                }
            }
            if prefix.ends_with(':') && !prefix.ends_with("::") {
                let before_colon = prefix[..prefix.len() - 1].trim_end().as_bytes();
                if let Some(id) = ident_before(before_colon, before_colon.len()) {
                    tracked.insert(id.to_string());
                }
            }
        }
    }
    tracked
}

pub(crate) fn find_token(text: &str, token: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0usize;
    while let Some(at) = crate::scan::find_bytes(bytes, token.as_bytes(), from) {
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + token.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}
