//! Concurrency and determinism audit rules (DESIGN.md §17).
//!
//! Four rules that lean on the [`crate::item_tree`] structural index
//! and a per-crate function/call index:
//!
//! * **atomic-order** — every `Ordering::Relaxed` site must carry a
//!   reasoned waiver recording its happens-before argument; `SeqCst`
//!   is flagged as probably-overkill; `Acquire`/`Release` sites must
//!   pair up per atomic (receiver) within a file, or record where the
//!   other side lives.
//! * **lock-order** — builds the Mutex/RwLock acquisition graph from
//!   nested `.lock()`/`.write()`/`.read()` guard scopes (including
//!   acquisitions reached through same-crate calls) and fails on
//!   cycles.
//! * **float-det** — order-sensitive `f64` accumulation (`.sum()`,
//!   `.product()`, `+=` in loops) over parallel-produced or
//!   hash-ordered sequences outside the blessed fixed-chunk reducers
//!   in `pubsub_core::parallel`.
//! * **thread-panic** — closures crossing a thread boundary
//!   (`spawn`, `par_map_vec`) that can panic — directly or through a
//!   same-crate callee — without a `catch_unwind`-style boundary.
//!
//! All four require *reasoned* waivers: a bare `lint: allow(rule)`
//! does not silence them, because the recorded argument is the point
//! of the audit. Known blind spots are documented in DESIGN.md §17.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::item_tree::calls_in;
use crate::rules::{
    find_token, hash_bound_idents, ident_before, ident_occurrences, is_ident_char, next_non_ws,
    prev_non_ws, push_reasoned, Finding,
};
use crate::SourceFile;

/// Relaxed/unpaired/overkill atomic memory orderings need a recorded
/// happens-before argument.
pub const RULE_ATOMIC_ORDER: &str = "atomic-order";
/// The workspace lock-acquisition graph must be acyclic.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Order-sensitive float accumulation outside the blessed reducers.
pub const RULE_FLOAT_DET: &str = "float-det";
/// Panics must not cross thread boundaries unguarded.
pub const RULE_THREAD_PANIC: &str = "thread-panic";

/// The crate a workspace-relative path belongs to (`crates/<name>/..`).
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => "",
    }
}

// ---------------------------------------------------------------------
// Shared token-walking helpers.
// ---------------------------------------------------------------------

/// Byte offset of the `[`/`(` matching the closer at `close`.
fn matching_open(code: &[u8], close: usize) -> Option<usize> {
    let (open_b, close_b) = match code.get(close)? {
        b']' => (b'[', b']'),
        b')' => (b'(', b')'),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut i = close + 1;
    while i > 0 {
        i -= 1;
        if code[i] == close_b {
            depth += 1;
        } else if code[i] == open_b {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Byte offset of the `)` matching the opener at `open` (or EOF).
fn matching_close(code: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &b) in code.iter().enumerate().skip(open) {
        if b == b'(' {
            depth += 1;
        } else if b == b')' {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// The receiver identifier of a method call whose `.` sits at `dot`:
/// `self.epoch.load(..)` → `epoch`, `slots[i].lock()` → `slots`.
fn receiver_ident(code: &[u8], dot: usize) -> Option<String> {
    let (i, b) = prev_non_ws(code, dot)?;
    let end = if b == b']' || b == b')' {
        let open = matching_open(code, i)?;
        let (j, b2) = prev_non_ws(code, open)?;
        if !is_ident_char(b2) {
            return None;
        }
        j + 1
    } else if is_ident_char(b) {
        i + 1
    } else {
        return None;
    };
    ident_before(code, end).map(str::to_string)
}

/// Start of the statement containing `pos`: the byte just after the
/// previous `;`, `{`, `}`, or unmatched opener at nesting depth 0.
fn stmt_start(code: &[u8], pos: usize) -> usize {
    let mut depth = 0usize;
    let mut i = pos;
    while i > 0 {
        i -= 1;
        match code[i] {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b';' | b'{' | b'}' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    0
}

/// End of the statement containing `pos`: the next `;` or block `{`
/// at nesting depth 0.
fn stmt_end(code: &[u8], pos: usize) -> usize {
    let mut depth = 0usize;
    let mut i = pos;
    while i < code.len() {
        match code[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b';' | b'{' | b'}' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Whether `range` of the cleaned code contains `token` as a whole
/// identifier.
fn span_has_token(code: &[u8], range: &Range<usize>, token: &str) -> bool {
    let span = &code[range.start.min(code.len())..range.end.min(code.len())];
    std::str::from_utf8(span).is_ok_and(|s| find_token(s, token).is_some())
}

/// Whether `range` smells like float math: an `f64`/`f32` token or a
/// `<digit>.<digit>` literal.
fn span_is_floaty(code: &[u8], range: &Range<usize>) -> bool {
    if span_has_token(code, range, "f64") || span_has_token(code, range, "f32") {
        return true;
    }
    let span = &code[range.start.min(code.len())..range.end.min(code.len())];
    span.windows(3)
        .any(|w| matches!(w, [a, b'.', c] if a.is_ascii_digit() && c.is_ascii_digit()))
}

/// Whether the call whose name starts at `start` may be resolved
/// against the per-crate index: plain and `path::` calls always, but
/// method calls only on a `self` receiver. Resolving `x.insert(..)`
/// against an unrelated same-crate `fn insert` would smear that fn's
/// facts over every container call in the crate.
fn resolvable_call(code: &[u8], start: usize) -> bool {
    match prev_non_ws(code, start) {
        Some((dot, b'.')) => receiver_ident(code, dot).as_deref() == Some("self"),
        _ => true,
    }
}

// ---------------------------------------------------------------------
// Rule: atomic-order.
// ---------------------------------------------------------------------

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const RMW_METHODS: [&str; 12] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The call a byte position is an argument of: the byte offset of the
/// unmatched `(` to its left within the current statement.
fn enclosing_call_open(code: &[u8], pos: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = pos;
    while i > 0 {
        i -= 1;
        match code[i] {
            b')' | b']' => depth += 1,
            b'(' => {
                if depth == 0 {
                    return Some(i);
                }
                depth -= 1;
            }
            b'[' => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            b';' | b'{' | b'}' if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Audits every `Ordering::<X>` site in one file. See module docs.
pub fn check_atomic_order(file: &SourceFile, out: &mut Vec<Finding>) {
    let s = &file.scanned;
    let code = s.code.as_bytes();
    // Per-receiver Acquire-side and Release-side site lists (library
    // lines only, so a test-only release can't "pair" a library
    // acquire).
    let mut acquires: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    let mut releases: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();

    for at in ident_occurrences(code, "Ordering") {
        // `Ordering::<one of the five atomic orderings>`; this also
        // keeps `cmp::Ordering::Less` comparators out.
        let after = at + "Ordering".len();
        let c1 = match next_non_ws(code, after) {
            Some((i, b':')) => i,
            _ => continue,
        };
        if code.get(c1 + 1) != Some(&b':') {
            continue;
        }
        let (ord_start, b) = match next_non_ws(code, c1 + 2) {
            Some(pair) => pair,
            None => continue,
        };
        if !is_ident_char(b) {
            continue;
        }
        let mut ord_end = ord_start;
        while ord_end < code.len() && is_ident_char(code[ord_end]) {
            ord_end += 1;
        }
        let ord = match std::str::from_utf8(&code[ord_start..ord_end]) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let Some(ord) = ATOMIC_ORDERINGS.iter().find(|o| **o == ord) else {
            continue;
        };

        // The method this ordering is an argument of, and its
        // receiver: `self.epoch.load(Ordering::Acquire)`.
        let (method, receiver) = match enclosing_call_open(code, at) {
            Some(open) => {
                let method = ident_before(code, open).map(str::to_string);
                let receiver = method.as_ref().and_then(|m| {
                    let m_start = open - m.len();
                    match prev_non_ws(code, m_start) {
                        Some((dot, b'.')) => receiver_ident(code, dot),
                        _ => None,
                    }
                });
                (method, receiver)
            }
            None => (None, None),
        };
        let what = match (&receiver, &method) {
            (Some(r), Some(m)) => format!("`{r}.{m}`"),
            (None, Some(m)) => format!("`{m}`"),
            _ => "an unclassifiable site".to_string(),
        };
        let is_load = method.as_deref() == Some("load");
        let is_store = method.as_deref() == Some("store");
        let is_rmw = method.as_deref().is_some_and(|m| RMW_METHODS.contains(&m));

        match *ord {
            "Relaxed" => push_reasoned(
                out,
                s,
                &file.directives,
                &file.rel,
                at,
                RULE_ATOMIC_ORDER,
                format!(
                    "`Ordering::Relaxed` on {what}; record the happens-before argument with \
                     `// lint: allow(atomic-order): <why>` or strengthen the ordering"
                ),
            ),
            "SeqCst" => {
                // SeqCst still pairs with Acquire/Release sides below;
                // the finding is about cost, not correctness.
                if !s.is_test_line(s.line_of(at)) {
                    let key = receiver.clone().unwrap_or_else(|| "?".to_string());
                    if is_load || is_rmw {
                        acquires.entry(key.clone()).or_default();
                    }
                    if is_store || is_rmw {
                        releases.entry(key).or_default();
                    }
                }
                push_reasoned(
                    out,
                    s,
                    &file.directives,
                    &file.rel,
                    at,
                    RULE_ATOMIC_ORDER,
                    format!(
                        "`Ordering::SeqCst` on {what} is probably overkill; prefer \
                         Acquire/Release with a recorded pairing, or waive with the reason a \
                         total order is required"
                    ),
                )
            }
            _ => {
                // Acquire / Release / AcqRel: collect for pairing.
                if s.is_test_line(s.line_of(at)) {
                    continue;
                }
                let key = receiver.clone().unwrap_or_else(|| "?".to_string());
                let acq_side = (is_load || is_rmw) && (*ord == "Acquire" || *ord == "AcqRel");
                let rel_side = (is_store || is_rmw) && (*ord == "Release" || *ord == "AcqRel");
                if acq_side {
                    acquires
                        .entry(key.clone())
                        .or_default()
                        .push((at, what.clone()));
                }
                if rel_side {
                    releases
                        .entry(key.clone())
                        .or_default()
                        .push((at, what.clone()));
                }
                if !acq_side && !rel_side {
                    push_reasoned(
                        out,
                        s,
                        &file.directives,
                        &file.rel,
                        at,
                        RULE_ATOMIC_ORDER,
                        format!(
                            "`Ordering::{ord}` on {what} is not a recognizable load/store/RMW \
                             site; waive with the pairing argument"
                        ),
                    );
                }
            }
        }
    }

    // Unpaired sides: an Acquire with no same-receiver Release-side
    // writer in this file (or vice versa) needs the cross-file pairing
    // recorded.
    for (recv, sites) in &acquires {
        if releases.contains_key(recv) {
            continue;
        }
        for (at, what) in sites {
            push_reasoned(
                out,
                s,
                &file.directives,
                &file.rel,
                *at,
                RULE_ATOMIC_ORDER,
                format!(
                    "Acquire on {what} has no Release-side writer of `{recv}` in this file; \
                     record where the release lives with `// lint: allow(atomic-order): <where>`"
                ),
            );
        }
    }
    for (recv, sites) in &releases {
        if acquires.contains_key(recv) {
            continue;
        }
        for (at, what) in sites {
            push_reasoned(
                out,
                s,
                &file.directives,
                &file.rel,
                *at,
                RULE_ATOMIC_ORDER,
                format!(
                    "Release on {what} has no Acquire-side reader of `{recv}` in this file; \
                     record where the acquire lives with `// lint: allow(atomic-order): <where>`"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Per-crate function/call index.
// ---------------------------------------------------------------------

/// Facts about one (possibly merged, if names collide) function.
#[derive(Debug, Default, Clone)]
pub struct FnFacts {
    /// Contains a panic source, directly or via a same-crate callee.
    pub can_panic: bool,
    /// Contains a `catch_unwind` boundary, capping panic propagation.
    pub has_boundary: bool,
    /// Lock names acquired in the body, directly or transitively.
    pub acquires: BTreeSet<String>,
    /// Same-crate call targets (by bare name).
    pub calls: BTreeSet<String>,
}

/// Name → facts for every `fn` in one crate, closed under same-crate
/// calls (a fixed point over `can_panic` and `acquires`).
pub type CrateIndex = BTreeMap<String, FnFacts>;

/// Every direct panic source in a file: `.unwrap()`/`.expect(..)`
/// method calls and the panic-family macros, as `(position,
/// human-readable token)` pairs.
fn panic_sites(code: &[u8]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for m in ["unwrap", "expect"] {
        for at in ident_occurrences(code, m) {
            let is_method = matches!(prev_non_ws(code, at), Some((_, b'.')));
            let called = matches!(next_non_ws(code, at + m.len()), Some((_, b'(')));
            if is_method && called {
                out.push((at, format!(".{m}(..)")));
            }
        }
    }
    for mac in [
        "panic",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ] {
        for at in ident_occurrences(code, mac) {
            if code.get(at + mac.len()) == Some(&b'!') {
                out.push((at, format!("{mac}!")));
            }
        }
    }
    out.sort();
    out
}

/// Direct panic evidence inside `range`, if any (a human-readable
/// token for the finding message).
fn direct_panic_evidence(code: &[u8], range: &Range<usize>) -> Option<String> {
    panic_sites(code)
        .into_iter()
        .find(|(at, _)| range.contains(at))
        .map(|(_, token)| token)
}

/// Builds the per-crate indexes for a set of files. Functions inside
/// `#[cfg(test)]` regions are skipped (test code panics by design and
/// must not poison library facts).
pub fn build_indexes(files: &[SourceFile]) -> BTreeMap<String, CrateIndex> {
    let mut indexes: BTreeMap<String, CrateIndex> = BTreeMap::new();
    for file in files {
        let s = &file.scanned;
        let code = s.code.as_bytes();
        let index = indexes.entry(crate_of(&file.rel).to_string()).or_default();
        // Per-file extractions, hoisted out of the per-fn loop.
        let sites = lock_sites(file);
        let panic_positions: Vec<usize> = panic_sites(code).into_iter().map(|(p, _)| p).collect();
        let boundary_positions = ident_occurrences(code, "catch_unwind");
        let all_calls = calls_in(code, 0..code.len());
        for f in &file.tree.fns {
            if s.is_test_line(s.line_of(f.header)) {
                continue;
            }
            let Some(body) = file.tree.fn_body(f) else {
                continue;
            };
            let range = body.start..body.end;
            let direct_panic = panic_positions.iter().any(|p| range.contains(p));
            let has_boundary = boundary_positions.iter().any(|p| range.contains(p));
            let calls: BTreeSet<String> = all_calls
                .iter()
                .filter(|(pos, _)| range.contains(pos) && resolvable_call(code, *pos))
                .map(|(_, name)| name.clone())
                .collect();
            let acquires: BTreeSet<String> = sites
                .iter()
                .filter(|site| range.contains(&site.pos))
                .map(|site| site.name.clone())
                .collect();
            // Same-name collisions (e.g. `new` across impls) merge
            // conservatively: any colliding fn panicking marks the
            // name panicking; a boundary only counts if all carriers
            // have one.
            let entry = index.entry(f.name.clone()).or_insert_with(|| FnFacts {
                has_boundary: true,
                ..FnFacts::default()
            });
            entry.can_panic |= direct_panic;
            entry.has_boundary &= has_boundary;
            entry.acquires.extend(acquires);
            entry.calls.extend(calls);
        }
    }
    for index in indexes.values_mut() {
        propagate(index);
    }
    indexes
}

/// Closes `can_panic` and `acquires` over same-crate calls.
fn propagate(index: &mut CrateIndex) {
    loop {
        let mut changed = false;
        let names: Vec<String> = index.keys().cloned().collect();
        for name in &names {
            let facts = index[name].clone();
            let mut can_panic = facts.can_panic;
            let mut acquires = facts.acquires.clone();
            for callee in &facts.calls {
                if callee == name {
                    continue;
                }
                if let Some(target) = index.get(callee) {
                    can_panic |= target.can_panic && !target.has_boundary;
                    acquires.extend(target.acquires.iter().cloned());
                }
            }
            let entry = index
                .get_mut(name)
                .filter(|e| can_panic != e.can_panic || acquires.len() != e.acquires.len());
            if let Some(entry) = entry {
                entry.can_panic = can_panic;
                entry.acquires = acquires;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Whether a call to `name` in `krate` can panic per the index.
fn callee_can_panic<'a>(
    indexes: &'a BTreeMap<String, CrateIndex>,
    krate: &str,
    name: &str,
) -> Option<&'a FnFacts> {
    indexes
        .get(krate)
        .and_then(|idx| idx.get(name))
        .filter(|facts| facts.can_panic && !facts.has_boundary)
}

// ---------------------------------------------------------------------
// Rule: lock-order.
// ---------------------------------------------------------------------

/// One `.lock()`/`.write()`/`.read()` acquisition and the span its
/// guard is conservatively assumed to live for.
struct LockSite {
    /// Byte offset of the method name.
    pos: usize,
    /// The receiver identifier — the graph's node name.
    name: String,
    /// Guard lifetime: statement end for temporaries, enclosing block
    /// end for `let`-bound (and `if let`/`match`) guards.
    range: Range<usize>,
}

/// Extracts the lock-acquisition sites of one file. `.read()`/
/// `.write()` only count in files that mention `RwLock` and only with
/// empty argument lists, which keeps `io::Read`/`Write` out.
fn lock_sites(file: &SourceFile) -> Vec<LockSite> {
    let s = &file.scanned;
    let code = s.code.as_bytes();
    let has_rwlock = find_token(&s.code, "RwLock").is_some();
    let mut out = Vec::new();
    for method in ["lock", "write", "read"] {
        if method != "lock" && !has_rwlock {
            continue;
        }
        for at in ident_occurrences(code, method) {
            let dot = match prev_non_ws(code, at) {
                Some((i, b'.')) => i,
                _ => continue,
            };
            let open = match next_non_ws(code, at + method.len()) {
                Some((i, b'(')) => i,
                _ => continue,
            };
            // Lock acquisition takes no arguments.
            if !matches!(next_non_ws(code, open + 1), Some((_, b')'))) {
                continue;
            }
            let Some(name) = receiver_ident(code, dot) else {
                continue;
            };
            let start = stmt_start(code, at);
            let head = std::str::from_utf8(&code[start..at]).unwrap_or("");
            let bound = find_token(head, "let").is_some() || find_token(head, "match").is_some();
            let end = if bound {
                file.tree.enclosing_block_end(at, code.len())
            } else {
                stmt_end(code, at)
            };
            out.push(LockSite {
                pos: at,
                name,
                range: at..end,
            });
        }
    }
    out
}

/// A held-lock → acquired-lock edge, recorded at the inner
/// acquisition (or call) site.
struct LockEdge {
    from: String,
    to: String,
    file: usize,
    pos: usize,
}

/// Builds the workspace lock graph and reports every edge that
/// participates in a cycle. A reasoned waiver on the inner acquisition
/// site removes the edge *before* cycle detection, so one justified
/// edge breaks the whole cycle.
pub fn check_lock_order(
    files: &[SourceFile],
    indexes: &BTreeMap<String, CrateIndex>,
    out: &mut Vec<Finding>,
) {
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut seen: BTreeSet<(String, String, usize, usize)> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        let s = &file.scanned;
        let code = s.code.as_bytes();
        let krate = crate_of(&file.rel);
        let sites = lock_sites(file);
        let mut push_edge = |from: &str, to: &str, pos: usize| {
            let line = s.line_of(pos);
            if s.is_test_line(line)
                || file
                    .directives
                    .is_allowed_with_reason(line, RULE_LOCK_ORDER)
            {
                return;
            }
            if seen.insert((from.to_string(), to.to_string(), fi, line)) {
                edges.push(LockEdge {
                    from: from.to_string(),
                    to: to.to_string(),
                    file: fi,
                    pos,
                });
            }
        };
        for a in &sites {
            if s.is_test_line(s.line_of(a.pos)) {
                continue;
            }
            // Direct nesting: another acquisition while `a` is held.
            for b in &sites {
                if b.pos > a.pos && a.range.contains(&b.pos) {
                    push_edge(&a.name, &b.name, b.pos);
                }
            }
            // Calls made while `a` is held acquire whatever the
            // callee (transitively) acquires. The acquisition call at
            // `a.pos` itself is excluded — the guard does not exist
            // until it returns.
            for (pos, callee) in calls_in(code, a.pos..a.range.end) {
                if pos == a.pos || !resolvable_call(code, pos) {
                    continue;
                }
                let Some(idx) = indexes.get(krate) else {
                    continue;
                };
                let Some(facts) = idx.get(&callee) else {
                    continue;
                };
                for to in &facts.acquires {
                    push_edge(&a.name, to, pos);
                }
            }
        }
    }

    // Adjacency over lock names; an edge is cyclic iff its target
    // reaches its source.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                continue;
            }
            for next in adj.get(n).into_iter().flatten() {
                if *next == to {
                    return true;
                }
                stack.push(next);
            }
        }
        false
    };
    for e in &edges {
        if !reaches(&e.to, &e.from) {
            continue;
        }
        let file = &files[e.file];
        let (from, to) = (&e.from, &e.to);
        let detail = if from == to {
            format!("re-acquires `{to}` while a `{from}` guard is still live (self-deadlock)")
        } else {
            format!(
                "acquires `{to}` while `{from}` is held, and `{to}` already reaches `{from}` \
                 in the workspace lock graph (deadlock cycle)"
            )
        };
        push_reasoned(
            out,
            &file.scanned,
            &file.directives,
            &file.rel,
            e.pos,
            RULE_LOCK_ORDER,
            format!("{detail}; fix the acquisition order or waive with the reason it is safe"),
        );
    }
}

// ---------------------------------------------------------------------
// Rule: float-det.
// ---------------------------------------------------------------------

/// `pubsub_core::parallel` helpers that *produce* per-thread data
/// whose reduction order must then be fixed by the consumer.
const PAR_PRODUCERS: [&str; 4] = ["par_chunks", "par_map", "par_map_indexed", "par_map_vec"];

/// The blessed reducer module: fixed-chunk decomposition lives here,
/// so its own internals are exempt.
const BLESSED_FLOAT_MODULE: &str = "core/src/parallel.rs";

/// Start of the method chain a `.` at `dot` belongs to: walks left
/// over `.method(args)`, `.field`, `[index]`, and `path::` segments.
fn chain_start(code: &[u8], dot: usize) -> usize {
    let mut i = dot;
    loop {
        let Some((j, b)) = prev_non_ws(code, i) else {
            return i;
        };
        let seg_end = if b == b')' || b == b']' {
            match matching_open(code, j) {
                Some(open) => match prev_non_ws(code, open) {
                    Some((k, b2)) if is_ident_char(b2) => k + 1,
                    // `(expr).method()` — the paren group is the head.
                    _ => return open,
                },
                None => return i,
            }
        } else if is_ident_char(b) {
            j + 1
        } else {
            return i;
        };
        // The identifier (plus any `path::` prefix) ending at seg_end.
        let mut start = seg_end;
        while start > 0 && is_ident_char(code[start - 1]) {
            start -= 1;
        }
        while start >= 2 && &code[start - 2..start] == b"::" {
            start -= 2;
            while start > 0 && is_ident_char(code[start - 1]) {
                start -= 1;
            }
        }
        match prev_non_ws(code, start) {
            Some((m, b'.')) => i = m,
            _ => return start,
        }
    }
}

/// Flags order-sensitive `f64` accumulation over parallel-produced or
/// hash-ordered sequences. See module docs for what counts.
pub fn check_float_det(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel.ends_with(BLESSED_FLOAT_MODULE) {
        return;
    }
    let s = &file.scanned;
    let code = s.code.as_bytes();
    let hash_idents = hash_bound_idents(s);
    let source_kind = |range: &Range<usize>| -> Option<&'static str> {
        if PAR_PRODUCERS.iter().any(|p| span_has_token(code, range, p)) {
            return Some("parallel-produced");
        }
        if hash_idents.iter().any(|id| span_has_token(code, range, id)) {
            return Some("hash-ordered");
        }
        None
    };

    // `.sum()` / `.product()` at the end of a chain whose head span
    // mentions a parallel producer or a hash-bound identifier.
    for method in ["sum", "product"] {
        for at in ident_occurrences(code, method) {
            let dot = match prev_non_ws(code, at) {
                Some((i, b'.')) => i,
                _ => continue,
            };
            if !matches!(
                next_non_ws(code, at + method.len()),
                Some((_, b'(')) | Some((_, b':'))
            ) {
                continue;
            }
            let chain = chain_start(code, dot)..at;
            let stmt = stmt_start(code, at)..stmt_end(code, at);
            let Some(kind) = source_kind(&chain) else {
                continue;
            };
            if !span_is_floaty(code, &stmt) {
                continue;
            }
            push_reasoned(
                out,
                s,
                &file.directives,
                &file.rel,
                at,
                RULE_FLOAT_DET,
                format!(
                    "order-sensitive f64 accumulation: `.{method}()` over a {kind} sequence \
                     outside `pubsub_core::parallel`; reduce through the blessed fixed-chunk \
                     helpers or waive with the determinism argument"
                ),
            );
        }
    }

    // `+=` inside a `for .. in <par-or-hash expr>` loop whose span
    // smells like float math.
    let mut i = 1;
    while i < code.len() {
        let is_plus_eq = code[i] == b'=' && code[i - 1] == b'+' && (i < 2 || code[i - 2] != b'+');
        if !is_plus_eq {
            i += 1;
            continue;
        }
        let at = i - 1;
        i += 1;
        let mut block = file.tree.innermost_block(at);
        while let Some(b) = block {
            let header_start = stmt_start(code, b.start);
            let header = code[header_start..b.start].to_vec();
            let header_str = std::str::from_utf8(&header).unwrap_or("");
            let is_for =
                header_str.trim_start().starts_with("for ") || header_str.trim_start() == "for";
            if is_for {
                if let Some(in_pos) = find_token(header_str, "in") {
                    let iter_expr = (header_start + in_pos)..b.start;
                    // Float suspicion looks at the whole enclosing fn:
                    // the accumulator's `0.0` initializer and the `->
                    // f64` return type usually sit outside the loop.
                    let floaty_span = match file.tree.enclosing_fn(at) {
                        Some(f) => {
                            let end = file.tree.fn_body(f).map_or(b.end, |body| body.end);
                            f.header..end
                        }
                        None => header_start..b.end,
                    };
                    if let Some(kind) = source_kind(&iter_expr) {
                        if span_is_floaty(code, &floaty_span) {
                            push_reasoned(
                                out,
                                s,
                                &file.directives,
                                &file.rel,
                                at,
                                RULE_FLOAT_DET,
                                format!(
                                    "order-sensitive f64 accumulation: `+=` in a loop over a \
                                     {kind} sequence outside `pubsub_core::parallel`; reduce \
                                     through the blessed fixed-chunk helpers or waive with the \
                                     determinism argument"
                                ),
                            );
                            break;
                        }
                    }
                }
            }
            block = b.parent.and_then(|p| file.tree.blocks.get(p));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: thread-panic.
// ---------------------------------------------------------------------

/// Calls whose closure argument runs on another thread. (`thread::
/// scope`'s own closure runs on the caller thread and is exempt; the
/// closures it passes to `Scope::spawn` are not.)
const BOUNDARY_CALLS: [&str; 2] = ["spawn", "par_map_vec"];

/// Flags thread-boundary closures that can panic — directly or via a
/// same-crate callee — without a `catch_unwind` boundary in the span.
pub fn check_thread_panic(
    files: &[SourceFile],
    indexes: &BTreeMap<String, CrateIndex>,
    out: &mut Vec<Finding>,
) {
    for file in files {
        let s = &file.scanned;
        let code = s.code.as_bytes();
        let krate = crate_of(&file.rel);
        for name in BOUNDARY_CALLS {
            for at in ident_occurrences(code, name) {
                let open = at + name.len();
                if code.get(open) != Some(&b'(') {
                    continue;
                }
                // Skip `fn spawn(..)` definitions — the rule audits
                // call sites.
                let is_def = matches!(
                    prev_non_ws(code, at),
                    Some((i, _)) if ident_before(code, i + 1) == Some("fn")
                );
                if is_def {
                    continue;
                }
                let close = matching_close(code, open);
                let span = open + 1..close;
                if span_has_token(code, &span, "catch_unwind") {
                    continue;
                }
                let evidence = direct_panic_evidence(code, &span).or_else(|| {
                    calls_in(code, span.clone())
                        .into_iter()
                        .find_map(|(pos, callee)| {
                            if !resolvable_call(code, pos) {
                                return None;
                            }
                            callee_can_panic(indexes, krate, &callee)
                                .map(|_| format!("calls `{callee}`, which can panic"))
                        })
                });
                let Some(evidence) = evidence else {
                    continue;
                };
                push_reasoned(
                    out,
                    s,
                    &file.directives,
                    &file.rel,
                    at,
                    RULE_THREAD_PANIC,
                    format!(
                        "closure passed to `{name}` can panic ({evidence}) with no \
                         `catch_unwind`-style boundary; contain the panic or waive with the \
                         argument for why escape is acceptable"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, SourceFile};

    fn sf(src: &str) -> SourceFile {
        SourceFile::new("crates/demo/src/lib.rs", src, FileKind::Library)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn receiver_walks_through_index_expressions() {
        let code = b"slots[i].lock()";
        let dot = code.iter().position(|&b| b == b'.').expect("dot");
        assert_eq!(receiver_ident(code, dot).as_deref(), Some("slots"));
        let code = b"self.shared.queue.lock()";
        assert_eq!(receiver_ident(code, 17).as_deref(), Some("queue"));
    }

    #[test]
    fn chain_start_spans_multiline_method_chains() {
        let src = "fn f() { let t: f64 = parallel::par_chunks(n, 4, |r| go(r))\n    .into_iter()\n    .sum(); }";
        let code = src.as_bytes();
        let sum_at = src.find("sum").expect("sum");
        let dot = prev_non_ws(code, sum_at).expect("dot").0;
        let start = chain_start(code, dot);
        let span = &src[start..sum_at];
        assert!(span.starts_with("parallel::par_chunks"), "span: {span}");
    }

    #[test]
    fn relaxed_without_reason_is_flagged_and_with_reason_is_not() {
        let bad = sf("fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }");
        let mut out = Vec::new();
        check_atomic_order(&bad, &mut out);
        assert_eq!(rules_of(&out), vec![RULE_ATOMIC_ORDER]);

        let waived = sf(
            "fn f(c: &AtomicU64) -> u64 {\n    // lint: allow(atomic-order): stats counter, exact after join\n    c.load(Ordering::Relaxed)\n}",
        );
        out.clear();
        check_atomic_order(&waived, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let reasonless = sf(
            "fn f(c: &AtomicU64) -> u64 {\n    // lint: allow(atomic-order)\n    c.load(Ordering::Relaxed)\n}",
        );
        out.clear();
        check_atomic_order(&reasonless, &mut out);
        assert_eq!(out.len(), 1, "bare waiver must not count: {out:?}");
    }

    #[test]
    fn paired_acquire_release_is_silent_and_unpaired_is_not() {
        let paired = sf("fn get(e: &E) -> u64 { e.epoch.load(Ordering::Acquire) }\n\
             fn publish(e: &E) { e.epoch.fetch_add(1, Ordering::Release); }");
        let mut out = Vec::new();
        check_atomic_order(&paired, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let unpaired = sf("fn get(e: &E) -> u64 { e.epoch.load(Ordering::Acquire) }");
        out.clear();
        check_atomic_order(&unpaired, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("no Release-side writer"));
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let file = sf("fn f(a: u32, b: u32) -> Ordering { Ordering::Less.then(a.cmp(&b)) }");
        let mut out = Vec::new();
        check_atomic_order(&file, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn opposite_lock_orders_cycle_and_consistent_orders_do_not() {
        let cyclic = sf("fn ab() { let a = ALPHA.lock(); let b = BETA.lock(); }\n\
             fn ba() { let b = BETA.lock(); let a = ALPHA.lock(); }");
        let files = [cyclic];
        let idx = build_indexes(&files);
        let mut out = Vec::new();
        check_lock_order(&files, &idx, &mut out);
        assert_eq!(
            rules_of(&out),
            vec![RULE_LOCK_ORDER, RULE_LOCK_ORDER],
            "{out:?}"
        );

        let ordered = sf("fn ab() { let a = ALPHA.lock(); let b = BETA.lock(); }\n\
             fn ab2() { let a = ALPHA.lock(); let b = BETA.lock(); }");
        let files = [ordered];
        let idx = build_indexes(&files);
        out.clear();
        check_lock_order(&files, &idx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_cycle_through_a_same_crate_call_is_found() {
        let file = sf("fn outer() { let a = ALPHA.lock(); helper(); }\n\
             fn helper() { let b = BETA.lock(); let a = ALPHA.lock(); }");
        // helper acquires BETA then ALPHA; outer holds ALPHA across
        // the helper() call, so ALPHA -> BETA (via the call) and
        // BETA -> ALPHA (direct) close a cycle.
        let files = [file];
        let idx = build_indexes(&files);
        let mut out = Vec::new();
        check_lock_order(&files, &idx, &mut out);
        assert!(!out.is_empty(), "expected a cycle through helper()");
    }

    #[test]
    fn acquisition_call_itself_is_not_a_held_edge() {
        // Regression: the `.lock()` call at the acquisition site used
        // to resolve against a same-crate `fn lock` and build a
        // self-edge.
        let file = sf("impl Q { fn lock(&self) -> G { self.state.lock() } }\n\
             fn use_q(q: &Q) { let g = STATE_OWNER.lock(); }");
        let files = [file];
        let idx = build_indexes(&files);
        let mut out = Vec::new();
        check_lock_order(&files, &idx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn serial_slice_sum_is_allowed_and_par_chain_is_not() {
        let serial = sf("fn mean(xs: &[f64]) -> f64 { let t: f64 = xs.iter().sum(); t }");
        let mut out = Vec::new();
        check_float_det(&serial, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let par = sf(
            "fn total(n: usize) -> f64 {\n    parallel::par_chunks(n, 4, |r| r.len() as f64 * 0.5)\n        .into_iter()\n        .sum()\n}",
        );
        out.clear();
        check_float_det(&par, &mut out);
        assert_eq!(rules_of(&out), vec![RULE_FLOAT_DET], "{out:?}");
    }

    #[test]
    fn hash_ordered_accumulation_is_flagged() {
        let file = sf(
            "fn f(m: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0;\n    for v in m.values() {\n        acc += v;\n    }\n    acc\n}",
        );
        let mut out = Vec::new();
        check_float_det(&file, &mut out);
        assert_eq!(rules_of(&out), vec![RULE_FLOAT_DET], "{out:?}");
        assert!(out[0].message.contains("hash-ordered"), "{out:?}");
    }

    #[test]
    fn spawned_panic_needs_a_boundary() {
        let bad = sf("fn f() { std::thread::spawn(|| x.expect(\"boom\")); }");
        let files = [bad];
        let idx = build_indexes(&files);
        let mut out = Vec::new();
        check_thread_panic(&files, &idx, &mut out);
        assert_eq!(rules_of(&out), vec![RULE_THREAD_PANIC], "{out:?}");

        let guarded = sf(
            "fn f() { std::thread::spawn(|| { let _ = std::panic::catch_unwind(|| x.expect(\"boom\")); }); }",
        );
        let files = [guarded];
        let idx = build_indexes(&files);
        out.clear();
        check_thread_panic(&files, &idx, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let quiet = sf("fn f() { std::thread::spawn(|| 1 + 1); }");
        let files = [quiet];
        let idx = build_indexes(&files);
        out.clear();
        check_thread_panic(&files, &idx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn transitive_panic_reaches_the_boundary_and_boundaries_cap_it() {
        let file = sf("fn deep() { inner(); }\n\
             fn inner() { panic!(\"bad\"); }\n\
             fn f() { std::thread::spawn(|| deep()); }");
        let files = [file];
        let idx = build_indexes(&files);
        let mut out = Vec::new();
        check_thread_panic(&files, &idx, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("calls `deep`"), "{out:?}");

        let capped = sf("fn deep() { let _ = catch_unwind(|| inner()); }\n\
             fn inner() { panic!(\"bad\"); }\n\
             fn f() { std::thread::spawn(|| deep()); }");
        let files = [capped];
        let idx = build_indexes(&files);
        out.clear();
        check_thread_panic(&files, &idx, &mut out);
        assert!(
            out.is_empty(),
            "catch_unwind in deep() caps propagation: {out:?}"
        );
    }
}
