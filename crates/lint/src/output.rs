//! Output renderers for the `pubsub-lint` binary: plain text, GitHub
//! workflow-command annotations, and JSON.

use crate::rules::Finding;

/// Escapes a message for a GitHub workflow-command *value*: `%`, `\r`
/// and `\n` must be percent-encoded or they terminate the command.
fn github_escape_value(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command *property* (file names): values plus
/// `:` and `,`, which delimit properties.
fn github_escape_property(s: &str) -> String {
    github_escape_value(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// One finding as a GitHub annotation:
/// `::error file=<f>,line=<n>,title=<rule>::<message>`.
pub fn format_github(f: &Finding) -> String {
    format!(
        "::error file={},line={},title=pubsub-lint {}::{}",
        github_escape_property(&f.file),
        f.line,
        github_escape_property(f.rule),
        github_escape_value(&f.message),
    )
}

/// Escapes a string for a JSON string literal body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The whole finding set as a JSON document:
/// `{"findings": [{"file", "line", "rule", "message"}, ...]}`.
pub fn format_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/core/src/service.rs".to_string(),
            line: 42,
            rule: crate::RULE_ATOMIC_ORDER,
            message: "50% done\nnext \"line\"".to_string(),
        }
    }

    #[test]
    fn github_annotations_escape_control_bytes() {
        let line = format_github(&finding());
        assert_eq!(
            line,
            "::error file=crates/core/src/service.rs,line=42,title=pubsub-lint \
             atomic-order::50%25 done%0Anext \"line\""
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let doc = format_json(&[finding()]);
        assert!(doc.starts_with("{\"findings\":[{"));
        assert!(doc.contains("\\n"));
        assert!(doc.contains("\\\"line\\\""));
        assert!(doc.ends_with("]}"));
        assert_eq!(format_json(&[]), "{\"findings\":[]}");
    }
}
