//! Comment- and string-aware source preprocessing.
//!
//! The lint rules are token-level: they never parse Rust, they match
//! character patterns against a *cleaned* view of each file in which
//! comment text and string-literal contents have been blanked out.
//! That makes the rules immune to the classic grep failure modes — a
//! `panic!` mentioned in a doc comment, an `unwrap` inside an error
//! message — while staying dependency-free.
//!
//! The scanner also extracts the three side channels the rules need:
//!
//! * comment text per line (lint directives live in comments),
//! * string-literal contents per line (the env-knob registry reads
//!   `"PUBSUB_*"` names out of real code strings),
//! * which lines belong to `#[cfg(test)]` regions (most rules only
//!   apply to production code).

/// A preprocessed source file.
pub struct ScannedFile {
    /// The source with comments and string/char contents replaced by
    /// spaces. Newlines are preserved, so byte offsets into `code` map
    /// to the original line numbers. String *delimiters* (the quotes)
    /// are kept: rules use them to recognise literal arguments.
    pub code: String,
    /// Concatenated comment text for each line (1-indexed via
    /// `comments[line - 1]`).
    pub comments: Vec<String>,
    /// `(line, content)` for every string literal in the file.
    pub strings: Vec<(usize, String)>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// Byte offset of the start of each line in `code`.
    line_starts: Vec<usize>,
}

impl ScannedFile {
    /// The 1-indexed line containing byte offset `pos` of `code`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `line` (1-indexed) is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Comment text on `line` (1-indexed), empty if none.
    pub fn comment(&self, line: usize) -> &str {
        self.comments.get(line - 1).map_or("", String::as_str)
    }

    /// Whether `line` (1-indexed) contains any non-whitespace code.
    pub fn line_has_code(&self, line: usize) -> bool {
        let lo = match self.line_starts.get(line - 1) {
            Some(&lo) => lo,
            None => return false,
        };
        let hi = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.code.len());
        self.code[lo..hi].bytes().any(|b| !b.is_ascii_whitespace())
    }

    /// Number of lines in the file.
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The cleaned text of `line` (1-indexed), without the newline.
    pub fn line_str(&self, line: usize) -> &str {
        let lo = match self.line_starts.get(line - 1) {
            Some(&lo) => lo,
            None => return "",
        };
        let hi = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.code.len());
        self.code[lo..hi].trim_end_matches('\n')
    }

    /// Byte offset of the start of `line` (1-indexed) in `code`.
    pub fn line_start(&self, line: usize) -> usize {
        self.line_starts.get(line - 1).copied().unwrap_or(0)
    }
}

/// Preprocess `source` into a [`ScannedFile`].
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push('\n');
            comments.push(String::new());
            line += 1;
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment (plain, `///` doc, or `//!` inner doc).
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                code.push(' ');
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            comments[line - 1].push_str(&text);
            comments[line - 1].push(' ');
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Block comment, possibly nested. Comment text is recorded
            // per line so directives inside block comments also work.
            let mut depth = 1usize;
            code.push(' ');
            code.push(' ');
            i += 2;
            let mut text = String::new();
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    code.push(' ');
                    code.push(' ');
                    text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    code.push(' ');
                    code.push(' ');
                    text.push_str("*/");
                    i += 2;
                } else if chars[i] == '\n' {
                    comments[line - 1].push_str(&text);
                    comments[line - 1].push(' ');
                    text.clear();
                    code.push('\n');
                    comments.push(String::new());
                    line += 1;
                    i += 1;
                } else {
                    text.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            comments[line - 1].push_str(&text);
            comments[line - 1].push(' ');
        } else if is_raw_string_start(&chars, i) {
            // r"...", r#"..."#, br"...", br#"..."# — no escapes, the
            // closing delimiter is `"` followed by the same number of
            // `#`s as the opening one.
            let mut j = i;
            if chars[j] == 'b' {
                code.push('b');
                j += 1;
            }
            code.push('r');
            j += 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                code.push('#');
                hashes += 1;
                j += 1;
            }
            code.push('"');
            j += 1; // opening quote
            let start_line = line;
            let mut text = String::new();
            while j < chars.len() {
                if chars[j] == '"' && count_hashes(&chars, j + 1) >= hashes {
                    break;
                }
                if chars[j] == '\n' {
                    code.push('\n');
                    comments.push(String::new());
                    line += 1;
                } else {
                    code.push(' ');
                }
                text.push(chars[j]);
                j += 1;
            }
            strings.push((start_line, text));
            if j < chars.len() {
                code.push('"');
                j += 1; // closing quote
                for _ in 0..hashes {
                    code.push('#');
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            // Ordinary (or byte) string literal with escapes.
            let mut j = i;
            if chars[j] == 'b' {
                code.push('b');
                j += 1;
            }
            code.push('"');
            j += 1;
            let start_line = line;
            let mut text = String::new();
            while j < chars.len() && chars[j] != '"' {
                if chars[j] == '\\' && j + 1 < chars.len() {
                    text.push(chars[j]);
                    text.push(chars[j + 1]);
                    code.push(' ');
                    if chars[j + 1] == '\n' {
                        code.push('\n');
                        comments.push(String::new());
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        code.push('\n');
                        comments.push(String::new());
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                    text.push(chars[j]);
                    j += 1;
                }
            }
            strings.push((start_line, text));
            if j < chars.len() {
                code.push('"');
                j += 1;
            }
            i = j;
        } else if c == '\'' {
            // Char literal vs lifetime. `'\...'` and `'x'` are char
            // literals; anything else (`'a`, `'static`) is a lifetime
            // and only the quote is consumed.
            if chars.get(i + 1) == Some(&'\\') {
                code.push('\'');
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '\'' {
                    code.push(' ');
                    j += if chars[j] == '\\' { 2 } else { 1 };
                }
                if j < chars.len() {
                    code.push('\'');
                    j += 1;
                }
                i = j;
            } else if chars.get(i + 2) == Some(&'\'') {
                code.push('\'');
                code.push(' ');
                code.push('\'');
                i += 3;
            } else {
                code.push('\'');
                i += 1;
            }
        } else {
            code.push(c);
            i += 1;
        }
    }

    let mut line_starts = vec![0usize];
    for (pos, b) in code.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(pos + 1);
        }
    }
    while comments.len() < line_starts.len() {
        comments.push(String::new());
    }

    let test_lines = mark_test_regions(&code, &line_starts);
    ScannedFile {
        code,
        comments,
        strings,
        test_lines,
        line_starts,
    }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    // The `r` must not be the tail of an identifier (`var`, `incr`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut j: usize) -> usize {
    let mut n = 0;
    while chars.get(j) == Some(&'#') {
        n += 1;
        j += 1;
    }
    n
}

/// Mark every line covered by a `#[cfg(test)]` item. The attribute is
/// followed either by a braced item (`mod tests { ... }`, `fn`,
/// `impl`) — the region runs to the matching close brace — or by a
/// braceless item (`use`) terminated by `;`.
fn mark_test_regions(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut test = vec![false; line_starts.len()];
    let bytes = code.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut from = 0usize;
    while let Some(at) = find_bytes(bytes, needle, from) {
        let region_start = at;
        let mut j = at + needle.len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                // Skip a bracketed attribute.
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // Find the item body: first `{` (brace-matched) or `;`.
        let mut end = j;
        while end < bytes.len() && bytes[end] != b'{' && bytes[end] != b';' {
            end += 1;
        }
        if bytes.get(end) == Some(&b'{') {
            let mut depth = 0usize;
            while end < bytes.len() {
                match bytes[end] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
        }
        let first = line_index(line_starts, region_start);
        let last = line_index(line_starts, end.min(bytes.len().saturating_sub(1)));
        for t in test.iter_mut().take(last + 1).skip(first) {
            *t = true;
        }
        from = end.max(at + 1);
    }
    test
}

fn line_index(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

/// First occurrence of `needle` in `haystack` at or after `from`.
pub fn find_bytes(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"panic!\"; // unwrap() here\nlet y = 1; /* .expect( */\n";
        let s = scan(src);
        assert!(!s.code.contains("panic!"));
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains(".expect"));
        assert_eq!(s.strings, vec![(1, "panic!".to_string())]);
        assert!(s.comment(1).contains("unwrap() here"));
        assert!(s.comment(2).contains(".expect("));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = "let a = r#\"un\"wrap\"#; let b = \"q\\\"x\"; let c = 'a';\n";
        let s = scan(src);
        assert!(!s.code.contains("wrap"));
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0].1, "un\"wrap");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n";
        let s = scan(src);
        // The generic body must survive cleaning.
        assert!(s.code.contains("str"));
        assert!(s.code.contains("fn f"));
    }

    #[test]
    fn cfg_test_regions_cover_the_item() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n";
        let s = scan(src);
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }
}
