//! The `pubsub-lint` binary: run the workspace correctness lints.
//!
//! ```text
//! cargo run -p pubsub-lint [-- <workspace-root>]
//! ```
//!
//! Exit code 0 when the workspace is clean, 1 when any rule fired,
//! 2 on usage or I/O errors. See `DESIGN.md` §12 for the rule
//! catalogue and the waiver syntax.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("pubsub-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match pubsub_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "pubsub-lint: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match pubsub_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("pubsub-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("pubsub-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("pubsub-lint: {e}");
            ExitCode::from(2)
        }
    }
}
