//! The `pubsub-lint` binary: run the workspace correctness lints.
//!
//! ```text
//! cargo run -p pubsub-lint [-- [--format=plain|github|json] [--verbose] [<workspace-root>]]
//! ```
//!
//! * `--format=plain` (default) — `file:line: [rule] message` lines.
//! * `--format=github` — GitHub workflow-command annotations, so
//!   findings surface inline on pull requests.
//! * `--format=json` — a machine-readable `{"findings": [...]}`
//!   document.
//! * `--verbose` — per-rule wall-clock timings on stderr.
//!
//! Exit code 0 when the workspace is clean, 1 when any rule fired,
//! 2 on usage or I/O errors. See `DESIGN.md` §12 and §17 for the rule
//! catalogue and the waiver syntax.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Plain,
    Github,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Plain;
    let mut verbose = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--format=plain" => format = Format::Plain,
            "--format=github" => format = Format::Github,
            "--format=json" => format = Format::Json,
            "--verbose" => verbose = true,
            other if other.starts_with("--") => {
                eprintln!(
                    "pubsub-lint: unknown option `{other}` \
                     (expected --format=plain|github|json, --verbose, or a workspace root)"
                );
                return ExitCode::from(2);
            }
            path => root_arg = Some(PathBuf::from(path)),
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("pubsub-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match pubsub_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "pubsub-lint: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match pubsub_lint::lint_workspace_report(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pubsub-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if verbose {
        eprintln!(
            "pubsub-lint: {} file(s) scanned once, rule timings:",
            report.files_scanned
        );
        for (rule, dur) in &report.timings {
            eprintln!("  {rule:<18} {:>9.3} ms", dur.as_secs_f64() * 1e3);
        }
    }

    let findings = &report.findings;
    match format {
        Format::Plain => {
            for f in findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("pubsub-lint: workspace clean ({})", root.display());
            } else {
                println!("pubsub-lint: {} finding(s)", findings.len());
            }
        }
        Format::Github => {
            for f in findings {
                println!("{}", pubsub_lint::format_github(f));
            }
            if !findings.is_empty() {
                println!("pubsub-lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", pubsub_lint::format_json(findings)),
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
