//! A brace-matched item tree over the cleaned token stream.
//!
//! The concurrency rules ([`crate::concur`]) need more structure than
//! the flat character scan provides: which `fn` a byte belongs to,
//! where a block ends (to bound a lock guard's scope), and which
//! functions a body calls (to propagate can-panic / may-acquire facts
//! through the per-crate call graph). [`ItemTree`] supplies exactly
//! that — still without parsing Rust: blocks are matched braces in the
//! comment/string-blanked code, functions are `fn <ident>` headers
//! followed by their first depth-0 `{`, and calls are identifiers
//! followed by `(`.
//!
//! Known blind spots (shared with the rest of the scanner, see
//! DESIGN.md §17): macro bodies look like ordinary code, and a `fn`
//! keyword inside a macro invocation is treated as a real item. Both
//! over-approximate, which for the audit rules means at worst an extra
//! waiver, never a silently missed site.

use crate::rules::{is_ident_char, next_non_ws};
use crate::scan::ScannedFile;

/// A matched `{ ... }` region of the cleaned code.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Byte offset of the opening `{`.
    pub start: usize,
    /// Byte offset of the matching `}` (== `code.len()` when the file
    /// is truncated / unbalanced).
    pub end: usize,
    /// Index of the innermost enclosing block, if any.
    pub parent: Option<usize>,
}

/// A `fn` item: its name and body block.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's identifier.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub header: usize,
    /// Index into [`ItemTree::blocks`] of the body, `None` for
    /// bodyless trait-method declarations.
    pub body: Option<usize>,
}

/// The per-file structural index: blocks, functions, call sites.
pub struct ItemTree {
    /// Every brace block, ordered by `start`.
    pub blocks: Vec<Block>,
    /// Every `fn` item, ordered by `header`.
    pub fns: Vec<FnItem>,
}

/// Keywords that look like call heads (`if (..)`, `match (..)`) and
/// must not be recorded as callees.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "else", "while", "for", "match", "loop", "return", "fn", "move", "in", "let", "break",
];

impl ItemTree {
    /// Builds the tree from a scanned file's cleaned code.
    pub fn build(s: &ScannedFile) -> ItemTree {
        let code = s.code.as_bytes();
        let mut blocks: Vec<Block> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (i, &b) in code.iter().enumerate() {
            if b == b'{' {
                let parent = stack.last().copied();
                stack.push(blocks.len());
                blocks.push(Block {
                    start: i,
                    end: code.len(),
                    parent,
                });
            } else if b == b'}' {
                if let Some(idx) = stack.pop() {
                    blocks[idx].end = i;
                }
            }
        }

        let mut fns = Vec::new();
        for at in crate::rules::ident_occurrences(code, "fn") {
            // `fn` name: the next identifier.
            let (name_start, b) = match next_non_ws(code, at + 2) {
                Some(pair) => pair,
                None => continue,
            };
            if !is_ident_char(b) {
                continue;
            }
            let mut name_end = name_start;
            while name_end < code.len() && is_ident_char(code[name_end]) {
                name_end += 1;
            }
            let name = match std::str::from_utf8(&code[name_start..name_end]) {
                Ok(n) => n.to_string(),
                Err(_) => continue,
            };
            // The body is the first `{` outside parens/brackets; a `;`
            // first means a bodyless declaration.
            let mut depth = 0usize;
            let mut j = name_end;
            let mut body = None;
            while j < code.len() {
                match code[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth = depth.saturating_sub(1),
                    b'{' if depth == 0 => {
                        body = blocks.iter().position(|blk| blk.start == j);
                        break;
                    }
                    b';' if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            fns.push(FnItem {
                name,
                header: at,
                body,
            });
        }
        ItemTree { blocks, fns }
    }

    /// The innermost block containing byte `pos`, if any.
    pub fn innermost_block(&self, pos: usize) -> Option<&Block> {
        self.blocks
            .iter()
            .filter(|b| b.start < pos && pos <= b.end)
            .max_by_key(|b| b.start)
    }

    /// End (position of `}`) of the innermost block containing `pos`,
    /// or the code length when `pos` is at the top level.
    pub fn enclosing_block_end(&self, pos: usize, code_len: usize) -> usize {
        self.innermost_block(pos).map_or(code_len, |b| b.end)
    }

    /// The function whose body contains byte `pos`, if any (innermost
    /// wins for nested `fn` items).
    pub fn enclosing_fn(&self, pos: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter_map(|f| {
                let b = self.blocks.get(f.body?)?;
                (b.start < pos && pos <= b.end).then_some((b.start, f))
            })
            .max_by_key(|&(start, _)| start)
            .map(|(_, f)| f)
    }

    /// The block of a function item, if it has one.
    pub fn fn_body<'a>(&'a self, f: &FnItem) -> Option<&'a Block> {
        self.blocks.get(f.body?)
    }
}

/// Call sites within `range` of the cleaned `code`: identifiers
/// directly followed by `(` that are neither keywords, macro
/// invocations (`name!`), nor definitions (`fn name(`). Method-call
/// names are included — the per-crate indexes resolve them against
/// same-crate `fn` names, which is how `x.serve(..)` propagates facts
/// from `fn serve`.
pub fn calls_in(code: &[u8], range: std::ops::Range<usize>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end.min(code.len()) {
        if !is_ident_char(code[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < code.len() && is_ident_char(code[i]) {
            i += 1;
        }
        if code[start].is_ascii_digit() {
            continue;
        }
        let name = match std::str::from_utf8(&code[start..i]) {
            Ok(n) => n,
            Err(_) => continue,
        };
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Direct `name(`: macro bang and whitespace-separated `name (`
        // (a keyword-style use) are excluded; `fn name(` is a
        // definition, not a call.
        if code.get(i) != Some(&b'(') {
            continue;
        }
        if !preceded_by_fn(code, start) {
            out.push((start, name.to_string()));
        }
    }
    out
}

/// Whether the identifier starting at `start` is declared right after
/// a `fn` keyword (i.e. it's a definition, not a call).
fn preceded_by_fn(code: &[u8], start: usize) -> bool {
    let mut i = start;
    while i > 0 && code[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    i >= 2 && &code[i - 2..i] == b"fn" && (i == 2 || !is_ident_char(code[i - 3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn blocks_nest_and_fns_resolve() {
        let src = "fn outer() {\n    let x = 1;\n    { inner_call(); }\n}\nfn decl();\n";
        let s = scan(src);
        let t = ItemTree::build(&s);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "outer");
        assert!(t.fns[0].body.is_some());
        assert_eq!(t.fns[1].name, "decl");
        assert!(t.fns[1].body.is_none());
        let body = t.fn_body(&t.fns[0]).unwrap();
        assert!(body.start < body.end);
        // A position inside the nested block resolves to `outer`.
        let pos = s.code.find("inner_call").unwrap();
        assert_eq!(t.enclosing_fn(pos).unwrap().name, "outer");
        let inner = t.innermost_block(pos).unwrap();
        assert!(inner.start > body.start && inner.end < body.end);
    }

    #[test]
    fn signature_parens_do_not_open_the_body() {
        let src = "fn f(x: [u8; 4], g: fn() -> u8) -> u8 {\n    g()\n}\n";
        let s = scan(src);
        let t = ItemTree::build(&s);
        // `fn() -> u8` in the signature is a bodyless fn-pointer
        // "item"; the real `f` still finds its brace block.
        let f = t.fns.iter().find(|f| f.name == "f");
        assert!(f.is_none() || f.unwrap().body.is_some());
        let with_body: Vec<_> = t.fns.iter().filter(|f| f.body.is_some()).collect();
        assert_eq!(with_body.len(), 1);
    }

    #[test]
    fn calls_exclude_keywords_macros_and_definitions() {
        let src = "fn f() {\n    helper(1);\n    x.method(2);\n    vec![3];\n    if (a) {}\n    let y = format!(\"{}\", 1);\n}\n";
        let s = scan(src);
        let t = ItemTree::build(&s);
        let body = t.fn_body(&t.fns[0]).unwrap();
        let names: Vec<String> = calls_in(s.code.as_bytes(), body.start..body.end)
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"method".to_string()));
        assert!(!names.contains(&"f".to_string()));
        assert!(!names.contains(&"if".to_string()));
        assert!(!names.contains(&"vec".to_string()));
        assert!(!names.contains(&"format".to_string()));
    }
}
