//! The env-knob registry check.
//!
//! Every `PUBSUB_*` environment variable read anywhere in workspace
//! code must be documented in `docs/BENCHMARK.md`, and every knob the
//! documentation promises must still exist in code. Knob names are
//! collected from *string literals* on non-test lines (reads always
//! name the variable as a literal — `env_knob("PUBSUB_THREADS", ..)`),
//! so prose mentions in doc comments neither satisfy nor trigger the
//! rule. `PUBSUB_TEST_*` names are reserved for unit tests and exempt.

use std::collections::BTreeMap;

use crate::rules::{Finding, RULE_KNOB_REGISTRY};
use crate::scan::ScannedFile;

/// Knob names found in code, mapped to one representative site.
pub type KnobSites = BTreeMap<String, (String, usize)>;

/// Collect `PUBSUB_*` names from the string literals of one scanned
/// file into `sites`.
pub fn collect_knobs(path: &str, s: &ScannedFile, sites: &mut KnobSites) {
    for (line, content) in &s.strings {
        if s.is_test_line(*line) {
            continue;
        }
        for name in knob_names(content) {
            if name.starts_with("PUBSUB_TEST") {
                continue;
            }
            sites
                .entry(name)
                .or_insert_with(|| (path.to_string(), *line));
        }
    }
}

/// Compare code knobs against the documentation and report both
/// directions of drift.
pub fn check_registry(sites: &KnobSites, doc_path: &str, doc_text: &str) -> Vec<Finding> {
    let mut documented: BTreeMap<String, usize> = BTreeMap::new();
    for (i, line) in doc_text.lines().enumerate() {
        for name in knob_names(line) {
            documented.entry(name).or_insert(i + 1);
        }
    }
    let mut out = Vec::new();
    for (name, (file, line)) in sites {
        if !documented.contains_key(name) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE_KNOB_REGISTRY,
                message: format!("`{name}` is read here but not documented in {doc_path}"),
            });
        }
    }
    for (name, line) in &documented {
        if name.starts_with("PUBSUB_TEST") {
            continue;
        }
        if !sites.contains_key(name) {
            out.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: RULE_KNOB_REGISTRY,
                message: format!("`{name}` is documented here but never read by workspace code"),
            });
        }
    }
    out
}

/// Extract maximal `PUBSUB_[A-Z0-9_]+` names from `text`, trimming
/// trailing underscores (prose often writes the family as
/// `PUBSUB_RETRY_*`).
pub fn knob_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(at) = crate::scan::find_bytes(bytes, b"PUBSUB_", from) {
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
            from = at + 1;
            continue;
        }
        let mut j = at + "PUBSUB_".len();
        while j < bytes.len()
            && (bytes[j].is_ascii_uppercase() || bytes[j] == b'_' || bytes[j].is_ascii_digit())
        {
            j += 1;
        }
        let name = text[at..j].trim_end_matches('_');
        if name.len() > "PUBSUB_".len() {
            out.push(name.to_string());
        }
        from = j.max(at + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn extracts_knob_names() {
        assert_eq!(
            knob_names("set PUBSUB_THREADS and `PUBSUB_RETRY_*` but not SUBPUBSUB_X"),
            vec!["PUBSUB_THREADS".to_string(), "PUBSUB_RETRY".to_string()]
        );
        assert!(knob_names("PUBSUB_").is_empty());
    }

    #[test]
    fn both_directions_of_drift_are_reported() {
        let src = "fn f() { crate::env_knob(\"PUBSUB_ALPHA\", 1, |s| s.parse().ok()); }\n";
        let mut sites = KnobSites::new();
        collect_knobs("src/f.rs", &scan(src), &mut sites);
        assert!(sites.contains_key("PUBSUB_ALPHA"));

        let findings = check_registry(&sites, "docs/B.md", "only `PUBSUB_BETA` here\n");
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("PUBSUB_ALPHA"));
        assert!(findings[1].message.contains("PUBSUB_BETA"));
    }

    #[test]
    fn test_only_knobs_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { std::env::set_var(\"PUBSUB_SECRET\", \"1\"); }\n}\n";
        let mut sites = KnobSites::new();
        collect_knobs("src/f.rs", &scan(src), &mut sites);
        assert!(sites.is_empty());

        let src = "fn f() { let _ = std::env::var(\"PUBSUB_TEST_ONLY\"); }\n";
        collect_knobs("src/g.rs", &scan(src), &mut sites);
        assert!(sites.is_empty());
    }
}
