//! Self-tests for `pubsub-lint`: every known-bad fixture must be
//! flagged by exactly the rule it was written for, the clean fixture
//! and the real workspace must pass, and the allowed-side patterns
//! inside each fixture must stay silent.

use std::path::{Path, PathBuf};

use pubsub_lint::{
    lint_workspace, Finding, RULE_ATOMIC_ORDER, RULE_FLOAT_DET, RULE_HASH_ORDER, RULE_HOT_ALLOC,
    RULE_KNOB_REGISTRY, RULE_LITERAL_INDEX, RULE_LOCK_ORDER, RULE_NO_PANIC, RULE_THREAD_PANIC,
};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    lint_workspace(&fixture_root(name)).expect("fixture tree is readable")
}

/// Assert the fixture yields exactly `expected` findings, all from
/// `rule`.
fn assert_flagged(name: &str, rule: &str, expected: usize) -> Vec<Finding> {
    let findings = lint_fixture(name);
    assert_eq!(
        findings.len(),
        expected,
        "fixture {name}: expected {expected} findings, got: {findings:#?}"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "fixture {name}: unexpected rule in {f}");
    }
    findings
}

#[test]
fn bad_unwrap_is_flagged_once() {
    let findings = assert_flagged("bad_unwrap", RULE_NO_PANIC, 1);
    assert!(findings[0].message.contains("unwrap"));
}

#[test]
fn bad_expect_dynamic_is_flagged_once() {
    let findings = assert_flagged("bad_expect_dynamic", RULE_NO_PANIC, 1);
    assert!(findings[0].message.contains("non-literal"));
}

#[test]
fn bad_panic_flags_all_three_macros() {
    let findings = assert_flagged("bad_panic", RULE_NO_PANIC, 3);
    let all = format!("{findings:?}");
    assert!(all.contains("panic!") && all.contains("todo!") && all.contains("unimplemented!"));
}

#[test]
fn bad_literal_index_is_flagged_twice() {
    assert_flagged("bad_literal_index", RULE_LITERAL_INDEX, 2);
}

#[test]
fn bad_hot_alloc_flags_every_allocation_in_the_region() {
    let findings = assert_flagged("bad_hot_alloc", RULE_HOT_ALLOC, 4);
    let all = format!("{findings:?}");
    assert!(all.contains("to_vec") && all.contains("collect"));
    assert!(all.contains("Vec::new") && all.contains("format!"));
}

#[test]
fn bad_hash_iter_flags_both_forms() {
    let findings = assert_flagged("bad_hash_iter", RULE_HASH_ORDER, 2);
    let all = format!("{findings:?}");
    assert!(all.contains("m.values()"), "method form: {all}");
    assert!(all.contains("for .. in set"), "for form: {all}");
}

#[test]
fn bad_knob_flags_both_directions() {
    let findings = assert_flagged("bad_knob", RULE_KNOB_REGISTRY, 2);
    let all = format!("{findings:?}");
    assert!(all.contains("PUBSUB_BOGUS"), "undocumented read: {all}");
    assert!(all.contains("PUBSUB_GHOST"), "ghost doc entry: {all}");
    assert!(!all.contains("PUBSUB_DOCUMENTED"));
    assert!(!all.contains("PUBSUB_ONLY_IN_TESTS"));
}

#[test]
fn bad_atomic_flags_relaxed_unpaired_and_seqcst() {
    let findings = assert_flagged("bad_atomic", RULE_ATOMIC_ORDER, 3);
    let all = format!("{findings:?}");
    assert!(
        all.contains("Relaxed"),
        "reasonless waiver must not count: {all}"
    );
    assert!(
        all.contains("no Release-side writer"),
        "unpaired acquire: {all}"
    );
    assert!(all.contains("SeqCst"), "overkill ordering: {all}");
}

#[test]
fn bad_lock_cycle_flags_both_edges() {
    let findings = assert_flagged("bad_lock_cycle", RULE_LOCK_ORDER, 2);
    let all = format!("{findings:?}");
    assert!(
        all.contains("ALPHA") && all.contains("BETA"),
        "cycle members: {all}"
    );
    assert!(all.contains("deadlock cycle"), "{all}");
}

#[test]
fn bad_float_sum_flags_chained_and_looped_accumulation() {
    let findings = assert_flagged("bad_float_sum", RULE_FLOAT_DET, 2);
    let all = format!("{findings:?}");
    assert!(all.contains(".sum()"), "chained form: {all}");
    assert!(all.contains("`+=` in a loop"), "looped form: {all}");
    assert!(all.contains("parallel-produced"), "{all}");
}

#[test]
fn bad_spawn_panic_flags_direct_and_transitive_panics() {
    let findings = assert_flagged("bad_spawn_panic", RULE_THREAD_PANIC, 2);
    let all = format!("{findings:?}");
    assert!(all.contains(".expect(..)"), "direct evidence: {all}");
    assert!(all.contains("calls `helper`"), "transitive evidence: {all}");
}

#[test]
fn clean_fixture_passes() {
    let findings = lint_fixture("clean");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn real_workspace_is_clean() {
    // The crate lives at <root>/crates/lint.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate dir sits two levels under the workspace root");
    let findings = lint_workspace(root).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "workspace has lint findings: {findings:#?}"
    );
}
