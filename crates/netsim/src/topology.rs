//! GT-ITM-style transit-stub topology generation.
//!
//! The paper generates its networks with the GT-ITM package [Zegura,
//! Calvert, Bhattacharjee — Infocom '96] using the transit-stub model:
//! *transit blocks* on top, *stubs* in the middle and nodes at the bottom.
//! This module reimplements that hierarchy:
//!
//! * each transit block contains several interconnected *transit nodes*;
//! * transit blocks are interconnected through random transit-transit
//!   edges;
//! * each transit node attaches a number of *stubs* (access networks);
//! * each stub contains several *stub nodes*, internally connected, with
//!   a gateway link up to its transit node.
//!
//! Substitution note (see `DESIGN.md`): GT-ITM draws random routing
//! weights per edge; we draw uniform costs from per-tier ranges
//! (intra-stub cheapest, inter-block most expensive), which preserves the
//! property the experiments rely on — regional traffic is much cheaper
//! than cross-network traffic.

use std::fmt;

use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Identifier of a stub (access network). The paper's *regional
/// attribute* of a publication is the identifier of its originating stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StubId(pub usize);

impl StubId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stub#{}", self.0)
    }
}

/// Role of a node in the transit-stub hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A transit (backbone) node in the given transit block.
    Transit {
        /// Index of the transit block.
        block: usize,
    },
    /// A stub (access) node.
    Stub {
        /// Index of the transit block the stub hangs off.
        block: usize,
        /// Global stub identifier.
        stub: StubId,
    },
}

/// An inclusive-exclusive uniform cost range for one edge tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRange {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive).
    pub hi: f64,
}

impl CostRange {
    /// Creates a range; `lo` may equal `hi` for a deterministic cost.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid (`lo > hi`, negative, or NaN).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && hi >= lo, "invalid cost range [{lo}, {hi})");
        CostRange { lo, hi }
    }

    fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Parameters of the transit-stub generator.
///
/// Defaults reproduce the paper's Section 5.1 network: 3 transit blocks ×
/// 5 transit nodes × 2 stubs per transit node × 20 nodes per stub
/// (615 nodes ≈ "six hundred nodes").
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubParams {
    /// Number of transit blocks (domains).
    pub transit_blocks: usize,
    /// Transit nodes per block.
    pub transit_nodes_per_block: usize,
    /// Stubs attached to each transit node.
    pub stubs_per_transit: usize,
    /// Nodes in each stub.
    pub nodes_per_stub: usize,
    /// Probability of each extra (non-spanning-tree) edge between transit
    /// nodes of the same block.
    pub extra_transit_edge_prob: f64,
    /// Probability of each extra edge between stub nodes of the same
    /// stub.
    pub extra_stub_edge_prob: f64,
    /// Cost range for intra-stub edges (cheapest tier).
    pub intra_stub_cost: CostRange,
    /// Cost range for stub-gateway-to-transit edges.
    pub stub_transit_cost: CostRange,
    /// Cost range for transit edges within a block.
    pub intra_block_cost: CostRange,
    /// Cost range for transit edges between blocks (most expensive tier).
    pub inter_block_cost: CostRange,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_blocks: 3,
            transit_nodes_per_block: 5,
            stubs_per_transit: 2,
            nodes_per_stub: 20,
            extra_transit_edge_prob: 0.4,
            extra_stub_edge_prob: 0.2,
            intra_stub_cost: CostRange::new(1.0, 5.0),
            stub_transit_cost: CostRange::new(5.0, 10.0),
            intra_block_cost: CostRange::new(10.0, 20.0),
            inter_block_cost: CostRange::new(20.0, 40.0),
        }
    }
}

impl TransitStubParams {
    /// Section 3's 100-node network: one transit block, 4 transit nodes,
    /// 3 stubs per transit node, 8 nodes per stub.
    pub fn paper_100_nodes() -> Self {
        TransitStubParams {
            transit_blocks: 1,
            transit_nodes_per_block: 4,
            stubs_per_transit: 3,
            nodes_per_stub: 8,
            ..Default::default()
        }
    }

    /// Section 3's 300-node network: 5 transit nodes, 3 stubs each, 20
    /// nodes per stub.
    pub fn paper_300_nodes() -> Self {
        TransitStubParams {
            transit_blocks: 1,
            transit_nodes_per_block: 5,
            stubs_per_transit: 3,
            nodes_per_stub: 20,
            ..Default::default()
        }
    }

    /// Section 3's 600-node network: 4 transit nodes, 3 stubs each, 50
    /// nodes per stub.
    pub fn paper_600_nodes() -> Self {
        TransitStubParams {
            transit_blocks: 1,
            transit_nodes_per_block: 4,
            stubs_per_transit: 3,
            nodes_per_stub: 50,
            ..Default::default()
        }
    }

    /// Section 5.1's evaluation network: 3 transit blocks, 5 transit
    /// nodes each, 2 stubs per transit node, 20 nodes per stub.
    pub fn paper_section51() -> Self {
        TransitStubParams::default()
    }

    /// Total node count implied by the parameters.
    pub fn total_nodes(&self) -> usize {
        let transit = self.transit_blocks * self.transit_nodes_per_block;
        transit + transit * self.stubs_per_transit * self.nodes_per_stub
    }

    /// The paper's Section 6 extension (item 2): "assigning higher
    /// costs to the last-mile links, since these are usually the
    /// slowest and the most congested ones". In the transit-stub
    /// model the intra-stub edges are the access tier; this raises
    /// their cost range above the stub-transit uplinks.
    ///
    /// Every delivery to a stub node then pays its expensive access
    /// edge regardless of scheme, so the *relative* multicast benefit
    /// shrinks — useful for sensitivity studies.
    pub fn with_expensive_last_mile(mut self, cost: CostRange) -> Self {
        self.intra_stub_cost = cost;
        self
    }
}

/// A stub network: its gateway transit node and member nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stub {
    /// Global identifier.
    pub id: StubId,
    /// Transit block this stub belongs to.
    pub block: usize,
    /// The transit node the stub's gateway connects to.
    pub transit: NodeId,
    /// Stub member nodes.
    pub nodes: Vec<NodeId>,
}

/// A generated transit-stub topology: the weighted graph plus the
/// hierarchy metadata the workload generators need (which block / stub a
/// node belongs to).
#[derive(Debug, Clone)]
pub struct Topology {
    graph: Graph,
    kinds: Vec<NodeKind>,
    stubs: Vec<Stub>,
    /// `blocks[b]` lists the transit nodes of block `b`.
    blocks: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Generates a random transit-stub topology.
    ///
    /// The result is always connected: spanning trees are built first at
    /// every level, with extra edges added probabilistically on top.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero.
    pub fn generate(params: &TransitStubParams, rng: &mut impl Rng) -> Self {
        assert!(params.transit_blocks > 0, "need at least one transit block");
        assert!(
            params.transit_nodes_per_block > 0,
            "need at least one transit node per block"
        );
        assert!(
            params.stubs_per_transit > 0,
            "need at least one stub per transit node"
        );
        assert!(params.nodes_per_stub > 0, "need at least one node per stub");

        let mut graph = Graph::new();
        let mut kinds = Vec::new();
        let mut stubs = Vec::new();
        let mut blocks = Vec::with_capacity(params.transit_blocks);

        // 1. Transit nodes, block by block, with a random connected
        //    intra-block backbone.
        for b in 0..params.transit_blocks {
            let mut block_nodes = Vec::with_capacity(params.transit_nodes_per_block);
            for _ in 0..params.transit_nodes_per_block {
                let n = graph.add_node();
                kinds.push(NodeKind::Transit { block: b });
                block_nodes.push(n);
            }
            // Random spanning tree: attach node i to a random earlier node.
            for i in 1..block_nodes.len() {
                let j = rng.gen_range(0..i);
                let cost = params.intra_block_cost.sample(rng);
                graph
                    .add_edge(block_nodes[i], block_nodes[j], cost)
                    .expect("transit edge endpoints exist");
            }
            // Extra intra-block edges.
            for i in 0..block_nodes.len() {
                for j in (i + 1)..block_nodes.len() {
                    if rng.gen_bool(params.extra_transit_edge_prob)
                        && i + 1 != j
                        && !(i == 0 && j == 1)
                    {
                        let cost = params.intra_block_cost.sample(rng);
                        let _ = graph.add_edge(block_nodes[i], block_nodes[j], cost);
                    }
                }
            }
            blocks.push(block_nodes);
        }

        // 2. Inter-block edges: a spanning tree over blocks plus one
        //    random extra edge per block pair with probability 0.5.
        for b in 1..params.transit_blocks {
            let a = rng.gen_range(0..b);
            let u = blocks[a][rng.gen_range(0..blocks[a].len())];
            let v = blocks[b][rng.gen_range(0..blocks[b].len())];
            let cost = params.inter_block_cost.sample(rng);
            graph
                .add_edge(u, v, cost)
                .expect("inter-block endpoints exist");
        }
        for a in 0..params.transit_blocks {
            for b in (a + 1)..params.transit_blocks {
                if rng.gen_bool(0.5) {
                    let u = blocks[a][rng.gen_range(0..blocks[a].len())];
                    let v = blocks[b][rng.gen_range(0..blocks[b].len())];
                    let cost = params.inter_block_cost.sample(rng);
                    let _ = graph.add_edge(u, v, cost);
                }
            }
        }

        // 3. Stubs: a connected cluster of stub nodes whose gateway (the
        //    first node) links up to its transit node.
        let mut next_stub = 0usize;
        for (b, block) in blocks.iter().enumerate() {
            for &t in block {
                for _ in 0..params.stubs_per_transit {
                    let id = StubId(next_stub);
                    next_stub += 1;
                    let mut nodes = Vec::with_capacity(params.nodes_per_stub);
                    for _ in 0..params.nodes_per_stub {
                        let n = graph.add_node();
                        kinds.push(NodeKind::Stub { block: b, stub: id });
                        nodes.push(n);
                    }
                    // Intra-stub spanning tree.
                    for i in 1..nodes.len() {
                        let j = rng.gen_range(0..i);
                        let cost = params.intra_stub_cost.sample(rng);
                        graph
                            .add_edge(nodes[i], nodes[j], cost)
                            .expect("stub edge endpoints exist");
                    }
                    // Extra intra-stub edges.
                    if nodes.len() > 2 {
                        let extras = (nodes.len() as f64 * params.extra_stub_edge_prob) as usize;
                        for _ in 0..extras {
                            let i = rng.gen_range(0..nodes.len());
                            let j = rng.gen_range(0..nodes.len());
                            if i != j {
                                let cost = params.intra_stub_cost.sample(rng);
                                let _ = graph.add_edge(nodes[i], nodes[j], cost);
                            }
                        }
                    }
                    // Gateway uplink.
                    let cost = params.stub_transit_cost.sample(rng);
                    graph
                        // lint: allow(no-literal-index): every stub has >= 1 node
                        .add_edge(nodes[0], t, cost)
                        .expect("gateway endpoints exist");
                    stubs.push(Stub {
                        id,
                        block: b,
                        transit: t,
                        nodes,
                    });
                }
            }
        }

        debug_assert!(graph.is_connected(), "generated topology must be connected");
        Topology {
            graph,
            kinds,
            stubs,
            blocks,
        }
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Role of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0]
    }

    /// The stub containing node `n`, or `None` for transit nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn stub_of(&self, n: NodeId) -> Option<StubId> {
        match self.kinds[n.0] {
            NodeKind::Stub { stub, .. } => Some(stub),
            NodeKind::Transit { .. } => None,
        }
    }

    /// The transit block containing node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn block_of(&self, n: NodeId) -> usize {
        match self.kinds[n.0] {
            NodeKind::Stub { block, .. } | NodeKind::Transit { block } => block,
        }
    }

    /// All stubs.
    pub fn stubs(&self) -> &[Stub] {
        &self.stubs
    }

    /// The stubs of transit block `b`.
    pub fn stubs_in_block(&self, b: usize) -> impl Iterator<Item = &Stub> {
        self.stubs.iter().filter(move |s| s.block == b)
    }

    /// Number of transit blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Transit nodes of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn transit_nodes(&self, b: usize) -> &[NodeId] {
        &self.blocks[b]
    }

    /// All stub (non-transit) nodes, in id order.
    pub fn stub_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .nodes()
            .filter(|&n| matches!(self.kinds[n.0], NodeKind::Stub { .. }))
    }

    /// Cost-weighted distance statistics over a sample of source nodes
    /// (`sample_every` controls density: every `n`-th node is a
    /// source). Exact when `sample_every == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn distance_stats(&self, sample_every: usize) -> TopologyStats {
        assert!(sample_every > 0, "sample_every must be positive");
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut pairs = 0usize;
        for src in self.graph.nodes().step_by(sample_every) {
            let spt = crate::shortest_path::ShortestPathTree::compute(&self.graph, src);
            for dst in self.graph.nodes() {
                if dst != src && spt.is_reachable(dst) {
                    let d = spt.distance(dst);
                    max = max.max(d);
                    sum += d;
                    pairs += 1;
                }
            }
        }
        TopologyStats {
            diameter: max,
            mean_distance: if pairs == 0 { 0.0 } else { sum / pairs as f64 },
            sampled_sources: self.graph.num_nodes().div_ceil(sample_every),
        }
    }
}

/// Distance statistics of a topology (see [`Topology::distance_stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyStats {
    /// Largest sampled shortest-path distance (the cost-weighted
    /// diameter when every node is sampled).
    pub diameter: f64,
    /// Mean shortest-path distance over sampled pairs.
    pub mean_distance: f64,
    /// How many sources were sampled.
    pub sampled_sources: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn node_counts_match_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        for (params, expected) in [
            (TransitStubParams::paper_100_nodes(), 100),
            (TransitStubParams::paper_300_nodes(), 305),
            (TransitStubParams::paper_600_nodes(), 604),
            (TransitStubParams::paper_section51(), 615),
        ] {
            assert_eq!(params.total_nodes(), expected);
            let topo = Topology::generate(&params, &mut rng);
            assert_eq!(topo.num_nodes(), expected);
        }
    }

    #[test]
    fn generated_topology_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        for seed in 0..5 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let topo = Topology::generate(&TransitStubParams::default(), &mut rng2);
            assert!(topo.graph().is_connected(), "seed {seed}");
            let _ = rng.gen::<u8>();
        }
    }

    #[test]
    fn hierarchy_metadata_is_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = TransitStubParams::paper_section51();
        let topo = Topology::generate(&params, &mut rng);
        assert_eq!(topo.num_blocks(), 3);
        assert_eq!(topo.stubs().len(), 3 * 5 * 2);
        // Every stub node's metadata points back to its stub.
        for stub in topo.stubs() {
            assert_eq!(stub.nodes.len(), params.nodes_per_stub);
            for &n in &stub.nodes {
                assert_eq!(topo.stub_of(n), Some(stub.id));
                assert_eq!(topo.block_of(n), stub.block);
            }
            // Gateway connects to its transit node.
            assert!(topo
                .graph()
                .neighbors(stub.nodes[0])
                .iter()
                .any(|&(v, _)| v == stub.transit));
        }
        // Transit nodes have no stub.
        for b in 0..topo.num_blocks() {
            for &t in topo.transit_nodes(b) {
                assert_eq!(topo.stub_of(t), None);
                assert_eq!(topo.block_of(t), b);
            }
        }
        // Stub-node iterator counts all non-transit nodes.
        let stub_count = topo.stub_nodes().count();
        assert_eq!(stub_count, 3 * 5 * 2 * 20);
    }

    #[test]
    fn cost_tiers_are_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = TransitStubParams::default();
        let topo = Topology::generate(&params, &mut rng);
        for e in topo.graph().edges() {
            let (ku, kv) = (topo.kind(e.u), topo.kind(e.v));
            match (ku, kv) {
                (NodeKind::Stub { stub: a, .. }, NodeKind::Stub { stub: b, .. }) => {
                    assert_eq!(a, b, "stub-stub edges only within a stub");
                    assert!(e.cost >= params.intra_stub_cost.lo);
                    assert!(e.cost < params.intra_stub_cost.hi);
                }
                (NodeKind::Stub { .. }, NodeKind::Transit { .. })
                | (NodeKind::Transit { .. }, NodeKind::Stub { .. }) => {
                    assert!(e.cost >= params.stub_transit_cost.lo);
                    assert!(e.cost < params.stub_transit_cost.hi);
                }
                (NodeKind::Transit { block: a }, NodeKind::Transit { block: b }) => {
                    if a == b {
                        assert!(e.cost >= params.intra_block_cost.lo);
                        assert!(e.cost < params.intra_block_cost.hi);
                    } else {
                        assert!(e.cost >= params.inter_block_cost.lo);
                        assert!(e.cost < params.inter_block_cost.hi);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let t1 = Topology::generate(
            &TransitStubParams::paper_100_nodes(),
            &mut StdRng::seed_from_u64(99),
        );
        let t2 = Topology::generate(
            &TransitStubParams::paper_100_nodes(),
            &mut StdRng::seed_from_u64(99),
        );
        assert_eq!(t1.graph().num_edges(), t2.graph().num_edges());
        for (a, b) in t1.graph().edges().iter().zip(t2.graph().edges()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn distance_stats_are_consistent() {
        let topo = Topology::generate(
            &TransitStubParams::paper_100_nodes(),
            &mut StdRng::seed_from_u64(6),
        );
        let exact = topo.distance_stats(1);
        assert!(exact.diameter > 0.0);
        assert!(exact.mean_distance > 0.0);
        assert!(exact.mean_distance <= exact.diameter);
        assert_eq!(exact.sampled_sources, topo.num_nodes());
        // Sampling can only see a subset: diameter estimate <= exact.
        let sampled = topo.distance_stats(7);
        assert!(sampled.diameter <= exact.diameter + 1e-9);
    }

    #[test]
    fn expensive_last_mile_shrinks_relative_multicast_benefit() {
        use crate::routing::Router;
        // Same structure, two access-cost regimes. With costly access
        // links, every receiver pays its own last mile under any
        // scheme, so the multicast/unicast ratio moves toward 1.
        let cheap = TransitStubParams::paper_100_nodes();
        let pricey = TransitStubParams::paper_100_nodes()
            .with_expensive_last_mile(CostRange::new(15.0, 25.0));
        let mut ratios = Vec::new();
        for params in [cheap, pricey] {
            let topo = Topology::generate(&params, &mut StdRng::seed_from_u64(5));
            let nodes: Vec<NodeId> = topo.stub_nodes().collect();
            let members: Vec<NodeId> = nodes.iter().step_by(5).copied().collect();
            let mut r = Router::new(topo.graph());
            let uni = r.unicast_cost(nodes[0], members.iter().copied());
            let tree = r.group_multicast_cost(nodes[0], &members);
            ratios.push(tree / uni);
        }
        assert!(
            ratios[1] > ratios[0],
            "expensive last mile should reduce relative benefit: {ratios:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_parameters_rejected() {
        let params = TransitStubParams {
            nodes_per_stub: 0,
            ..Default::default()
        };
        let _ = Topology::generate(&params, &mut StdRng::seed_from_u64(0));
    }
}
