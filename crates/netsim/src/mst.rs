//! Minimum spanning trees (Kruskal) and the union-find structure behind
//! them.
//!
//! Two uses in the paper:
//!
//! * **application-level multicast** (Section 5.1): multicast group
//!   members "form a minimum spanning tree and forward the messages from
//!   one member to another through the tree" — an MST over the *overlay*
//!   complete graph whose edge weights are unicast (shortest-path) costs;
//! * **MST clustering** (Section 4.4): Kruskal run over hyper-cell
//!   distances, stopped when exactly `K` components remain. That variant
//!   lives in `pubsub-core`; this module exposes the reusable
//!   [`UnionFind`] it is built on.

use crate::graph::{Graph, NodeId};

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// The representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `false` when they
    /// were already the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// Total weight of the minimum spanning forest of `g` (Kruskal).
///
/// For a connected graph this is the MST weight; for a disconnected graph
/// each component contributes its own tree.
pub fn minimum_spanning_forest_cost(g: &Graph) -> f64 {
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    order.sort_by(|&a, &b| {
        g.edges()[a]
            .cost
            .partial_cmp(&g.edges()[b].cost)
            .expect("edge cost is never NaN")
    });
    let mut uf = UnionFind::new(g.num_nodes());
    let mut total = 0.0;
    for i in order {
        let e = &g.edges()[i];
        if uf.union(e.u.0, e.v.0) {
            total += e.cost;
        }
    }
    total
}

/// Minimum spanning tree over a *complete overlay graph* on `members`,
/// with the weight of overlay edge `(i, j)` given by `weight(i, j)`
/// (typically the unicast shortest-path cost between the two nodes).
///
/// Returns the list of chosen overlay edges and their total weight. With
/// fewer than two members the tree is empty.
///
/// This is Prim's algorithm in O(m²) over the m members — the overlay is
/// complete, so Prim beats sorting all m² edges.
pub fn overlay_mst(
    members: &[NodeId],
    mut weight: impl FnMut(NodeId, NodeId) -> f64,
) -> (Vec<(NodeId, NodeId)>, f64) {
    let m = members.len();
    if m < 2 {
        return (Vec::new(), 0.0);
    }
    let mut in_tree = vec![false; m];
    let mut best = vec![f64::INFINITY; m];
    let mut best_from = vec![0usize; m];
    // lint: allow(no-literal-index): m >= 2 (smaller inputs returned above)
    in_tree[0] = true;
    for j in 1..m {
        // lint: allow(no-literal-index): m >= 2 (smaller inputs returned above)
        best[j] = weight(members[0], members[j]);
        best_from[j] = 0;
    }
    let mut edges = Vec::with_capacity(m - 1);
    let mut total = 0.0;
    for _ in 1..m {
        // Cheapest frontier vertex.
        let mut pick = None;
        let mut pick_w = f64::INFINITY;
        for j in 0..m {
            if !in_tree[j] && best[j] < pick_w {
                pick_w = best[j];
                pick = Some(j);
            }
        }
        let j = match pick {
            Some(j) => j,
            // Disconnected overlay (infinite weights): stop early.
            None => break,
        };
        in_tree[j] = true;
        edges.push((members[best_from[j]], members[j]));
        total += pick_w;
        for k in 0..m {
            if !in_tree[k] {
                let w = weight(members[j], members[k]);
                if w < best[k] {
                    best[k] = w;
                    best_from[k] = j;
                }
            }
        }
    }
    (edges, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn msf_cost_on_known_graph() {
        // Square 0-1-2-3-0 with costs 1,2,3,4 and diagonal 0-2 cost 10.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 3.0).unwrap();
        g.add_edge(NodeId(3), NodeId(0), 4.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 10.0).unwrap();
        assert_eq!(minimum_spanning_forest_cost(&g), 6.0);
    }

    #[test]
    fn msf_on_disconnected_graph() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 5.0).unwrap();
        assert_eq!(minimum_spanning_forest_cost(&g), 7.0);
    }

    #[test]
    fn overlay_mst_on_metric_weights() {
        // Members on a line at positions 0, 1, 5; weight = |a-b|.
        let members = [NodeId(0), NodeId(1), NodeId(2)];
        let pos = [0.0f64, 1.0, 5.0];
        let (edges, total) = overlay_mst(&members, |a, b| (pos[a.0] - pos[b.0]).abs());
        assert_eq!(edges.len(), 2);
        assert_eq!(total, 5.0); // 0-1 (1) + 1-2 (4)
    }

    #[test]
    fn overlay_mst_trivial_sizes() {
        let (e, t) = overlay_mst(&[], |_, _| 1.0);
        assert!(e.is_empty());
        assert_eq!(t, 0.0);
        let (e, t) = overlay_mst(&[NodeId(9)], |_, _| 1.0);
        assert!(e.is_empty());
        assert_eq!(t, 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
    fn overlay_mst_matches_kruskal_on_random_inputs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let m = rng.gen_range(2..10);
            let mut w = vec![vec![0.0f64; m]; m];
            for i in 0..m {
                for j in (i + 1)..m {
                    let c = rng.gen_range(1.0..20.0);
                    w[i][j] = c;
                    w[j][i] = c;
                }
            }
            let members: Vec<NodeId> = (0..m).map(NodeId).collect();
            let (_, prim_total) = overlay_mst(&members, |a, b| w[a.0][b.0]);
            // Kruskal over an explicit complete graph.
            let mut g = Graph::with_nodes(m);
            for i in 0..m {
                for j in (i + 1)..m {
                    g.add_edge(NodeId(i), NodeId(j), w[i][j]).unwrap();
                }
            }
            let kruskal_total = minimum_spanning_forest_cost(&g);
            assert!(
                (prim_total - kruskal_total).abs() < 1e-9,
                "{prim_total} vs {kruskal_total}"
            );
        }
    }
}
