//! Weighted undirected graphs: the network model `G = (V, E)` with
//! communication costs `c_e ≥ 0` on each edge (Section 2 of the paper).

use std::fmt;

/// Identifier of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An undirected edge with a non-negative communication cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Communication cost `c_e ≥ 0`.
    pub cost: f64,
}

impl Edge {
    /// The endpoint opposite to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            // lint: allow(no-panic): documented `# Panics` API contract
            panic!("{n} is not an endpoint of this edge")
        }
    }
}

/// A weighted undirected graph with adjacency lists.
///
/// # Examples
///
/// ```
/// use netsim::{Graph, NodeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b, 2.5)?;
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.degree(a), 1);
/// # Ok::<(), netsim::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// `adj[n]` lists `(neighbor, edge)` pairs.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

/// Error produced by invalid graph operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphError {
    /// A node id was out of range.
    InvalidNode(NodeId),
    /// An edge cost was negative or NaN.
    InvalidCost(f64),
    /// Self-loops are not allowed in network topologies.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode(n) => write!(f, "node {n} does not exist"),
            GraphError::InvalidCost(c) => write!(f, "edge cost {c} is not a non-negative number"),
            GraphError::SelfLoop(n) => write!(f, "self-loop at {n} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId(self.adj.len() - 1)
    }

    /// Adds an undirected edge of the given cost.
    ///
    /// Parallel edges are permitted (shortest-path routing simply ignores
    /// the costlier one).
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self-loops, and negative/NaN costs.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cost: f64) -> Result<EdgeId, GraphError> {
        if u.0 >= self.adj.len() {
            return Err(GraphError::InvalidNode(u));
        }
        if v.0 >= self.adj.len() {
            return Err(GraphError::InvalidNode(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        // `!(cost >= 0.0)` (not `cost < 0.0`) deliberately catches NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(cost >= 0.0) {
            return Err(GraphError::InvalidCost(cost));
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { u, v, cost });
        self.adj[u.0].push((v, id));
        self.adj[v.0].push((u, id));
        Ok(id)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `(neighbor, edge)` pairs adjacent to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[n.0]
    }

    /// Degree of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adj.len()).map(NodeId)
    }

    /// Total cost of all edges.
    pub fn total_cost(&self) -> f64 {
        self.edges.iter().map(|e| e.cost).sum()
    }

    /// A copy of the graph with the given edges removed — failure
    /// injection for resilience studies. Edge ids are re-assigned in
    /// the copy; node ids are preserved.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn without_edges(&self, failed: &[EdgeId]) -> Graph {
        let mut dead = vec![false; self.edges.len()];
        for e in failed {
            dead[e.0] = true;
        }
        let mut g = Graph::with_nodes(self.num_nodes());
        for (i, e) in self.edges.iter().enumerate() {
            if !dead[i] {
                g.add_edge(e.u, e.v, e.cost)
                    .expect("surviving edge is valid");
            }
        }
        g
    }

    /// Renders the graph in Graphviz DOT format (undirected), edge
    /// labels carrying costs — handy for eyeballing small topologies.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph {name} {{");
        for n in self.nodes() {
            let _ = writeln!(out, "  n{};", n.0);
        }
        for e in &self.edges {
            let _ = writeln!(out, "  n{} -- n{} [label=\"{:.1}\"];", e.u.0, e.v.0, e.cost);
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Whether the graph is connected (true for the empty graph).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        // lint: allow(no-literal-index): n >= 1 (the empty graph returned above)
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::with_nodes(3);
        let e = g.add_edge(NodeId(0), NodeId(1), 1.5).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(e).cost, 1.5);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.total_cost(), 3.5);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge {
            u: NodeId(3),
            v: NodeId(7),
            cost: 1.0,
        };
        assert_eq!(e.other(NodeId(3)), NodeId(7));
        assert_eq!(e.other(NodeId(7)), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: NodeId(0),
            v: NodeId(1),
            cost: 1.0,
        };
        let _ = e.other(NodeId(2));
    }

    #[test]
    fn invalid_edges_rejected() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(5), 1.0),
            Err(GraphError::InvalidNode(NodeId(5)))
        );
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(0), 1.0),
            Err(GraphError::SelfLoop(NodeId(0)))
        );
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(1), -2.0),
            Err(GraphError::InvalidCost(-2.0))
        );
        assert!(g.add_edge(NodeId(0), NodeId(1), f64::NAN).is_err());
    }

    #[test]
    fn dot_output_lists_nodes_and_edges() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 2.5).unwrap();
        let dot = g.to_dot("test");
        assert!(dot.starts_with("graph test {"));
        assert!(dot.contains("n0;"));
        assert!(dot.contains("n0 -- n1 [label=\"2.5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        assert!(g.is_connected());
        assert!(Graph::new().is_connected());
        assert!(!Graph::with_nodes(2).is_connected());
    }
}
