//! Per-link load accounting: the "different type of communication cost
//! evaluation" the paper's Section 6 (item 4) calls for when messages
//! are large enough that link congestion matters.
//!
//! The base evaluation counts each traversed link once per event
//! (reasonable for ≤ 1 KB messages). For large messages, what matters
//! is how much traffic each link accumulates: a scheme can have low
//! total cost yet concentrate traffic on a few links. [`LoadTracker`]
//! accumulates per-edge traffic (in message-size units) over a stream
//! of deliveries and reports the distribution.

use crate::graph::{EdgeId, Graph};
use crate::shortest_path::ShortestPathTree;

/// Accumulates per-edge traffic over a sequence of deliveries.
///
/// # Examples
///
/// ```
/// use netsim::{Graph, LoadTracker, NodeId, ShortestPathTree};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 1.0)?;
/// let spt = ShortestPathTree::compute(&g, NodeId(0));
/// let mut load = LoadTracker::new(&g);
/// load.record_multicast(&g, &spt, [NodeId(2)], 1.0);
/// assert_eq!(load.max_load(), 1.0);
/// assert_eq!(load.total_traffic(), 2.0); // two links crossed
/// # Ok::<(), netsim::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTracker {
    load: Vec<f64>,
}

impl LoadTracker {
    /// Creates a tracker with zero load on every edge of `g`.
    pub fn new(g: &Graph) -> Self {
        LoadTracker {
            load: vec![0.0; g.num_edges()],
        }
    }

    /// Adds `size` units of traffic to one edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range or `size` is negative/NaN.
    pub fn record(&mut self, edge: EdgeId, size: f64) {
        assert!(size >= 0.0, "message size must be non-negative");
        self.load[edge.0] += size;
    }

    /// Records a unicast delivery: `size` units on every edge of the
    /// source's shortest path to each target (a copy per target).
    pub fn record_unicast(
        &mut self,
        spt: &ShortestPathTree,
        targets: impl IntoIterator<Item = crate::graph::NodeId>,
        size: f64,
    ) {
        for t in targets {
            if let Some(path) = spt.path_edges(t) {
                for e in path {
                    self.record(e, size);
                }
            }
        }
    }

    /// Records a dense-mode multicast delivery: `size` units on each
    /// distinct edge of the pruned tree (one copy per link regardless
    /// of receiver count).
    pub fn record_multicast(
        &mut self,
        g: &Graph,
        spt: &ShortestPathTree,
        targets: impl IntoIterator<Item = crate::graph::NodeId>,
        size: f64,
    ) {
        for e in spt.multicast_tree_edges(g, targets) {
            self.record(e, size);
        }
    }

    /// The load on one edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    pub fn load(&self, edge: EdgeId) -> f64 {
        self.load[edge.0]
    }

    /// The maximum per-edge load — the congestion bottleneck.
    pub fn max_load(&self) -> f64 {
        self.load.iter().copied().fold(0.0, f64::max)
    }

    /// Total traffic carried by all edges.
    pub fn total_traffic(&self) -> f64 {
        self.load.iter().sum()
    }

    /// Mean load over edges that carried any traffic (0 when idle).
    pub fn mean_active_load(&self) -> f64 {
        let active: Vec<f64> = self.load.iter().copied().filter(|&l| l > 0.0).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// The `n` most loaded edges as `(edge, load)`, heaviest first.
    pub fn hotspots(&self, n: usize) -> Vec<(EdgeId, f64)> {
        let mut all: Vec<(EdgeId, f64)> = self
            .load
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0.0)
            .map(|(i, &l)| (EdgeId(i), l))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("load is never NaN"));
        all.truncate(n);
        all
    }

    /// Load-weighted cost: `Σ_e c_e · load_e` — the total
    /// byte-distance product, the natural large-message generalization
    /// of the paper's per-event edge-cost sum.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different edge count than the tracker.
    pub fn weighted_cost(&self, g: &Graph) -> f64 {
        assert_eq!(g.num_edges(), self.load.len(), "graph mismatch");
        self.load
            .iter()
            .zip(g.edges())
            .map(|(l, e)| l * e.cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    /// Star: center 0 with leaves 1..=3, unit costs.
    fn star() -> Graph {
        let mut g = Graph::with_nodes(4);
        for i in 1..4 {
            g.add_edge(NodeId(0), NodeId(i), 1.0).unwrap();
        }
        g
    }

    #[test]
    fn unicast_loads_stack_per_copy() {
        let g = star();
        let spt = ShortestPathTree::compute(&g, NodeId(1));
        let mut load = LoadTracker::new(&g);
        // From leaf 1 to leaves 2 and 3: both copies cross edge (0,1).
        load.record_unicast(&spt, [NodeId(2), NodeId(3)], 1.0);
        assert_eq!(load.max_load(), 2.0);
        assert_eq!(load.total_traffic(), 4.0);
    }

    #[test]
    fn multicast_loads_once_per_link() {
        let g = star();
        let spt = ShortestPathTree::compute(&g, NodeId(1));
        let mut load = LoadTracker::new(&g);
        load.record_multicast(&g, &spt, [NodeId(2), NodeId(3)], 1.0);
        // The shared edge (0,1) carries one copy, not two.
        assert_eq!(load.max_load(), 1.0);
        assert_eq!(load.total_traffic(), 3.0);
    }

    #[test]
    fn multicast_bottleneck_below_unicast() {
        let g = star();
        let spt = ShortestPathTree::compute(&g, NodeId(1));
        let mut uni = LoadTracker::new(&g);
        let mut multi = LoadTracker::new(&g);
        for _ in 0..10 {
            uni.record_unicast(&spt, [NodeId(2), NodeId(3)], 1.0);
            multi.record_multicast(&g, &spt, [NodeId(2), NodeId(3)], 1.0);
        }
        assert!(multi.max_load() < uni.max_load());
        assert_eq!(uni.max_load(), 20.0);
        assert_eq!(multi.max_load(), 10.0);
    }

    #[test]
    fn message_size_scales_load() {
        let g = star();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        let mut load = LoadTracker::new(&g);
        load.record_multicast(&g, &spt, [NodeId(1)], 4.0);
        assert_eq!(load.max_load(), 4.0);
        assert_eq!(load.weighted_cost(&g), 4.0);
    }

    #[test]
    fn hotspots_and_means() {
        let g = star();
        let mut load = LoadTracker::new(&g);
        load.record(EdgeId(0), 5.0);
        load.record(EdgeId(1), 2.0);
        let hot = load.hotspots(1);
        assert_eq!(hot, vec![(EdgeId(0), 5.0)]);
        assert_eq!(load.mean_active_load(), 3.5);
        assert_eq!(load.load(EdgeId(2)), 0.0);
        let idle = LoadTracker::new(&g);
        assert_eq!(idle.mean_active_load(), 0.0);
        assert!(idle.hotspots(3).is_empty());
    }
}
