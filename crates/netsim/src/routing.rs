//! Delivery-cost models: unicast, broadcast, ideal multicast, group
//! multicast (network-supported, dense mode) and application-level
//! multicast.
//!
//! All costs follow Section 5.2 of the paper: "the cost of communication
//! was computed by summing up the edge costs on the links on which
//! communication takes place".
//!
//! * **unicast** — each receiver gets its own copy along its shortest
//!   path: `Σ_t dist(src, t)`;
//! * **broadcast** — the message floods the shortest-path tree to *every*
//!   node: the cost of the full SPT (event-independent per source);
//! * **ideal multicast** — a dedicated group per event: the SPT pruned to
//!   exactly the interested nodes;
//! * **group multicast** (dense mode) — the SPT pruned to the members of
//!   the precomputed group the event was matched to;
//! * **application-level multicast** — group members form an overlay MST
//!   (edge weight = unicast cost between members) and forward member to
//!   member; the publisher unicasts into the nearest member.

use std::collections::HashMap;
use std::fmt;

use crate::faults::DegradedView;
use crate::graph::{Graph, NodeId};
use crate::mst::overlay_mst;
use crate::shortest_path::ShortestPathTree;

/// Error produced by routing queries that cannot be answered from the
/// warmed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingError {
    /// No shortest-path tree was warmed for this source before the
    /// router was frozen; infallible queries fall back to an on-demand
    /// (uncached) Dijkstra run instead.
    ColdSource(NodeId),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::ColdSource(n) => {
                write!(f, "no frozen shortest-path tree for source {n}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// How a [`Router::set_view`] transition affected the SPT cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewTransition {
    /// Whether an edge *improved* (revival / degradation easing), which
    /// forces every cached tree out — a better edge can create
    /// shortcuts for trees that never touched it.
    pub full_rebuild: bool,
    /// Trees dropped by this transition.
    pub invalidated: usize,
    /// Trees that survived (they dodge every changed edge).
    pub retained: usize,
}

/// A routing oracle over a fixed network: caches one shortest-path tree
/// per source and answers delivery-cost queries for every scheme in the
/// paper.
///
/// # Examples
///
/// ```
/// use netsim::{Graph, NodeId, Router};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 1.0)?;
/// let mut router = Router::new(&g);
/// assert_eq!(router.unicast_cost(NodeId(0), [NodeId(1), NodeId(2)]), 3.0);
/// assert_eq!(router.ideal_multicast_cost(NodeId(0), [NodeId(1), NodeId(2)]), 2.0);
/// # Ok::<(), netsim::GraphError>(())
/// ```
#[derive(Debug)]
pub struct Router<'g> {
    graph: &'g Graph,
    /// The failure state the router currently routes under.
    view: DegradedView,
    /// Materialized degraded graph (same ids as `graph`, dead edges at
    /// `+inf`); `None` while the view is healthy so the fault-free path
    /// runs the exact original code.
    degraded: Option<Graph>,
    spt_cache: HashMap<NodeId, ShortestPathTree>,
    scratch: Vec<bool>,
}

impl<'g> Router<'g> {
    /// Creates a router over `graph` with a fully healthy view.
    pub fn new(graph: &'g Graph) -> Self {
        Router {
            graph,
            view: DegradedView::healthy(graph),
            degraded: None,
            spt_cache: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The underlying (healthy) graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The failure view the router currently routes under.
    pub fn view(&self) -> &DegradedView {
        &self.view
    }

    /// Installs a new failure view, incrementally invalidating the SPT
    /// cache: only trees that traverse a changed edge (or whose source
    /// flipped liveness) are dropped — unless some edge *improved*, in
    /// which case every tree goes (a revived link can shortcut paths
    /// that never used it). Returns what happened to the cache.
    pub fn set_view(&mut self, view: DegradedView) -> ViewTransition {
        let before = self.spt_cache.len();
        let full_rebuild = view.has_improvement_over(&self.view, self.graph);
        if full_rebuild {
            self.spt_cache.clear();
        } else {
            let prev = &self.view;
            let graph = self.graph;
            self.spt_cache
                .retain(|_, tree| !view.invalidates_tree(prev, graph, tree));
        }
        let retained = self.spt_cache.len();
        self.degraded = if view.is_healthy() {
            None
        } else {
            Some(view.apply(self.graph))
        };
        self.view = view;
        ViewTransition {
            full_rebuild,
            invalidated: before - retained,
            retained,
        }
    }

    /// The (cached) shortest-path tree rooted at `src`, computed over
    /// the degraded graph when a faulty view is installed.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn spt(&mut self, src: NodeId) -> &ShortestPathTree {
        let graph = self.degraded.as_ref().unwrap_or(self.graph);
        self.spt_cache
            .entry(src)
            .or_insert_with(|| ShortestPathTree::compute(graph, src))
    }

    /// Shortest-path distance between two nodes.
    pub fn distance(&mut self, a: NodeId, b: NodeId) -> f64 {
        self.spt(a).distance(b)
    }

    /// Unicast cost: `Σ_t dist(src, t)`. The source itself contributes 0.
    pub fn unicast_cost(&mut self, src: NodeId, targets: impl IntoIterator<Item = NodeId>) -> f64 {
        self.spt(src).unicast_cost(targets)
    }

    /// Broadcast cost: the full shortest-path tree from `src` to every
    /// node. Event-independent for a fixed source.
    pub fn broadcast_cost(&mut self, src: NodeId) -> f64 {
        let all: Vec<NodeId> = self.graph.nodes().collect();
        self.group_multicast_cost(src, &all)
    }

    /// Ideal multicast: a dedicated group containing exactly the
    /// interested nodes — the pruned SPT cost. Equals
    /// [`Router::group_multicast_cost`] with `members = interested`.
    pub fn ideal_multicast_cost(
        &mut self,
        src: NodeId,
        interested: impl IntoIterator<Item = NodeId>,
    ) -> f64 {
        let targets: Vec<NodeId> = interested.into_iter().collect();
        self.group_multicast_cost(src, &targets)
    }

    /// Network-supported (dense-mode) multicast to a precomputed group:
    /// the shortest-path tree rooted at the publisher, pruned to the
    /// group members. Each shared tree edge is traversed once.
    pub fn group_multicast_cost(&mut self, src: NodeId, members: &[NodeId]) -> f64 {
        // Split borrows: take the scratch buffer out during the call.
        let mut scratch = std::mem::take(&mut self.scratch);
        let graph = self.degraded.as_ref().unwrap_or(self.graph);
        let spt = self
            .spt_cache
            .entry(src)
            .or_insert_with(|| ShortestPathTree::compute(graph, src));
        let cost = spt.multicast_tree_cost_with(graph, members.iter().copied(), &mut scratch);
        self.scratch = scratch;
        cost
    }

    /// Application-level multicast: members form an overlay MST whose
    /// edge weights are pairwise unicast costs; each overlay edge is a
    /// unicast along the underlying shortest path. The publisher
    /// unicasts the message into the nearest member (cost 0 when the
    /// publisher is itself a member).
    ///
    /// Returns 0 for an empty group.
    ///
    /// When delivering many events to the same static group, compute
    /// the group's tree once with [`Router::overlay_mst_cost`] and add
    /// [`Router::entry_cost`] per event instead.
    pub fn app_multicast_cost(&mut self, src: NodeId, members: &[NodeId]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        self.entry_cost(src, members) + self.overlay_mst_cost(members)
    }

    /// The publisher's cost of injecting a message into an overlay
    /// group: the unicast cost to the nearest member (0 when the
    /// publisher is a member, `+inf` for an empty group).
    pub fn entry_cost(&mut self, src: NodeId, members: &[NodeId]) -> f64 {
        if members.contains(&src) {
            return 0.0;
        }
        let spt = self.spt(src);
        members
            .iter()
            .map(|&m| spt.distance(m))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total weight of the overlay MST among `members` (edge weight =
    /// pairwise unicast cost). Event-independent for a static group.
    pub fn overlay_mst_cost(&mut self, members: &[NodeId]) -> f64 {
        if members.len() < 2 {
            return 0.0;
        }
        // Pairwise member distances need one SPT per member; warm the
        // cache first so the closure below can borrow immutably. A
        // cache miss (impossible today, but cheap to tolerate) falls
        // back to an on-demand Dijkstra run instead of aborting.
        for &m in members {
            self.spt(m);
        }
        let cache = &self.spt_cache;
        let graph = self.degraded.as_ref().unwrap_or(self.graph);
        let (_, mst_cost) = overlay_mst(members, |a, b| match cache.get(&a) {
            Some(spt) => spt.distance(b),
            None => ShortestPathTree::compute(graph, a).distance(b),
        });
        mst_cost
    }

    /// Number of distinct sources whose SPTs are currently cached.
    pub fn cached_sources(&self) -> usize {
        self.spt_cache.len()
    }

    /// Sparse-mode multicast (PIM-SM style shared tree): the group
    /// shares one tree rooted at a *rendezvous point*; the publisher
    /// unicasts the message to the RP, which forwards it down the
    /// shared tree.
    ///
    /// Compared with dense mode (per-publisher trees,
    /// [`Router::group_multicast_cost`]) the shared tree saves router
    /// state — one tree per group instead of one per
    /// (publisher, group) — at the price of the publisher→RP detour.
    /// The paper mentions both modes and assumes dense; this gives the
    /// comparison.
    pub fn sparse_multicast_cost(&mut self, src: NodeId, rp: NodeId, members: &[NodeId]) -> f64 {
        let entry = self.distance(src, rp);
        entry + self.group_multicast_cost(rp, members)
    }

    /// A natural rendezvous point for a group: the member minimizing
    /// the total shortest-path distance to all members (the 1-median
    /// restricted to the group). Returns `None` for an empty group.
    pub fn rendezvous_point(&mut self, members: &[NodeId]) -> Option<NodeId> {
        let mut best: Option<(f64, NodeId)> = None;
        for &candidate in members {
            let spt = self.spt(candidate);
            let total: f64 = members.iter().map(|&m| spt.distance(m)).sum();
            if best.is_none_or(|(b, _)| total < b) {
                best = Some((total, candidate));
            }
        }
        best.map(|(_, rp)| rp)
    }

    /// Consumes the router into an immutable [`FrozenRouter`] holding
    /// the SPTs cached so far (and the installed failure view, if any).
    /// Freeze after warming every source the queries will need; a
    /// source missed during warming degrades to an on-demand Dijkstra
    /// run per query instead of panicking.
    pub fn freeze(self) -> FrozenRouter<'g> {
        FrozenRouter {
            graph: self.graph,
            degraded: self.degraded,
            spts: self.spt_cache,
        }
    }
}

/// An immutable routing oracle: the same cost models as [`Router`], but
/// every query takes `&self` so evaluations can fan out across threads.
///
/// Unlike [`Router`], a `FrozenRouter` never *caches* a shortest-path
/// tree on demand — trees are supplied up front (computed in parallel by
/// the caller, typically) via [`FrozenRouter::insert_spt`] or inherited
/// through [`Router::freeze`]. Querying a source whose tree is missing
/// degrades gracefully: [`FrozenRouter::try_spt`] reports
/// [`RoutingError::ColdSource`], and the infallible cost methods fall
/// back to an on-demand (uncached) Dijkstra run — correct answers,
/// merely slower, instead of aborting the evaluation.
///
/// Every cost method calls the same [`ShortestPathTree`] routines as the
/// mutable router, so frozen and mutable answers are bit-identical.
#[derive(Debug)]
pub struct FrozenRouter<'g> {
    graph: &'g Graph,
    /// Degraded materialization inherited from [`Router::freeze`];
    /// `None` for a healthy view.
    degraded: Option<Graph>,
    spts: HashMap<NodeId, ShortestPathTree>,
}

impl<'g> FrozenRouter<'g> {
    /// Creates an empty frozen router over `graph`; populate it with
    /// [`FrozenRouter::insert_spt`].
    pub fn new(graph: &'g Graph) -> Self {
        FrozenRouter {
            graph,
            degraded: None,
            spts: HashMap::new(),
        }
    }

    /// The underlying (healthy) graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The graph costs are read from: the degraded materialization
    /// inherited from [`Router::freeze`], or the pristine graph.
    fn active_graph(&self) -> &Graph {
        self.degraded.as_ref().unwrap_or(self.graph)
    }

    /// Adds a precomputed shortest-path tree, keyed by its source.
    pub fn insert_spt(&mut self, spt: ShortestPathTree) {
        self.spts.insert(spt.source(), spt);
    }

    /// Whether the tree rooted at `src` is available.
    pub fn contains(&self, src: NodeId) -> bool {
        self.spts.contains_key(&src)
    }

    /// Number of distinct sources with a frozen tree.
    pub fn cached_sources(&self) -> usize {
        self.spts.len()
    }

    /// The frozen shortest-path tree rooted at `src`, or
    /// [`RoutingError::ColdSource`] when `src` was never warmed.
    pub fn try_spt(&self, src: NodeId) -> Result<&ShortestPathTree, RoutingError> {
        self.spts.get(&src).ok_or(RoutingError::ColdSource(src))
    }

    /// Runs `f` against the tree for `src`: the frozen tree when
    /// warmed, otherwise a freshly computed (uncached) one.
    fn with_spt<R>(&self, src: NodeId, f: impl FnOnce(&ShortestPathTree) -> R) -> R {
        match self.spts.get(&src) {
            Some(spt) => f(spt),
            None => f(&ShortestPathTree::compute(self.active_graph(), src)),
        }
    }

    /// Shortest-path distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.with_spt(a, |spt| spt.distance(b))
    }

    /// Unicast cost: `Σ_t dist(src, t)`.
    pub fn unicast_cost(&self, src: NodeId, targets: impl IntoIterator<Item = NodeId>) -> f64 {
        self.with_spt(src, |spt| spt.unicast_cost(targets))
    }

    /// Broadcast cost: the full shortest-path tree from `src`.
    pub fn broadcast_cost(&self, src: NodeId) -> f64 {
        let all: Vec<NodeId> = self.graph.nodes().collect();
        self.group_multicast_cost(src, &all)
    }

    /// Ideal multicast: the SPT pruned to exactly the interested nodes.
    pub fn ideal_multicast_cost(
        &self,
        src: NodeId,
        interested: impl IntoIterator<Item = NodeId>,
    ) -> f64 {
        let targets: Vec<NodeId> = interested.into_iter().collect();
        self.group_multicast_cost(src, &targets)
    }

    /// Dense-mode multicast: the SPT rooted at `src` pruned to `members`.
    pub fn group_multicast_cost(&self, src: NodeId, members: &[NodeId]) -> f64 {
        self.with_spt(src, |spt| {
            spt.multicast_tree_cost(self.active_graph(), members.iter().copied())
        })
    }

    /// The publisher's cost of injecting into an overlay group (0 when
    /// the publisher is a member, `+inf` for an empty group).
    pub fn entry_cost(&self, src: NodeId, members: &[NodeId]) -> f64 {
        if members.contains(&src) {
            return 0.0;
        }
        self.with_spt(src, |spt| {
            members
                .iter()
                .map(|&m| spt.distance(m))
                .fold(f64::INFINITY, f64::min)
        })
    }

    /// Total weight of the overlay MST among `members`. Cold members
    /// fall back to on-demand Dijkstra runs.
    pub fn overlay_mst_cost(&self, members: &[NodeId]) -> f64 {
        if members.len() < 2 {
            return 0.0;
        }
        let (_, mst_cost) = overlay_mst(members, |a, b| self.distance(a, b));
        mst_cost
    }

    /// Application-level multicast: overlay MST plus the entry unicast.
    pub fn app_multicast_cost(&self, src: NodeId, members: &[NodeId]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        self.entry_cost(src, members) + self.overlay_mst_cost(members)
    }

    /// Sparse-mode multicast via rendezvous point `rp`.
    pub fn sparse_multicast_cost(&self, src: NodeId, rp: NodeId, members: &[NodeId]) -> f64 {
        self.distance(src, rp) + self.group_multicast_cost(rp, members)
    }

    /// The member minimizing total distance to all members (cold
    /// members fall back to on-demand Dijkstra). `None` for an empty
    /// group.
    pub fn rendezvous_point(&self, members: &[NodeId]) -> Option<NodeId> {
        let mut best: Option<(f64, NodeId)> = None;
        for &candidate in members {
            let total: f64 = self.with_spt(candidate, |spt| {
                members.iter().map(|&m| spt.distance(m)).sum()
            });
            if best.is_none_or(|(b, _)| total < b) {
                best = Some((total, candidate));
            }
        }
        best.map(|(_, rp)| rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Topology, TransitStubParams};
    use rand::prelude::*;

    /// Path 0 -1- 1 -1- 2 plus expensive shortcut 0 -5- 2.
    fn line() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
        g
    }

    #[test]
    fn unicast_vs_multicast() {
        let g = line();
        let mut r = Router::new(&g);
        let ts = [NodeId(1), NodeId(2)];
        assert_eq!(r.unicast_cost(NodeId(0), ts), 1.0 + 2.0);
        // SPT edges {0-1, 1-2} shared → 2.0.
        assert_eq!(r.ideal_multicast_cost(NodeId(0), ts), 2.0);
    }

    #[test]
    fn broadcast_is_full_tree() {
        let g = line();
        let mut r = Router::new(&g);
        assert_eq!(r.broadcast_cost(NodeId(0)), 2.0);
        assert_eq!(r.broadcast_cost(NodeId(1)), 2.0);
    }

    #[test]
    fn group_multicast_to_subset() {
        let g = line();
        let mut r = Router::new(&g);
        assert_eq!(r.group_multicast_cost(NodeId(0), &[NodeId(2)]), 2.0);
        assert_eq!(r.group_multicast_cost(NodeId(0), &[]), 0.0);
    }

    #[test]
    fn app_multicast_overlay() {
        let g = line();
        let mut r = Router::new(&g);
        // Members {1, 2}: overlay MST = one edge 1-2 with weight 1;
        // publisher 0 enters at member 1 (distance 1). Total 2.
        assert_eq!(
            r.app_multicast_cost(NodeId(0), &[NodeId(1), NodeId(2)]),
            2.0
        );
        // Publisher inside the group: no entry cost.
        assert_eq!(
            r.app_multicast_cost(NodeId(1), &[NodeId(1), NodeId(2)]),
            1.0
        );
        assert_eq!(r.app_multicast_cost(NodeId(0), &[]), 0.0);
    }

    #[test]
    fn app_multicast_decomposes_and_is_bounded() {
        // app = entry + overlay MST, each side individually a lower
        // bound. (No dominance over dense mode is asserted: the pruned
        // SPT is not a Steiner tree, so either scheme can win.)
        let mut rng = StdRng::seed_from_u64(11);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let mut r = Router::new(topo.graph());
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        for trial in 0..10 {
            let src = nodes[(trial * 17) % nodes.len()];
            let members: Vec<NodeId> = (0..8)
                .map(|i| nodes[(i * 31 + trial * 7) % nodes.len()])
                .collect();
            let app = r.app_multicast_cost(src, &members);
            let split = r.entry_cost(src, &members) + r.overlay_mst_cost(&members);
            assert!((app - split).abs() < 1e-9, "trial {trial}");
            assert!(app >= r.overlay_mst_cost(&members) - 1e-9);
        }
    }

    #[test]
    fn cost_ordering_on_random_topology() {
        let mut rng = StdRng::seed_from_u64(12);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let mut r = Router::new(topo.graph());
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let src = nodes[0];
        let interested: Vec<NodeId> = nodes.iter().step_by(7).copied().collect();
        let uni = r.unicast_cost(src, interested.iter().copied());
        let ideal = r.ideal_multicast_cost(src, interested.iter().copied());
        let bcast = r.broadcast_cost(src);
        assert!(ideal <= uni + 1e-9, "ideal {ideal} > unicast {uni}");
        assert!(ideal <= bcast + 1e-9, "ideal {ideal} > broadcast {bcast}");
    }

    #[test]
    fn sparse_mode_pays_the_rp_detour() {
        let g = line();
        let mut r = Router::new(&g);
        let members = [NodeId(1), NodeId(2)];
        let rp = r.rendezvous_point(&members).unwrap();
        // 1-median of {1, 2} on the line 0-1-2: node 1 (total 1) beats
        // node 2 (total 1)? Both total 1.0; first minimum wins → 1.
        assert_eq!(rp, NodeId(1));
        let sparse = r.sparse_multicast_cost(NodeId(0), rp, &members);
        let dense = r.group_multicast_cost(NodeId(0), &members);
        // Shared tree from RP=1 covers {1,2} at cost 1; entry 0→1 is 1.
        assert_eq!(sparse, 2.0);
        // Dense mode from the publisher itself costs the same here.
        assert_eq!(dense, 2.0);
        // Publishing *at* the RP skips the detour entirely.
        assert_eq!(r.sparse_multicast_cost(NodeId(1), rp, &members), 1.0);
        // Empty group has no RP.
        assert_eq!(r.rendezvous_point(&[]), None);
    }

    #[test]
    fn sparse_mode_bounds_on_random_topologies() {
        use crate::topology::{Topology, TransitStubParams};
        use rand::prelude::*;
        // Neither mode dominates in general (dense uses the publisher's
        // SPT, which is not a Steiner tree; a well-placed RP can beat
        // it), but sparse is always bounded below by the distance to
        // the farthest member and above by entry + the RP's full tree.
        let mut rng = StdRng::seed_from_u64(21);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let mut r = Router::new(topo.graph());
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        for trial in 0..10 {
            let members: Vec<NodeId> = nodes
                .iter()
                .skip(trial)
                .step_by(9)
                .copied()
                .take(7)
                .collect();
            let src = nodes[(trial * 13) % nodes.len()];
            let rp = r.rendezvous_point(&members).unwrap();
            assert!(members.contains(&rp), "RP is one of the members");
            let sparse = r.sparse_multicast_cost(src, rp, &members);
            let far = members
                .iter()
                .map(|&m| r.distance(src, m))
                .fold(0.0f64, f64::max);
            // Reaching the farthest member cannot be cheaper than its
            // shortest path.
            assert!(sparse >= far - 1e-9, "trial {trial}: {sparse} < {far}");
            let upper = r.distance(src, rp) + r.broadcast_cost(rp);
            assert!(sparse <= upper + 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn frozen_router_matches_mutable_answers() {
        let mut rng = StdRng::seed_from_u64(31);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let mut r = Router::new(topo.graph());
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let members: Vec<NodeId> = nodes.iter().step_by(5).copied().take(6).collect();
        let src = nodes[1];
        let uni = r.unicast_cost(src, members.iter().copied());
        let dense = r.group_multicast_cost(src, &members);
        let app = r.app_multicast_cost(src, &members);
        let rp = r.rendezvous_point(&members).unwrap();
        let sparse = r.sparse_multicast_cost(src, rp, &members);
        let bcast = r.broadcast_cost(src);
        let f = r.freeze();
        assert!(f.contains(src));
        assert_eq!(
            f.unicast_cost(src, members.iter().copied()).to_bits(),
            uni.to_bits()
        );
        assert_eq!(
            f.group_multicast_cost(src, &members).to_bits(),
            dense.to_bits()
        );
        assert_eq!(f.app_multicast_cost(src, &members).to_bits(), app.to_bits());
        assert_eq!(f.rendezvous_point(&members), Some(rp));
        assert_eq!(
            f.sparse_multicast_cost(src, rp, &members).to_bits(),
            sparse.to_bits()
        );
        assert_eq!(f.broadcast_cost(src).to_bits(), bcast.to_bits());
    }

    #[test]
    fn frozen_router_accepts_inserted_trees() {
        let g = line();
        let mut f = FrozenRouter::new(&g);
        assert!(!f.contains(NodeId(0)));
        f.insert_spt(crate::shortest_path::ShortestPathTree::compute(
            &g,
            NodeId(0),
        ));
        assert_eq!(f.cached_sources(), 1);
        assert_eq!(f.distance(NodeId(0), NodeId(2)), 2.0);
        assert_eq!(f.group_multicast_cost(NodeId(0), &[NodeId(2)]), 2.0);
    }

    #[test]
    fn frozen_router_cold_source_falls_back() {
        let g = line();
        let f = FrozenRouter::new(&g);
        // try_spt reports the miss as a typed error...
        assert_eq!(
            f.try_spt(NodeId(0)).unwrap_err(),
            RoutingError::ColdSource(NodeId(0))
        );
        assert!(!f.try_spt(NodeId(0)).unwrap_err().to_string().is_empty());
        // ...while cost queries degrade to on-demand Dijkstra with the
        // same answers a warmed router gives.
        assert_eq!(f.distance(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(f.group_multicast_cost(NodeId(0), &[NodeId(2)]), 2.0);
        assert_eq!(f.overlay_mst_cost(&[NodeId(1), NodeId(2)]), 1.0);
        assert_eq!(f.rendezvous_point(&[NodeId(1), NodeId(2)]), Some(NodeId(1)));
        // The fallback never populates the cache.
        assert_eq!(f.cached_sources(), 0);
    }

    #[test]
    fn router_view_reroutes_and_invalidates_incrementally() {
        use crate::faults::{Fault, FaultSchedule};
        use crate::graph::EdgeId;
        let g = line();
        let mut r = Router::new(&g);
        assert!(r.view().is_healthy());
        // Warm trees from both ends.
        assert_eq!(r.distance(NodeId(0), NodeId(2)), 2.0);
        assert_eq!(r.distance(NodeId(2), NodeId(0)), 2.0);
        assert_eq!(r.cached_sources(), 2);

        // Fail the middle edge 1-2: both trees traverse it.
        let schedule = FaultSchedule::new(2)
            .with(0, Fault::LinkDown(EdgeId(1)))
            .with(1, Fault::LinkUp(EdgeId(1)));
        let down = schedule.view_at(&g, 0);
        let t = r.set_view(down);
        assert!(!t.full_rebuild);
        assert_eq!(t.invalidated, 2);
        assert_eq!(t.retained, 0);
        // Routing now detours over the expensive shortcut.
        assert_eq!(r.distance(NodeId(0), NodeId(2)), 5.0);
        assert_eq!(r.distance(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(
            r.group_multicast_cost(NodeId(0), &[NodeId(1), NodeId(2)]),
            6.0
        );

        // Reviving the edge is an improvement: full rebuild, healthy
        // answers return bit-identically.
        let up = schedule.view_at(&g, 1);
        let t = r.set_view(up);
        assert!(t.full_rebuild);
        assert_eq!(r.distance(NodeId(0), NodeId(2)), 2.0);

        // A failure the cached tree dodges leaves it in place.
        let far = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(2)))
            .view_at(&g, 0);
        let warm_before = r.cached_sources();
        let t = r.set_view(far);
        assert!(!t.full_rebuild);
        assert_eq!(t.retained, warm_before);
        assert_eq!(r.distance(NodeId(0), NodeId(2)), 2.0);
    }

    #[test]
    fn frozen_router_inherits_degraded_view() {
        use crate::faults::{Fault, FaultSchedule};
        use crate::graph::EdgeId;
        let g = line();
        let mut r = Router::new(&g);
        let down = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(1)))
            .view_at(&g, 0);
        r.set_view(down);
        let warm = r.distance(NodeId(0), NodeId(2));
        let f = r.freeze();
        assert_eq!(f.distance(NodeId(0), NodeId(2)).to_bits(), warm.to_bits());
        // Cold fallback also routes under the degraded view.
        assert_eq!(f.distance(NodeId(1), NodeId(2)), 6.0);
    }

    #[test]
    fn spt_cache_reuse() {
        let g = line();
        let mut r = Router::new(&g);
        let _ = r.unicast_cost(NodeId(0), [NodeId(1)]);
        let _ = r.broadcast_cost(NodeId(0));
        assert_eq!(r.cached_sources(), 1);
        let _ = r.distance(NodeId(2), NodeId(0));
        assert_eq!(r.cached_sources(), 2);
    }
}
