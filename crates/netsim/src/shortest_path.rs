//! Dijkstra shortest paths and shortest-path trees.
//!
//! Dense-mode network-supported multicast (Section 5.1 of the paper)
//! routes along "a shortest path tree rooted at [the] publisher"; unicast
//! cost is the sum of shortest-path distances to each receiver. Both are
//! derived from a single Dijkstra run captured in [`ShortestPathTree`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, Graph, NodeId};

/// A min-heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; distances are never NaN.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distance is never NaN")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The result of a Dijkstra run from a single source: distances plus the
/// parent pointers that encode the shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    /// `dist[n]` — shortest-path distance from the source; `+inf` if
    /// unreachable.
    dist: Vec<f64>,
    /// `parent[n]` — the edge by which `n` is reached in the tree.
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from `source` over non-negative edge costs.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for `g`.
    pub fn compute(g: &Graph, source: NodeId) -> Self {
        assert!(source.0 < g.num_nodes(), "source out of range");
        let n = g.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[source.0] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u.0] {
                continue;
            }
            done[u.0] = true;
            for &(v, e) in g.neighbors(u) {
                let nd = d + g.edge(e).cost;
                if nd < dist[v.0] {
                    dist[v.0] = nd;
                    parent[v.0] = Some((u, e));
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        ShortestPathTree {
            source,
            dist,
            parent,
        }
    }

    /// The tree's root.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest-path distance from the source to `n` (`+inf` when
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn distance(&self, n: NodeId) -> f64 {
        self.dist[n.0]
    }

    /// Whether `n` is reachable from the source.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn is_reachable(&self, n: NodeId) -> bool {
        self.dist[n.0].is_finite()
    }

    /// The parent hop `(parent_node, edge)` of `n` in the tree, `None`
    /// for the source or unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[n.0]
    }

    /// The tree edges on the path from the source to `n`, in root-to-leaf
    /// order; empty for the source itself.
    ///
    /// Returns `None` when `n` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn path_edges(&self, n: NodeId) -> Option<Vec<EdgeId>> {
        if !self.is_reachable(n) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = n;
        while let Some((p, e)) = self.parent[cur.0] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    /// The cost of the union of shortest paths from the source to every
    /// node in `targets` — the dense-mode multicast tree cost (each tree
    /// edge is traversed once regardless of how many receivers share it).
    ///
    /// Unreachable targets are ignored. `edge_seen` is a caller-supplied
    /// scratch buffer of length `num_edges`, cleared on entry, that lets
    /// hot loops avoid reallocating; see
    /// [`ShortestPathTree::multicast_tree_cost`] for the convenient form.
    ///
    /// # Panics
    ///
    /// Panics if `edge_seen` is shorter than the edge count implied by the
    /// tree's parent pointers.
    pub fn multicast_tree_cost_with(
        &self,
        g: &Graph,
        targets: impl IntoIterator<Item = NodeId>,
        edge_seen: &mut Vec<bool>,
    ) -> f64 {
        edge_seen.clear();
        edge_seen.resize(g.num_edges(), false);
        let mut total = 0.0;
        for t in targets {
            let mut cur = t;
            if !self.is_reachable(cur) {
                continue;
            }
            while let Some((p, e)) = self.parent[cur.0] {
                if edge_seen[e.0] {
                    // The rest of the path to the root is already counted.
                    break;
                }
                edge_seen[e.0] = true;
                total += g.edge(e).cost;
                cur = p;
            }
        }
        total
    }

    /// Convenience wrapper around
    /// [`ShortestPathTree::multicast_tree_cost_with`] that allocates its
    /// own scratch buffer.
    pub fn multicast_tree_cost(&self, g: &Graph, targets: impl IntoIterator<Item = NodeId>) -> f64 {
        let mut seen = Vec::new();
        self.multicast_tree_cost_with(g, targets, &mut seen)
    }

    /// The distinct edges of the pruned tree reaching `targets` — the
    /// links a dense-mode multicast actually crosses (used by the
    /// load-accounting model). Unreachable targets are ignored.
    pub fn multicast_tree_edges(
        &self,
        g: &Graph,
        targets: impl IntoIterator<Item = NodeId>,
    ) -> Vec<EdgeId> {
        let mut seen = vec![false; g.num_edges()];
        let mut edges = Vec::new();
        for t in targets {
            if !self.is_reachable(t) {
                continue;
            }
            let mut cur = t;
            while let Some((p, e)) = self.parent[cur.0] {
                if seen[e.0] {
                    break;
                }
                seen[e.0] = true;
                edges.push(e);
                cur = p;
            }
        }
        edges
    }

    /// All edges of the full shortest-path tree (one parent edge per
    /// reachable non-source node), in node-id order.
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.parent.iter().filter_map(|p| p.map(|(_, e)| e))
    }

    /// Sum of shortest-path distances from the source to each target —
    /// the unicast delivery cost (each receiver gets its own copy along
    /// its own path). Unreachable targets are ignored.
    pub fn unicast_cost(&self, targets: impl IntoIterator<Item = NodeId>) -> f64 {
        targets
            .into_iter()
            .map(|t| self.dist[t.0])
            .filter(|d| d.is_finite())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 -1- 1 -2- 2 -4- 3 plus shortcut 0 -6- 3.
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 4.0).unwrap();
        g.add_edge(NodeId(0), NodeId(3), 6.0).unwrap();
        g
    }

    #[test]
    fn distances() {
        let g = diamond();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(spt.distance(NodeId(0)), 0.0);
        assert_eq!(spt.distance(NodeId(1)), 1.0);
        assert_eq!(spt.distance(NodeId(2)), 3.0);
        // 0→3: direct 6 vs via path 7 ⇒ 6.
        assert_eq!(spt.distance(NodeId(3)), 6.0);
    }

    #[test]
    fn path_extraction() {
        let g = diamond();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        let p = spt.path_edges(NodeId(2)).unwrap();
        assert_eq!(p.len(), 2);
        assert!(spt.path_edges(NodeId(0)).unwrap().is_empty());
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = diamond();
        let iso = g.add_node();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        assert!(!spt.is_reachable(iso));
        assert!(spt.path_edges(iso).is_none());
        assert_eq!(spt.unicast_cost([iso]), 0.0);
    }

    #[test]
    fn unicast_cost_sums_distances() {
        let g = diamond();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(spt.unicast_cost([NodeId(1), NodeId(2), NodeId(3)]), 10.0);
    }

    #[test]
    fn multicast_tree_shares_edges() {
        let g = diamond();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        // Paths to 1 and 2 share edge (0,1): tree cost 1 + 2 = 3, not 4.
        assert_eq!(spt.multicast_tree_cost(&g, [NodeId(1), NodeId(2)]), 3.0);
        // Adding node 3 adds its direct edge.
        assert_eq!(
            spt.multicast_tree_cost(&g, [NodeId(1), NodeId(2), NodeId(3)]),
            9.0
        );
        // Source only: zero.
        assert_eq!(spt.multicast_tree_cost(&g, [NodeId(0)]), 0.0);
    }

    #[test]
    fn multicast_cost_leq_unicast() {
        let g = diamond();
        let spt = ShortestPathTree::compute(&g, NodeId(0));
        let ts = [NodeId(1), NodeId(2), NodeId(3)];
        assert!(spt.multicast_tree_cost(&g, ts) <= spt.unicast_cost(ts));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // node-id loops read clearest indexed
    fn agrees_with_brute_force_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(2..12);
            let mut g = Graph::with_nodes(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.5) {
                        g.add_edge(NodeId(u), NodeId(v), rng.gen_range(1.0..10.0))
                            .unwrap();
                    }
                }
            }
            // Brute-force Bellman-Ford.
            let mut bf = vec![f64::INFINITY; n];
            bf[0] = 0.0;
            for _ in 0..n {
                for e in g.edges() {
                    if bf[e.u.0] + e.cost < bf[e.v.0] {
                        bf[e.v.0] = bf[e.u.0] + e.cost;
                    }
                    if bf[e.v.0] + e.cost < bf[e.u.0] {
                        bf[e.u.0] = bf[e.v.0] + e.cost;
                    }
                }
            }
            let spt = ShortestPathTree::compute(&g, NodeId(0));
            for v in 0..n {
                let d = spt.distance(NodeId(v));
                if bf[v].is_finite() {
                    assert!((d - bf[v]).abs() < 1e-9, "node {v}: {d} vs {}", bf[v]);
                } else {
                    assert!(d.is_infinite());
                }
            }
        }
    }
}
