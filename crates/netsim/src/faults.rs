//! Deterministic fault injection: failure schedules and degraded graph
//! views.
//!
//! The paper evaluates clustering on a *static* transit-stub topology;
//! this module grows the model toward production by letting links fail
//! and recover, nodes crash, and link capacity degrade over a sequence
//! of **epochs**. A [`FaultSchedule`] lists the fault transitions per
//! epoch; replaying epochs `0..=k` yields the [`DegradedView`] in force
//! during epoch `k`. The view is a set of masks over a [`Graph`] — the
//! underlying graph is never mutated, so node and edge ids stay stable
//! across the whole schedule and shortest-path trees can be invalidated
//! *incrementally* (only trees that traverse a changed edge are
//! rebuilt).
//!
//! All random draws go through the vendored `rand` stub with a fixed
//! seed and a fixed iteration order, so a schedule is bit-identical
//! across runs and thread counts (the PR-1 determinism contract).

use rand::prelude::*;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::shortest_path::ShortestPathTree;

/// A single fault transition applied at the start of an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The link goes down (both directions).
    LinkDown(EdgeId),
    /// A previously failed link comes back up.
    LinkUp(EdgeId),
    /// The node crashes: it stops forwarding and receiving, and every
    /// incident link is effectively dead.
    NodeCrash(NodeId),
    /// A previously crashed node recovers.
    NodeRecover(NodeId),
    /// The link stays up but its cost is multiplied by `factor ≥ 1`
    /// (congestion / capacity degradation).
    LinkDegrade {
        /// The affected link.
        edge: EdgeId,
        /// Multiplicative cost penalty, at least `1.0`.
        factor: f64,
    },
    /// A previously degraded link returns to its nominal cost.
    LinkRestore(EdgeId),
}

/// Parameters for [`FaultSchedule::random`]: per-epoch transition
/// probabilities of the failure process.
#[derive(Debug, Clone)]
pub struct FaultModel {
    /// Number of epochs in the schedule (at least 1).
    pub epochs: usize,
    /// Probability that a live link goes down in a given epoch.
    pub link_fail: f64,
    /// Probability that a failed link recovers in a given epoch.
    pub link_recover: f64,
    /// Probability that a live node crashes in a given epoch.
    pub node_crash: f64,
    /// Probability that a crashed node recovers in a given epoch.
    pub node_recover: f64,
    /// Probability that a healthy link degrades in a given epoch.
    pub degrade: f64,
    /// Probability that a degraded link is restored in a given epoch.
    pub restore: f64,
    /// Range `(lo, hi)` the degradation factor is drawn from.
    pub degrade_factor: (f64, f64),
    /// Nodes that never crash (e.g. the transit core, so the network
    /// does not trivially partition).
    pub protected: Vec<NodeId>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            epochs: 4,
            link_fail: 0.05,
            link_recover: 0.5,
            node_crash: 0.02,
            node_recover: 0.5,
            degrade: 0.05,
            restore: 0.5,
            degrade_factor: (2.0, 4.0),
            protected: Vec::new(),
        }
    }
}

impl FaultModel {
    /// A model with the given per-epoch link failure probability and all
    /// other knobs at their defaults — the single-parameter sweep used
    /// by the resilience benchmark.
    pub fn with_link_fail(epochs: usize, link_fail: f64) -> Self {
        FaultModel {
            epochs,
            link_fail,
            ..FaultModel::default()
        }
    }
}

/// A per-epoch list of fault transitions over a fixed graph.
///
/// Epoch `k`'s transitions are applied *cumulatively* on top of epochs
/// `0..k`; an empty schedule has one epoch and no faults, and replays to
/// a fully healthy view.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    epochs: Vec<Vec<Fault>>,
}

impl FaultSchedule {
    /// A schedule with `num_epochs` empty epochs (clamped to at least 1).
    pub fn new(num_epochs: usize) -> Self {
        FaultSchedule {
            epochs: vec![Vec::new(); num_epochs.max(1)],
        }
    }

    /// The zero-fault schedule: one epoch, no transitions. Delivery
    /// under this schedule must be bit-identical to the fault-free path.
    pub fn empty() -> Self {
        FaultSchedule::new(1)
    }

    /// Number of epochs (always at least 1).
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the schedule contains no fault transitions at all.
    pub fn is_trivial(&self) -> bool {
        self.epochs.iter().all(|e| e.is_empty())
    }

    /// The transitions applied at the start of `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is out of range.
    pub fn faults_at(&self, epoch: usize) -> &[Fault] {
        &self.epochs[epoch]
    }

    /// Appends a transition to `epoch`, growing the schedule if needed.
    pub fn push(&mut self, epoch: usize, fault: Fault) {
        if epoch >= self.epochs.len() {
            self.epochs.resize(epoch + 1, Vec::new());
        }
        self.epochs[epoch].push(fault);
    }

    /// Builder form of [`FaultSchedule::push`].
    pub fn with(mut self, epoch: usize, fault: Fault) -> Self {
        self.push(epoch, fault);
        self
    }

    /// Draws a random schedule from `model` over `g`, seeded so that
    /// the result is bit-identical for a given `(graph, model, seed)`
    /// regardless of thread count: a single RNG walks edges then nodes
    /// in id order within each epoch.
    pub fn random(g: &Graph, model: &FaultModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new(model.epochs);
        let mut link_down = vec![false; g.num_edges()];
        let mut degraded = vec![false; g.num_edges()];
        let mut node_down = vec![false; g.num_nodes()];
        let mut protected = vec![false; g.num_nodes()];
        for &n in &model.protected {
            if n.0 < protected.len() {
                protected[n.0] = true;
            }
        }
        for epoch in 0..model.epochs {
            for (e, down) in link_down.iter_mut().enumerate() {
                if *down {
                    if rng.gen_bool(model.link_recover) {
                        *down = false;
                        schedule.push(epoch, Fault::LinkUp(EdgeId(e)));
                    }
                } else if rng.gen_bool(model.link_fail) {
                    *down = true;
                    schedule.push(epoch, Fault::LinkDown(EdgeId(e)));
                }
            }
            for (e, slow) in degraded.iter_mut().enumerate() {
                if *slow {
                    if rng.gen_bool(model.restore) {
                        *slow = false;
                        schedule.push(epoch, Fault::LinkRestore(EdgeId(e)));
                    }
                } else if rng.gen_bool(model.degrade) {
                    *slow = true;
                    let (lo, hi) = model.degrade_factor;
                    let factor = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                    schedule.push(
                        epoch,
                        Fault::LinkDegrade {
                            edge: EdgeId(e),
                            factor,
                        },
                    );
                }
            }
            for n in 0..g.num_nodes() {
                if node_down[n] {
                    if rng.gen_bool(model.node_recover) {
                        node_down[n] = false;
                        schedule.push(epoch, Fault::NodeRecover(NodeId(n)));
                    }
                } else if !protected[n] && rng.gen_bool(model.node_crash) {
                    node_down[n] = true;
                    schedule.push(epoch, Fault::NodeCrash(NodeId(n)));
                }
            }
        }
        schedule
    }

    /// The degraded view in force during `epoch` — epochs `0..=epoch`
    /// replayed cumulatively over a healthy view of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is out of range.
    pub fn view_at(&self, g: &Graph, epoch: usize) -> DegradedView {
        assert!(epoch < self.epochs.len(), "epoch out of range");
        let mut view = DegradedView::healthy(g);
        for (k, faults) in self.epochs.iter().enumerate().take(epoch + 1) {
            view.epoch = k;
            for f in faults {
                view.apply_fault(*f);
            }
        }
        view.refresh_faulty();
        view
    }

    /// All per-epoch views, in order. Each is the cumulative state, so
    /// `views(g)[k] == view_at(g, k)`.
    pub fn views(&self, g: &Graph) -> Vec<DegradedView> {
        let mut out = Vec::with_capacity(self.epochs.len());
        let mut view = DegradedView::healthy(g);
        for (k, faults) in self.epochs.iter().enumerate() {
            view.epoch = k;
            for f in faults {
                view.apply_fault(*f);
            }
            view.refresh_faulty();
            out.push(view.clone());
        }
        out
    }
}

/// The failure state in force during one epoch: masks over a [`Graph`]
/// that never mutate the graph itself, so ids stay stable.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedView {
    epoch: usize,
    edge_down: Vec<bool>,
    node_down: Vec<bool>,
    /// Multiplicative cost factor per edge; `1.0` means nominal.
    degrade: Vec<f64>,
    faulty: bool,
}

impl DegradedView {
    /// The all-healthy view of `g` (epoch 0, nothing failed).
    pub fn healthy(g: &Graph) -> Self {
        DegradedView {
            epoch: 0,
            edge_down: vec![false; g.num_edges()],
            node_down: vec![false; g.num_nodes()],
            degrade: vec![1.0; g.num_edges()],
            faulty: false,
        }
    }

    /// The epoch this view describes.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Whether nothing is failed or degraded — the view behaves exactly
    /// like the underlying graph.
    pub fn is_healthy(&self) -> bool {
        !self.faulty
    }

    fn apply_fault(&mut self, f: Fault) {
        match f {
            Fault::LinkDown(e) => self.edge_down[e.0] = true,
            Fault::LinkUp(e) => self.edge_down[e.0] = false,
            Fault::NodeCrash(n) => self.node_down[n.0] = true,
            Fault::NodeRecover(n) => self.node_down[n.0] = false,
            Fault::LinkDegrade { edge, factor } => {
                self.degrade[edge.0] = factor.max(1.0);
            }
            Fault::LinkRestore(e) => self.degrade[e.0] = 1.0,
        }
    }

    fn refresh_faulty(&mut self) {
        self.faulty = self.edge_down.iter().any(|&d| d)
            || self.node_down.iter().any(|&d| d)
            || self.degrade.iter().any(|&f| f != 1.0);
    }

    /// Whether node `n` is up.
    pub fn node_live(&self, n: NodeId) -> bool {
        !self.node_down[n.0]
    }

    /// Whether edge `e` carries traffic: the link is up and both
    /// endpoints are live.
    pub fn edge_live(&self, g: &Graph, e: EdgeId) -> bool {
        if self.edge_down[e.0] {
            return false;
        }
        let edge = g.edge(e);
        self.node_live(edge.u) && self.node_live(edge.v)
    }

    /// The degradation factor on `e` (`1.0` when nominal).
    pub fn degrade_factor(&self, e: EdgeId) -> f64 {
        self.degrade[e.0]
    }

    /// Whether `e` is live but running above nominal cost — the lossy
    /// links that trigger retries in the resilience model.
    pub fn edge_degraded(&self, e: EdgeId) -> bool {
        self.degrade[e.0] > 1.0
    }

    /// The effective cost of `e` under this view: `+inf` when the edge
    /// is dead, `cost × factor` otherwise. With no degradation the
    /// nominal cost is returned bit-identically.
    pub fn edge_cost(&self, g: &Graph, e: EdgeId) -> f64 {
        if !self.edge_live(g, e) {
            return f64::INFINITY;
        }
        let cost = g.edge(e).cost;
        if self.degrade[e.0] == 1.0 {
            cost
        } else {
            cost * self.degrade[e.0]
        }
    }

    /// All currently crashed nodes, in id order.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.node_down
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// All edges that cannot carry traffic (down, or an endpoint
    /// crashed), in id order.
    pub fn dead_edges(&self, g: &Graph) -> Vec<EdgeId> {
        (0..g.num_edges())
            .map(EdgeId)
            .filter(|&e| !self.edge_live(g, e))
            .collect()
    }

    /// Materializes the degraded graph: **same node and edge ids** as
    /// `g`, with dead edges at `+inf` cost (Dijkstra never relaxes
    /// them) and degraded edges at their inflated cost. For a healthy
    /// view the copy is cost-identical to `g`, so callers usually skip
    /// the copy entirely when [`DegradedView::is_healthy`].
    pub fn apply(&self, g: &Graph) -> Graph {
        let mut out = Graph::with_nodes(g.num_nodes());
        for (i, e) in g.edges().iter().enumerate() {
            out.add_edge(e.u, e.v, self.edge_cost(g, EdgeId(i)))
                .expect("copied edge is valid");
        }
        out
    }

    /// The live subgraph with dead edges *removed* (edge ids are
    /// re-assigned) — use for connectivity checks, not routing.
    pub fn live_graph(&self, g: &Graph) -> Graph {
        g.without_edges(&self.dead_edges(g))
    }

    /// Whether the effective cost of `e` differs between `self` and
    /// `other` (liveness flip or degradation change).
    pub fn edge_changed(&self, other: &DegradedView, g: &Graph, e: EdgeId) -> bool {
        let a = self.edge_live(g, e);
        let b = other.edge_live(g, e);
        a != b || (a && self.degrade[e.0] != other.degrade[e.0])
    }

    /// Whether moving from `prev` to `self` made any edge *better* —
    /// a dead link revived or a degradation eased. Improvements can
    /// create shortcuts for trees that never touched the changed edge,
    /// so they force a full shortest-path rebuild; pure deteriorations
    /// only invalidate trees that traverse a changed edge.
    pub fn has_improvement_over(&self, prev: &DegradedView, g: &Graph) -> bool {
        (0..g.num_edges()).map(EdgeId).any(|e| {
            let now = self.edge_cost(g, e);
            let was = prev.edge_cost(g, e);
            now < was
        })
    }

    /// Whether a shortest-path tree computed under `prev` must be
    /// rebuilt under `self`: its source crashed/recovered, or the tree
    /// traverses an edge whose effective cost changed. Trees that dodge
    /// every changed edge stay valid as long as no edge *improved* (see
    /// [`DegradedView::has_improvement_over`]).
    pub fn invalidates_tree(
        &self,
        prev: &DegradedView,
        g: &Graph,
        tree: &ShortestPathTree,
    ) -> bool {
        if self.node_live(tree.source()) != prev.node_live(tree.source()) {
            return true;
        }
        tree.tree_edges().any(|e| self.edge_changed(prev, g, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        // 0-1-2-3-0 ring plus diagonal 0-2.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(3), NodeId(0), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
        g
    }

    #[test]
    fn empty_schedule_is_healthy() {
        let g = square();
        let s = FaultSchedule::empty();
        assert!(s.is_trivial());
        assert_eq!(s.num_epochs(), 1);
        let v = s.view_at(&g, 0);
        assert!(v.is_healthy());
        for e in 0..g.num_edges() {
            assert_eq!(
                v.edge_cost(&g, EdgeId(e)).to_bits(),
                g.edge(EdgeId(e)).cost.to_bits()
            );
        }
    }

    #[test]
    fn cumulative_epoch_replay() {
        let g = square();
        let s = FaultSchedule::new(3)
            .with(0, Fault::LinkDown(EdgeId(0)))
            .with(1, Fault::NodeCrash(NodeId(3)))
            .with(2, Fault::LinkUp(EdgeId(0)));
        let v0 = s.view_at(&g, 0);
        assert!(!v0.edge_live(&g, EdgeId(0)));
        assert!(v0.node_live(NodeId(3)));
        let v1 = s.view_at(&g, 1);
        assert!(!v1.edge_live(&g, EdgeId(0)));
        assert!(!v1.node_live(NodeId(3)));
        // Node 3 crash kills its incident edges 2 and 3.
        assert!(!v1.edge_live(&g, EdgeId(2)));
        assert!(!v1.edge_live(&g, EdgeId(3)));
        let v2 = s.view_at(&g, 2);
        assert!(v2.edge_live(&g, EdgeId(0)));
        assert!(!v2.node_live(NodeId(3)));
        let views = s.views(&g);
        assert_eq!(views.len(), 3);
        assert_eq!(views[0], v0);
        assert_eq!(views[1], v1);
        assert_eq!(views[2], v2);
    }

    #[test]
    fn degradation_scales_cost() {
        let g = square();
        let s = FaultSchedule::new(2)
            .with(
                0,
                Fault::LinkDegrade {
                    edge: EdgeId(1),
                    factor: 3.0,
                },
            )
            .with(1, Fault::LinkRestore(EdgeId(1)));
        let v0 = s.view_at(&g, 0);
        assert!(v0.edge_degraded(EdgeId(1)));
        assert_eq!(v0.edge_cost(&g, EdgeId(1)), 3.0);
        let v1 = s.view_at(&g, 1);
        assert!(v1.is_healthy());
        assert_eq!(v1.edge_cost(&g, EdgeId(1)), 1.0);
    }

    #[test]
    fn apply_preserves_ids_and_kills_dead_edges() {
        let g = square();
        let s = FaultSchedule::new(1).with(0, Fault::LinkDown(EdgeId(0)));
        let v = s.view_at(&g, 0);
        let d = v.apply(&g);
        assert_eq!(d.num_nodes(), g.num_nodes());
        assert_eq!(d.num_edges(), g.num_edges());
        assert!(d.edge(EdgeId(0)).cost.is_infinite());
        assert_eq!(d.edge(EdgeId(1)).cost, 1.0);
        // Dijkstra on the applied graph routes around the dead edge:
        // 0-3-2-1 along the ring instead of the direct hop.
        let spt = ShortestPathTree::compute(&d, NodeId(0));
        assert_eq!(spt.distance(NodeId(1)), 3.0);
        // live_graph drops the edge outright.
        assert_eq!(v.live_graph(&g).num_edges(), g.num_edges() - 1);
    }

    #[test]
    fn random_schedule_is_seed_deterministic() {
        let g = square();
        let model = FaultModel {
            epochs: 6,
            link_fail: 0.3,
            node_crash: 0.2,
            degrade: 0.3,
            ..FaultModel::default()
        };
        let a = FaultSchedule::random(&g, &model, 7);
        let b = FaultSchedule::random(&g, &model, 7);
        for k in 0..a.num_epochs() {
            assert_eq!(a.faults_at(k), b.faults_at(k));
        }
        let c = FaultSchedule::random(&g, &model, 8);
        let differs = (0..a.num_epochs()).any(|k| a.faults_at(k) != c.faults_at(k));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn random_schedule_respects_protected_nodes() {
        let g = square();
        let model = FaultModel {
            epochs: 20,
            node_crash: 0.9,
            node_recover: 0.1,
            protected: vec![NodeId(0)],
            ..FaultModel::default()
        };
        let s = FaultSchedule::random(&g, &model, 3);
        for k in 0..s.num_epochs() {
            assert!(s.view_at(&g, k).node_live(NodeId(0)));
        }
    }

    #[test]
    fn improvement_detection_drives_invalidation() {
        let g = square();
        let down = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(4)))
            .view_at(&g, 0);
        let healthy = DegradedView::healthy(&g);
        // Failing an edge is not an improvement; reviving it is.
        assert!(!down.has_improvement_over(&healthy, &g));
        assert!(healthy.has_improvement_over(&down, &g));

        // A tree that never touches the failed diagonal stays valid.
        let spt = ShortestPathTree::compute(&g, NodeId(1));
        assert!(!down.invalidates_tree(&healthy, &g, &spt));
        // Failing a tree edge invalidates it.
        let tree_edge_down = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(0)))
            .view_at(&g, 0);
        assert!(tree_edge_down.invalidates_tree(&healthy, &g, &spt));
        // Crashing the source invalidates regardless of edges.
        let src_crash = FaultSchedule::new(1)
            .with(0, Fault::NodeCrash(NodeId(1)))
            .view_at(&g, 0);
        assert!(src_crash.invalidates_tree(&healthy, &g, &spt));
    }
}
