//! Network substrate for the ICDCS 2002 subscription-clustering paper:
//! transit-stub topologies, shortest-path routing and the delivery-cost
//! models its evaluation compares (unicast, broadcast, ideal multicast,
//! dense-mode group multicast, application-level multicast).
//!
//! # Example
//!
//! ```
//! use netsim::{Router, Topology, TransitStubParams};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
//! let mut router = Router::new(topo.graph());
//! let nodes: Vec<_> = topo.stub_nodes().take(5).collect();
//! let unicast = router.unicast_cost(nodes[0], nodes[1..].iter().copied());
//! let ideal = router.ideal_multicast_cost(nodes[0], nodes[1..].iter().copied());
//! assert!(ideal <= unicast);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod graph;
mod load;
mod mst;
mod routing;
mod shortest_path;
mod topology;

pub use faults::{DegradedView, Fault, FaultModel, FaultSchedule};
pub use graph::{Edge, EdgeId, Graph, GraphError, NodeId};
pub use load::LoadTracker;
pub use mst::{minimum_spanning_forest_cost, overlay_mst, UnionFind};
pub use routing::{FrozenRouter, Router, RoutingError, ViewTransition};
pub use shortest_path::ShortestPathTree;
pub use topology::{CostRange, NodeKind, Stub, StubId, Topology, TopologyStats, TransitStubParams};
