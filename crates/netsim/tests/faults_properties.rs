//! Property-based tests of degraded routing: for any fault schedule,
//! trees only use live edges, crashed nodes are never delivered to, and
//! degraded paths never beat healthy ones.

use netsim::{
    DegradedView, FaultModel, FaultSchedule, NodeId, Router, ShortestPathTree, Topology,
    TransitStubParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_params() -> TransitStubParams {
    TransitStubParams {
        transit_blocks: 2,
        transit_nodes_per_block: 3,
        stubs_per_transit: 2,
        nodes_per_stub: 4,
        ..Default::default()
    }
}

fn stormy_model(epochs: usize) -> FaultModel {
    FaultModel {
        epochs,
        link_fail: 0.15,
        node_crash: 0.1,
        degrade: 0.2,
        ..FaultModel::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn degraded_trees_use_only_live_edges(seed in 0u64..300, epochs in 1usize..5) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let g = topo.graph();
        let schedule = FaultSchedule::random(g, &stormy_model(epochs), seed ^ 0xfa17);
        for epoch in 0..schedule.num_epochs() {
            let view = schedule.view_at(g, epoch);
            let degraded = view.apply(g);
            for src in topo.stub_nodes().step_by(5) {
                let spt = ShortestPathTree::compute(&degraded, src);
                // Every tree edge is live under the view.
                for e in spt.tree_edges() {
                    prop_assert!(view.edge_live(g, e), "dead edge {e:?} in SPT");
                }
                // Crashed nodes are never reachable, so no scheme ever
                // delivers to them.
                for n in g.nodes() {
                    if !view.node_live(n) && n != src {
                        prop_assert!(!spt.is_reachable(n), "delivered to crashed {n:?}");
                    }
                }
                // Multicast trees are subsets of the SPT: also live-only.
                let members: Vec<NodeId> = topo.stub_nodes().step_by(3).collect();
                for e in spt.multicast_tree_edges(&degraded, members.iter().copied()) {
                    prop_assert!(view.edge_live(g, e));
                }
            }
        }
    }

    #[test]
    fn fallback_cost_never_beats_healthy_path(seed in 0u64..300, epochs in 1usize..4) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let g = topo.graph();
        let schedule = FaultSchedule::random(g, &stormy_model(epochs), seed ^ 0xbeef);
        let view = schedule.view_at(g, schedule.num_epochs() - 1);
        let degraded = view.apply(g);
        let src = NodeId(0);
        let healthy = ShortestPathTree::compute(g, src);
        let broken = ShortestPathTree::compute(&degraded, src);
        // Failures and degradations only remove or inflate edges, so
        // the per-member unicast fallback pays at least the healthy
        // shortest-path cost.
        for n in g.nodes() {
            prop_assert!(
                broken.distance(n) >= healthy.distance(n) - 1e-9,
                "degraded {} < healthy {} for {n:?}",
                broken.distance(n),
                healthy.distance(n)
            );
        }
    }

    #[test]
    fn incremental_invalidation_matches_cold_recompute(seed in 0u64..200, epochs in 2usize..5) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let g = topo.graph();
        let schedule = FaultSchedule::random(g, &stormy_model(epochs), seed ^ 0x5eed);
        let sources: Vec<NodeId> = topo.stub_nodes().step_by(7).collect();
        let targets: Vec<NodeId> = topo.stub_nodes().step_by(4).collect();
        let mut warm = Router::new(g);
        // Warm everything once so later epochs exercise tree retention.
        for &s in &sources {
            let _ = warm.spt(s);
        }
        for epoch in 0..schedule.num_epochs() {
            let view = schedule.view_at(g, epoch);
            warm.set_view(view.clone());
            let degraded = view.apply(g);
            let mut cold = Router::new(&degraded);
            for &s in &sources {
                for &t in &targets {
                    prop_assert_eq!(
                        warm.distance(s, t).to_bits(),
                        cold.distance(s, t).to_bits(),
                        "epoch {} src {:?} dst {:?}", epoch, s, t
                    );
                }
                let warm_cost = warm.group_multicast_cost(s, &targets);
                let cold_cost = cold.group_multicast_cost(s, &targets);
                prop_assert_eq!(warm_cost.to_bits(), cold_cost.to_bits());
            }
        }
    }

    #[test]
    fn healthy_view_is_transparent(seed in 0u64..200) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let g = topo.graph();
        let view = DegradedView::healthy(g);
        prop_assert!(view.is_healthy());
        let applied = view.apply(g);
        for (a, b) in g.edges().iter().zip(applied.edges()) {
            prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }
}
