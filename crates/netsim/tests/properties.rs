//! Property-based tests of the routing substrate on random topologies.

use netsim::{NodeId, Router, ShortestPathTree, Topology, TransitStubParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_params() -> TransitStubParams {
    TransitStubParams {
        transit_blocks: 2,
        transit_nodes_per_block: 3,
        stubs_per_transit: 2,
        nodes_per_stub: 4,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn triangle_inequality_over_shortest_paths(seed in 0u64..500, a in 0usize..60, b in 0usize..60, c in 0usize..60) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let n = topo.num_nodes();
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        let mut r = Router::new(topo.graph());
        let dab = r.distance(a, b);
        let dbc = r.distance(b, c);
        let dac = r.distance(a, c);
        prop_assert!(dac <= dab + dbc + 1e-9, "{dac} > {dab} + {dbc}");
        // Symmetry on undirected graphs.
        prop_assert!((dab - r.distance(b, a)).abs() < 1e-9);
    }

    #[test]
    fn multicast_tree_bounds(seed in 0u64..500, pick in 1usize..20) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let members: Vec<NodeId> = nodes.iter().step_by(pick).copied().collect();
        let src = nodes[0];
        let mut r = Router::new(topo.graph());
        let uni = r.unicast_cost(src, members.iter().copied());
        let tree = r.group_multicast_cost(src, &members);
        let bcast = r.broadcast_cost(src);
        // Shared tree never costs more than per-receiver unicast...
        prop_assert!(tree <= uni + 1e-9, "tree {tree} > unicast {uni}");
        // ...and never more than flooding everyone.
        prop_assert!(tree <= bcast + 1e-9, "tree {tree} > broadcast {bcast}");
        // The farthest member's distance lower-bounds the tree.
        let spt = ShortestPathTree::compute(topo.graph(), src);
        let far = members
            .iter()
            .map(|&m| spt.distance(m))
            .fold(0.0f64, f64::max);
        prop_assert!(tree >= far - 1e-9, "tree {tree} < farthest member {far}");
    }

    #[test]
    fn app_multicast_decomposition(seed in 0u64..500, pick in 1usize..10) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let members: Vec<NodeId> = nodes.iter().step_by(pick + 1).copied().collect();
        let src = nodes[1 % nodes.len()];
        let mut r = Router::new(topo.graph());
        // app_multicast_cost == entry_cost + overlay_mst_cost.
        let combined = r.app_multicast_cost(src, &members);
        let split = r.entry_cost(src, &members) + r.overlay_mst_cost(&members);
        prop_assert!((combined - split).abs() < 1e-9);
        // Sound bounds: the overlay pays at least its entry hop and at
        // least its member tree. (It is NOT always dearer than the
        // dense-mode pruned SPT: the SPT is no Steiner tree, and
        // members clustered far from the publisher can be cheaper to
        // serve member-to-member — proptest found such a case.)
        prop_assert!(combined >= r.entry_cost(src, &members) - 1e-9);
        prop_assert!(combined >= r.overlay_mst_cost(&members) - 1e-9);
    }

    #[test]
    fn adding_targets_never_reduces_costs(seed in 0u64..200) {
        let topo = Topology::generate(&small_params(), &mut StdRng::seed_from_u64(seed));
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let src = nodes[0];
        let mut r = Router::new(topo.graph());
        let mut prev_tree = 0.0f64;
        let mut prev_uni = 0.0f64;
        for take in [2usize, 4, 8, 16] {
            let members: Vec<NodeId> = nodes.iter().take(take).copied().collect();
            let tree = r.group_multicast_cost(src, &members);
            let uni = r.unicast_cost(src, members.iter().copied());
            prop_assert!(tree >= prev_tree - 1e-9);
            prop_assert!(uni >= prev_uni - 1e-9);
            prev_tree = tree;
            prev_uni = uni;
        }
    }
}
