//! Failure injection: link failures must degrade routing gracefully —
//! costs grow, unreachable receivers are skipped, nothing panics.

use netsim::{Graph, NodeId, Router, ShortestPathTree, Topology, TransitStubParams};
use rand::prelude::*;

#[test]
fn removing_a_detour_edge_raises_costs_monotonically() {
    // Diamond: 0-1 (1), 1-3 (1), 0-2 (5), 2-3 (5): shortest 0→3 is 2.
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    let fast = g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
    g.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
    g.add_edge(NodeId(2), NodeId(3), 5.0).unwrap();
    let mut r = Router::new(&g);
    assert_eq!(r.distance(NodeId(0), NodeId(3)), 2.0);
    // Fail the fast path: traffic reroutes over the expensive side.
    let degraded = g.without_edges(&[fast]);
    let mut r = Router::new(&degraded);
    assert_eq!(r.distance(NodeId(0), NodeId(3)), 10.0);
}

#[test]
fn partition_leaves_unreachable_receivers_out_silently() {
    // Path 0-1-2; failing (1,2) partitions node 2.
    let mut g = Graph::with_nodes(3);
    g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    let cut = g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
    let degraded = g.without_edges(&[cut]);
    let spt = ShortestPathTree::compute(&degraded, NodeId(0));
    assert!(!spt.is_reachable(NodeId(2)));
    let mut r = Router::new(&degraded);
    // Unicast and multicast both skip the unreachable receiver instead
    // of failing; the reachable one is still served.
    assert_eq!(r.unicast_cost(NodeId(0), [NodeId(1), NodeId(2)]), 1.0);
    assert_eq!(
        r.group_multicast_cost(NodeId(0), &[NodeId(1), NodeId(2)]),
        1.0
    );
    assert_eq!(r.broadcast_cost(NodeId(0)), 1.0);
}

#[test]
fn random_non_partitioning_failures_never_reduce_costs() {
    let mut rng = StdRng::seed_from_u64(55);
    let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
    let g = topo.graph();
    let nodes: Vec<NodeId> = topo.stub_nodes().collect();
    let members: Vec<NodeId> = nodes.iter().step_by(11).copied().collect();
    let src = nodes[0];
    let mut base_router = Router::new(g);
    let base_uni = base_router.unicast_cost(src, members.iter().copied());
    let base_tree = base_router.group_multicast_cost(src, &members);
    let mut tested = 0;
    for _ in 0..30 {
        let victim = netsim::EdgeId(rng.gen_range(0..g.num_edges()));
        let degraded = g.without_edges(&[victim]);
        if !degraded.is_connected() {
            continue; // partitions change semantics, covered above
        }
        tested += 1;
        let mut r = Router::new(&degraded);
        let uni = r.unicast_cost(src, members.iter().copied());
        let tree = r.group_multicast_cost(src, &members);
        assert!(uni >= base_uni - 1e-9, "unicast improved after failure");
        // The pruned-SPT tree uses shortest paths, which only lengthen.
        assert!(
            tree >= base_tree - 1e-9,
            "multicast tree improved after failure"
        );
    }
    assert!(tested > 5, "too few non-partitioning failures sampled");
}

#[test]
fn without_edges_validates_and_preserves_nodes() {
    let mut g = Graph::with_nodes(3);
    let e = g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    let h = g.without_edges(&[e]);
    assert_eq!(h.num_nodes(), 3);
    assert_eq!(h.num_edges(), 0);
    // Removing nothing clones the graph.
    let same = g.without_edges(&[]);
    assert_eq!(same.num_edges(), 1);
}
