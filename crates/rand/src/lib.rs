//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the handful of entry points it actually calls: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256\*\* seeded through splitmix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine: nothing in the
//! repo depends on the exact stream, only on determinism for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded with splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128).wrapping_sub(self.start as i128);
                assert!(span > 0, "empty integer range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128) - (lo as i128) + 1;
                assert!(span > 0, "empty integer range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator (xoshiro256\*\*).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&x));
            let n: usize = rng.gen_range(1..10);
            assert!((1..10).contains(&n));
            let m: i64 = rng.gen_range(0..=5);
            assert!((0..=5).contains(&m));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn choose_and_bool_behave() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
