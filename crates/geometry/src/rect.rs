//! Axis-aligned rectangles: the subscription primitive.
//!
//! A content-based subscription is the conjunction of per-attribute
//! interval predicates, which is exactly an axis-aligned, half-open
//! rectangle in the event space `Ω` (Section 1 of the paper). A published
//! event matches a subscription iff the event point lies in the rectangle.

use std::fmt;

use crate::interval::Interval;
use crate::point::Point;

/// How two rectangles relate under *set* containment — the shared
/// covering predicate used by subscription pruning and aggregation.
///
/// The classification is over the point sets the rectangles denote, so
/// every empty rectangle (any dimension with `lo >= hi`) is the empty
/// set regardless of which dimension is degenerate or what its bounds
/// are: two empty rectangles are [`Covering::Equal`] even when their
/// interval bounds differ, and an empty rectangle is covered by
/// everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Covering {
    /// The two rectangles denote the same point set.
    Equal,
    /// `self` strictly contains `other`.
    Covers,
    /// `other` strictly contains `self`.
    CoveredBy,
    /// Neither contains the other.
    Incomparable,
}

/// An axis-aligned rectangle in `Ω`: one half-open [`Interval`] per
/// dimension. Dimensions may be unbounded (a `*` predicate).
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
///
/// // name = 7, 90 < price <= 110, volume > 10000, any 4th attribute
/// let sub = Rect::new(vec![
///     Interval::equals_int(7),
///     Interval::new(90.0, 110.0)?,
///     Interval::greater_than(10_000.0),
///     Interval::all(),
/// ]);
/// assert!(sub.contains(&Point::new(vec![7.0, 100.0, 20_000.0, 3.0])));
/// assert!(!sub.contains(&Point::new(vec![8.0, 100.0, 20_000.0, 3.0])));
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    intervals: Vec<Interval>,
}

impl Rect {
    /// Creates a rectangle from one interval per dimension.
    pub fn new(intervals: Vec<Interval>) -> Self {
        Rect { intervals }
    }

    /// The all-of-space rectangle in `dim` dimensions (every predicate `*`).
    pub fn all(dim: usize) -> Self {
        Rect {
            intervals: vec![Interval::all(); dim],
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.intervals.len()
    }

    /// Per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dim()`.
    pub fn interval(&self, d: usize) -> &Interval {
        &self.intervals[d]
    }

    /// Whether the rectangle is empty (some dimension is empty).
    pub fn is_empty(&self) -> bool {
        self.intervals.iter().any(Interval::is_empty)
    }

    /// Whether every dimension is bounded.
    pub fn is_bounded(&self) -> bool {
        self.intervals.iter().all(Interval::is_bounded)
    }

    /// Whether the event point lies inside the rectangle.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(self.dim(), p.dim(), "dimension mismatch");
        self.intervals
            .iter()
            .enumerate()
            .all(|(d, iv)| iv.contains(p[d]))
    }

    /// Whether `other` is entirely inside `self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        other.is_empty()
            || self
                .intervals
                .iter()
                .zip(other.intervals.iter())
                .all(|(a, b)| a.contains_interval(b))
    }

    /// Classifies the containment relation between `self` and `other`
    /// in one pass over the dimensions (each interval pair is compared
    /// exactly once, in both directions simultaneously — no duplicated
    /// float comparisons, unlike two `contains_rect` calls).
    ///
    /// Empty rectangles are handled as point sets: any rectangle with a
    /// degenerate (zero-width or inverted) dimension is the empty set,
    /// so two empty rectangles are [`Covering::Equal`] and an empty
    /// rectangle is [`Covering::CoveredBy`] any non-empty one.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn classify_covering(&self, other: &Rect) -> Covering {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        match (self.is_empty(), other.is_empty()) {
            (true, true) => return Covering::Equal,
            (true, false) => return Covering::CoveredBy,
            (false, true) => return Covering::Covers,
            (false, false) => {}
        }
        let mut covers = true;
        let mut covered = true;
        for (a, b) in self.intervals.iter().zip(other.intervals.iter()) {
            covers &= a.contains_interval(b);
            covered &= b.contains_interval(a);
            if !covers && !covered {
                return Covering::Incomparable;
            }
        }
        match (covers, covered) {
            (true, true) => Covering::Equal,
            (true, false) => Covering::Covers,
            (false, true) => Covering::CoveredBy,
            (false, false) => Covering::Incomparable,
        }
    }

    /// Whether the two rectangles share at least one point.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.intervals
            .iter()
            .zip(other.intervals.iter())
            .all(|(a, b)| a.intersects(b))
    }

    /// The intersection rectangle, or `None` when disjoint.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let mut ivs = Vec::with_capacity(self.dim());
        for (a, b) in self.intervals.iter().zip(other.intervals.iter()) {
            ivs.push(a.intersection(b)?);
        }
        Some(Rect { intervals: ivs })
    }

    /// The smallest rectangle covering both inputs (bounding hull).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn hull(&self, other: &Rect) -> Rect {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Rect {
            intervals: self
                .intervals
                .iter()
                .zip(other.intervals.iter())
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// Volume of the rectangle; `+inf` when unbounded, `0` when empty.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(Interval::length).product()
    }

    /// Clips the rectangle to `bounds`, returning `None` when the clipped
    /// rectangle is empty. Used to rasterize unbounded subscriptions onto
    /// a finite grid.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn clip(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect2(a: (f64, f64), b: (f64, f64)) -> Rect {
        Rect::new(vec![
            Interval::new(a.0, a.1).unwrap(),
            Interval::new(b.0, b.1).unwrap(),
        ])
    }

    #[test]
    fn contains_point_half_open() {
        let r = rect2((0.0, 10.0), (0.0, 10.0));
        assert!(r.contains(&Point::new(vec![5.0, 10.0])));
        assert!(!r.contains(&Point::new(vec![0.0, 5.0]))); // open left
        assert!(!r.contains(&Point::new(vec![5.0, 10.5])));
    }

    #[test]
    fn all_rect_contains_everything() {
        let r = Rect::all(3);
        assert!(r.contains(&Point::new(vec![-1e300, 0.0, 1e300])));
        assert!(!r.is_bounded());
        assert!(!r.is_empty());
    }

    #[test]
    fn intersection_semantics() {
        let a = rect2((0.0, 5.0), (0.0, 5.0));
        let b = rect2((3.0, 8.0), (4.0, 9.0));
        let c = a.intersection(&b).unwrap();
        assert_eq!(c, rect2((3.0, 5.0), (4.0, 5.0)));
        // Disjoint along dimension 1.
        let d = rect2((3.0, 8.0), (5.0, 9.0));
        assert!(a.intersection(&d).is_none());
        assert!(!a.intersects(&d));
    }

    #[test]
    fn containment() {
        let outer = rect2((0.0, 10.0), (0.0, 10.0));
        let inner = rect2((1.0, 2.0), (3.0, 4.0));
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        // Empty rect contained everywhere.
        let empty = rect2((5.0, 5.0), (0.0, 1.0));
        assert!(empty.is_empty());
        assert!(inner.contains_rect(&empty));
    }

    #[test]
    fn classify_covering_matches_double_containment() {
        let outer = rect2((0.0, 10.0), (0.0, 10.0));
        let inner = rect2((1.0, 2.0), (3.0, 4.0));
        let other = rect2((5.0, 15.0), (3.0, 4.0));
        assert_eq!(outer.classify_covering(&inner), Covering::Covers);
        assert_eq!(inner.classify_covering(&outer), Covering::CoveredBy);
        assert_eq!(outer.classify_covering(&outer.clone()), Covering::Equal);
        assert_eq!(inner.classify_covering(&other), Covering::Incomparable);
        // The classification agrees with contains_rect in both directions.
        for (a, b) in [(&outer, &inner), (&inner, &other), (&outer, &outer)] {
            let c = a.classify_covering(b);
            assert_eq!(
                a.contains_rect(b),
                matches!(c, Covering::Equal | Covering::Covers)
            );
            assert_eq!(
                b.contains_rect(a),
                matches!(c, Covering::Equal | Covering::CoveredBy)
            );
        }
    }

    #[test]
    fn classify_covering_treats_all_empties_as_one_set() {
        // Degenerate zero-width dimensions in *different* positions and
        // with different bounds: all denote the empty set.
        let e1 = rect2((5.0, 5.0), (0.0, 10.0));
        let e2 = rect2((0.0, 10.0), (7.0, 7.0));
        let e3 = rect2((2.0, 2.0), (2.0, 2.0));
        assert_eq!(e1.classify_covering(&e2), Covering::Equal);
        assert_eq!(e2.classify_covering(&e3), Covering::Equal);
        let full = rect2((0.0, 10.0), (0.0, 10.0));
        assert_eq!(e1.classify_covering(&full), Covering::CoveredBy);
        assert_eq!(full.classify_covering(&e1), Covering::Covers);
    }

    #[test]
    fn hull_and_volume() {
        let a = rect2((0.0, 2.0), (0.0, 2.0));
        let b = rect2((4.0, 6.0), (1.0, 3.0));
        let h = a.hull(&b);
        assert_eq!(h, rect2((0.0, 6.0), (0.0, 3.0)));
        assert_eq!(a.volume(), 4.0);
        assert!(Rect::all(2).volume().is_infinite());
        let empty = rect2((1.0, 1.0), (0.0, 9.0));
        assert_eq!(empty.volume(), 0.0);
    }

    #[test]
    fn clip_unbounded_subscription() {
        let sub = Rect::new(vec![Interval::greater_than(5.0), Interval::all()]);
        let bounds = rect2((0.0, 20.0), (0.0, 20.0));
        let clipped = sub.clip(&bounds).unwrap();
        assert_eq!(clipped, rect2((5.0, 20.0), (0.0, 20.0)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let r = Rect::all(2);
        let _ = r.contains(&Point::new(vec![0.0]));
    }
}
