//! Axis-aligned rectangles: the subscription primitive.
//!
//! A content-based subscription is the conjunction of per-attribute
//! interval predicates, which is exactly an axis-aligned, half-open
//! rectangle in the event space `Ω` (Section 1 of the paper). A published
//! event matches a subscription iff the event point lies in the rectangle.

use std::fmt;

use crate::interval::Interval;
use crate::point::Point;

/// An axis-aligned rectangle in `Ω`: one half-open [`Interval`] per
/// dimension. Dimensions may be unbounded (a `*` predicate).
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
///
/// // name = 7, 90 < price <= 110, volume > 10000, any 4th attribute
/// let sub = Rect::new(vec![
///     Interval::equals_int(7),
///     Interval::new(90.0, 110.0)?,
///     Interval::greater_than(10_000.0),
///     Interval::all(),
/// ]);
/// assert!(sub.contains(&Point::new(vec![7.0, 100.0, 20_000.0, 3.0])));
/// assert!(!sub.contains(&Point::new(vec![8.0, 100.0, 20_000.0, 3.0])));
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    intervals: Vec<Interval>,
}

impl Rect {
    /// Creates a rectangle from one interval per dimension.
    pub fn new(intervals: Vec<Interval>) -> Self {
        Rect { intervals }
    }

    /// The all-of-space rectangle in `dim` dimensions (every predicate `*`).
    pub fn all(dim: usize) -> Self {
        Rect {
            intervals: vec![Interval::all(); dim],
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.intervals.len()
    }

    /// Per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dim()`.
    pub fn interval(&self, d: usize) -> &Interval {
        &self.intervals[d]
    }

    /// Whether the rectangle is empty (some dimension is empty).
    pub fn is_empty(&self) -> bool {
        self.intervals.iter().any(Interval::is_empty)
    }

    /// Whether every dimension is bounded.
    pub fn is_bounded(&self) -> bool {
        self.intervals.iter().all(Interval::is_bounded)
    }

    /// Whether the event point lies inside the rectangle.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(self.dim(), p.dim(), "dimension mismatch");
        self.intervals
            .iter()
            .enumerate()
            .all(|(d, iv)| iv.contains(p[d]))
    }

    /// Whether `other` is entirely inside `self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        other.is_empty()
            || self
                .intervals
                .iter()
                .zip(other.intervals.iter())
                .all(|(a, b)| a.contains_interval(b))
    }

    /// Whether the two rectangles share at least one point.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.intervals
            .iter()
            .zip(other.intervals.iter())
            .all(|(a, b)| a.intersects(b))
    }

    /// The intersection rectangle, or `None` when disjoint.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let mut ivs = Vec::with_capacity(self.dim());
        for (a, b) in self.intervals.iter().zip(other.intervals.iter()) {
            ivs.push(a.intersection(b)?);
        }
        Some(Rect { intervals: ivs })
    }

    /// The smallest rectangle covering both inputs (bounding hull).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn hull(&self, other: &Rect) -> Rect {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Rect {
            intervals: self
                .intervals
                .iter()
                .zip(other.intervals.iter())
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// Volume of the rectangle; `+inf` when unbounded, `0` when empty.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(Interval::length).product()
    }

    /// Clips the rectangle to `bounds`, returning `None` when the clipped
    /// rectangle is empty. Used to rasterize unbounded subscriptions onto
    /// a finite grid.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn clip(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect2(a: (f64, f64), b: (f64, f64)) -> Rect {
        Rect::new(vec![
            Interval::new(a.0, a.1).unwrap(),
            Interval::new(b.0, b.1).unwrap(),
        ])
    }

    #[test]
    fn contains_point_half_open() {
        let r = rect2((0.0, 10.0), (0.0, 10.0));
        assert!(r.contains(&Point::new(vec![5.0, 10.0])));
        assert!(!r.contains(&Point::new(vec![0.0, 5.0]))); // open left
        assert!(!r.contains(&Point::new(vec![5.0, 10.5])));
    }

    #[test]
    fn all_rect_contains_everything() {
        let r = Rect::all(3);
        assert!(r.contains(&Point::new(vec![-1e300, 0.0, 1e300])));
        assert!(!r.is_bounded());
        assert!(!r.is_empty());
    }

    #[test]
    fn intersection_semantics() {
        let a = rect2((0.0, 5.0), (0.0, 5.0));
        let b = rect2((3.0, 8.0), (4.0, 9.0));
        let c = a.intersection(&b).unwrap();
        assert_eq!(c, rect2((3.0, 5.0), (4.0, 5.0)));
        // Disjoint along dimension 1.
        let d = rect2((3.0, 8.0), (5.0, 9.0));
        assert!(a.intersection(&d).is_none());
        assert!(!a.intersects(&d));
    }

    #[test]
    fn containment() {
        let outer = rect2((0.0, 10.0), (0.0, 10.0));
        let inner = rect2((1.0, 2.0), (3.0, 4.0));
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        // Empty rect contained everywhere.
        let empty = rect2((5.0, 5.0), (0.0, 1.0));
        assert!(empty.is_empty());
        assert!(inner.contains_rect(&empty));
    }

    #[test]
    fn hull_and_volume() {
        let a = rect2((0.0, 2.0), (0.0, 2.0));
        let b = rect2((4.0, 6.0), (1.0, 3.0));
        let h = a.hull(&b);
        assert_eq!(h, rect2((0.0, 6.0), (0.0, 3.0)));
        assert_eq!(a.volume(), 4.0);
        assert!(Rect::all(2).volume().is_infinite());
        let empty = rect2((1.0, 1.0), (0.0, 9.0));
        assert_eq!(empty.volume(), 0.0);
    }

    #[test]
    fn clip_unbounded_subscription() {
        let sub = Rect::new(vec![Interval::greater_than(5.0), Interval::all()]);
        let bounds = rect2((0.0, 20.0), (0.0, 20.0));
        let clipped = sub.clip(&bounds).unwrap();
        assert_eq!(clipped, rect2((5.0, 20.0), (0.0, 20.0)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let r = Rect::all(2);
        let _ = r.contains(&Point::new(vec![0.0]));
    }
}
