//! Geometry of the publication event space `Ω ⊆ R^N`.
//!
//! This crate provides the geometric substrate of the subscription
//! clustering system from *"Clustering Algorithms for Content-Based
//! Publication-Subscription Systems"* (Riabov, Liu, Wolf, Yu, Zhang —
//! ICDCS 2002):
//!
//! * [`Interval`] — half-open `(lo, hi]`, possibly unbounded, the
//!   normal form of every content predicate;
//! * [`Point`] — a published event;
//! * [`Rect`] — an axis-aligned rectangle, the normal form of a
//!   subscription (a conjunction of interval predicates);
//! * [`Grid`] — a regular grid over a finite region of `Ω`, the basis
//!   of the grid-based clustering framework.
//!
//! # Example
//!
//! ```
//! use geometry::{Grid, Interval, Point, Rect};
//!
//! // A stock subscription: name = 7, 90 < price <= 110, volume > 10_000.
//! let sub = Rect::new(vec![
//!     Interval::equals_int(7),
//!     Interval::new(90.0, 110.0)?,
//!     Interval::greater_than(10_000.0),
//! ]);
//! let trade = Point::new(vec![7.0, 101.25, 12_000.0]);
//! assert!(sub.contains(&trade));
//! # Ok::<(), geometry::IntervalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod grid;
mod interval;
mod point;
mod rect;

pub use decompose::decompose_multirange;
pub use grid::{CellId, Grid, GridError};
pub use interval::{Interval, IntervalError};
pub use point::Point;
pub use rect::{Covering, Rect};
