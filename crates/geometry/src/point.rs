//! Points in the publication event space `Ω ⊆ R^N`.

use std::fmt;
use std::ops::Index;

/// A published event: a point in the `N`-dimensional event space.
///
/// # Examples
///
/// ```
/// use geometry::Point;
///
/// let p = Point::new(vec![1.0, 9.5, 12.0, 3.0]);
/// assert_eq!(p.dim(), 4);
/// assert_eq!(p[1], 9.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is NaN (events must be well-defined values).
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(
            coords.iter().all(|c| !c.is_nan()),
            "event coordinate was NaN"
        );
        Point { coords }
    }

    /// Number of dimensions (attributes).
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Borrow the raw coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Consume the point, returning its coordinates.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p[2], 3.0);
        assert_eq!(p.clone().into_coords(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Point::new(vec![0.0, f64::NAN]);
    }

    #[test]
    fn from_vec_and_display() {
        let p: Point = vec![1.5, -2.0].into();
        assert_eq!(format!("{p}"), "(1.5, -2)");
    }
}
