//! Half-open, possibly unbounded intervals on the real line.
//!
//! The paper assumes (Section 1) that all subscription predicates can be
//! normalized into intervals that are *open on the left and closed on the
//! right*, i.e. `(lo, hi]`, so that adjacent intervals "fit together"
//! without overlap. Unbounded ends are represented with IEEE infinities,
//! which lets a single representation cover all four predicate shapes used
//! by the workload generators:
//!
//! * `(-inf, +inf)` — a "don't care" (`*`) predicate,
//! * `(n, +inf)`    — a left-ended (greater-than) predicate,
//! * `(-inf, n]`    — a right-ended (at-most) predicate,
//! * `(n1, n2]`     — a two-sided interval predicate.

use std::fmt;

/// A half-open interval `(lo, hi]` over `f64`, possibly unbounded on
/// either side.
///
/// A point `x` is contained iff `lo < x && x <= hi`.
///
/// # Examples
///
/// ```
/// use geometry::Interval;
///
/// let i = Interval::new(1.0, 3.0).unwrap();
/// assert!(!i.contains(1.0)); // open on the left
/// assert!(i.contains(3.0));  // closed on the right
/// assert!(Interval::all().contains(f64::MAX));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// Error returned when constructing an [`Interval`] from invalid bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalError {
    /// `lo` or `hi` was NaN.
    NotANumber,
    /// `lo > hi`, which would denote an empty set; use an explicit
    /// emptiness check instead of constructing empty intervals.
    Inverted,
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::NotANumber => write!(f, "interval bound was NaN"),
            IntervalError::Inverted => write!(f, "interval lower bound exceeds upper bound"),
        }
    }
}

impl std::error::Error for IntervalError {}

impl Interval {
    /// Creates the interval `(lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::NotANumber`] if either bound is NaN and
    /// [`IntervalError::Inverted`] if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, IntervalError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        if lo > hi {
            return Err(IntervalError::Inverted);
        }
        Ok(Interval { lo, hi })
    }

    /// Creates `(lo, hi]` from two unordered endpoints, sorting if needed.
    ///
    /// This mirrors the paper's Section 3 generator: "two random numbers
    /// ... are generated, sorted if needed, and assigned to the ends of
    /// the preference interval".
    ///
    /// # Panics
    ///
    /// Panics if either value is NaN.
    pub fn from_unordered(a: f64, b: f64) -> Self {
        assert!(!a.is_nan() && !b.is_nan(), "interval bound was NaN");
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// The unbounded interval `(-inf, +inf)`: a "don't care" (`*`) predicate.
    pub fn all() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// A left-ended predicate `(lo, +inf)` ("value strictly greater than").
    ///
    /// # Panics
    ///
    /// Panics if `lo` is NaN.
    pub fn greater_than(lo: f64) -> Self {
        assert!(!lo.is_nan(), "interval bound was NaN");
        Interval {
            lo,
            hi: f64::INFINITY,
        }
    }

    /// A right-ended predicate `(-inf, hi]` ("value at most").
    ///
    /// # Panics
    ///
    /// Panics if `hi` is NaN.
    pub fn at_most(hi: f64) -> Self {
        assert!(!hi.is_nan(), "interval bound was NaN");
        Interval {
            lo: f64::NEG_INFINITY,
            hi,
        }
    }

    /// An equality predicate on an integer-valued attribute, encoded as
    /// the half-open interval `(v-1, v]` that contains exactly the
    /// integer `v`.
    ///
    /// The paper linearizes categorical attributes (stock names, subnet
    /// identifiers) onto the integers; an equality test on such an
    /// attribute is exactly a unit-width half-open interval.
    pub fn equals_int(v: i64) -> Self {
        Interval {
            lo: v as f64 - 1.0,
            hi: v as f64,
        }
    }

    /// Lower (open) bound; `-inf` when unbounded below.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper (closed) bound; `+inf` when unbounded above.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether `x` lies in `(lo, hi]`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo < x && x <= self.hi
    }

    /// Whether the interval is degenerate, i.e. contains no point.
    ///
    /// With the half-open convention, `(a, a]` is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Whether both ends are finite.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Length `hi - lo`; `+inf` for unbounded intervals.
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether this interval and `other` share at least one point.
    ///
    /// With half-open intervals, `(0,1]` and `(1,2]` do *not* intersect.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo.max(other.lo) < self.hi.min(other.hi)
    }

    /// The intersection `(max(lo), min(hi)]`, or `None` if disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// The smallest interval covering both `self` and `other`.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamps the interval to `bounds`, returning `None` when the clipped
    /// interval is empty. Used when rasterizing subscriptions onto a
    /// finite grid.
    pub fn clip(&self, bounds: &Interval) -> Option<Interval> {
        self.intersection(bounds)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(Interval::new(0.0, 1.0).is_ok());
        assert_eq!(Interval::new(1.0, 0.0), Err(IntervalError::Inverted));
        assert_eq!(Interval::new(f64::NAN, 0.0), Err(IntervalError::NotANumber));
        assert_eq!(Interval::new(0.0, f64::NAN), Err(IntervalError::NotANumber));
    }

    #[test]
    fn half_open_semantics() {
        let i = Interval::new(0.0, 10.0).unwrap();
        assert!(!i.contains(0.0));
        assert!(i.contains(0.0001));
        assert!(i.contains(10.0));
        assert!(!i.contains(10.0001));
    }

    #[test]
    fn from_unordered_sorts() {
        let i = Interval::from_unordered(5.0, 2.0);
        assert_eq!(i.lo(), 2.0);
        assert_eq!(i.hi(), 5.0);
    }

    #[test]
    fn unbounded_shapes() {
        assert!(Interval::all().contains(-1e308));
        assert!(Interval::all().contains(1e308));
        assert!(Interval::greater_than(3.0).contains(4.0));
        assert!(!Interval::greater_than(3.0).contains(3.0));
        assert!(Interval::at_most(3.0).contains(3.0));
        assert!(!Interval::at_most(3.0).contains(3.5));
        assert!(!Interval::all().is_bounded());
        assert!(Interval::new(0.0, 1.0).unwrap().is_bounded());
    }

    #[test]
    fn equals_int_contains_exactly_one_integer() {
        let i = Interval::equals_int(7);
        for v in -2..25 {
            assert_eq!(i.contains(v as f64), v == 7, "v={v}");
        }
    }

    #[test]
    fn empty_interval() {
        let i = Interval::new(2.0, 2.0).unwrap();
        assert!(i.is_empty());
        assert!(!i.contains(2.0));
    }

    #[test]
    fn adjacent_intervals_do_not_intersect() {
        let a = Interval::new(0.0, 1.0).unwrap();
        let b = Interval::new(1.0, 2.0).unwrap();
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0.0, 5.0).unwrap();
        let b = Interval::new(3.0, 8.0).unwrap();
        let c = a.intersection(&b).unwrap();
        assert_eq!((c.lo(), c.hi()), (3.0, 5.0));
        let h = a.hull(&b);
        assert_eq!((h.lo(), h.hi()), (0.0, 8.0));
    }

    #[test]
    fn contains_interval_including_empty() {
        let outer = Interval::new(0.0, 10.0).unwrap();
        let inner = Interval::new(2.0, 3.0).unwrap();
        let empty = Interval::new(20.0, 20.0).unwrap();
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.contains_interval(&empty));
        assert!(Interval::all().contains_interval(&outer));
    }

    #[test]
    fn clip_to_bounds() {
        let i = Interval::greater_than(5.0);
        let bounds = Interval::new(0.0, 20.0).unwrap();
        let c = i.clip(&bounds).unwrap();
        assert_eq!((c.lo(), c.hi()), (5.0, 20.0));
        let disjoint = Interval::new(30.0, 40.0).unwrap();
        assert!(disjoint.clip(&bounds).is_none());
    }

    #[test]
    fn length_of_unbounded_is_infinite() {
        assert!(Interval::all().length().is_infinite());
        assert_eq!(Interval::new(1.0, 4.0).unwrap().length(), 3.0);
    }
}
