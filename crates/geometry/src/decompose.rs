//! Decomposition of multi-range subscriptions into rectangles.
//!
//! Section 1 of the paper: content predicates may be *range-based,
//! composed of intervals* — e.g. a "blue chip" category is a union of
//! several stock-name intervals. "By decomposing a subscription with
//! multiple such ranges into multiple subscriptions consisting of
//! single ranges we can see that it is sufficient only to consider
//! intervals, albeit at a cost of more subscriptions."
//!
//! [`decompose_multirange`] performs that decomposition: the cartesian
//! product of the per-dimension interval lists.

use crate::interval::Interval;
use crate::rect::Rect;

/// Decomposes a conjunction of multi-range predicates (one list of
/// acceptable intervals per dimension) into the equivalent set of
/// single-range rectangles.
///
/// Empty intervals are skipped; if some dimension has no non-empty
/// interval the subscription matches nothing and the result is empty.
/// A point matches the original subscription iff it is contained in at
/// least one returned rectangle.
///
/// # Examples
///
/// ```
/// use geometry::{decompose_multirange, Interval, Point};
///
/// // "blue chip" = names {3} ∪ {7}, price 90..110, any volume.
/// let rects = decompose_multirange(&[
///     vec![Interval::equals_int(3), Interval::equals_int(7)],
///     vec![Interval::new(90.0, 110.0)?],
///     vec![Interval::all()],
/// ]);
/// assert_eq!(rects.len(), 2);
/// let ibm_trade = Point::new(vec![7.0, 100.0, 5_000.0]);
/// assert!(rects.iter().any(|r| r.contains(&ibm_trade)));
/// # Ok::<(), geometry::IntervalError>(())
/// ```
pub fn decompose_multirange(dims: &[Vec<Interval>]) -> Vec<Rect> {
    // Filter out empty intervals up front.
    let choices: Vec<Vec<Interval>> = dims
        .iter()
        .map(|ivs| ivs.iter().copied().filter(|iv| !iv.is_empty()).collect())
        .collect();
    if choices.is_empty() || choices.iter().any(|c: &Vec<Interval>| c.is_empty()) {
        return Vec::new();
    }
    let total: usize = choices.iter().map(Vec::len).product();
    let mut out = Vec::with_capacity(total);
    let mut picks = vec![0usize; choices.len()];
    loop {
        out.push(Rect::new(
            picks
                .iter()
                .enumerate()
                .map(|(d, &i)| choices[d][i])
                .collect(),
        ));
        // Odometer increment, last dimension fastest.
        let mut d = choices.len();
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            if picks[d] + 1 < choices[d].len() {
                picks[d] += 1;
                break;
            }
            picks[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn single_range_per_dim_yields_one_rect() {
        let rects = decompose_multirange(&[
            vec![Interval::new(0.0, 1.0).unwrap()],
            vec![Interval::all()],
        ]);
        assert_eq!(rects.len(), 1);
    }

    #[test]
    fn product_counts_multiply() {
        let rects = decompose_multirange(&[
            vec![
                Interval::equals_int(1),
                Interval::equals_int(2),
                Interval::equals_int(3),
            ],
            vec![
                Interval::new(0.0, 5.0).unwrap(),
                Interval::new(10.0, 15.0).unwrap(),
            ],
        ]);
        assert_eq!(rects.len(), 6);
    }

    #[test]
    fn decomposition_preserves_matching_semantics() {
        let dims = vec![
            vec![
                Interval::new(0.0, 2.0).unwrap(),
                Interval::new(5.0, 7.0).unwrap(),
            ],
            vec![
                Interval::new(0.0, 3.0).unwrap(),
                Interval::greater_than(8.0),
            ],
        ];
        let rects = decompose_multirange(&dims);
        assert_eq!(rects.len(), 4);
        // A grid of probes: point matches the multi-range subscription
        // iff every dimension has some interval containing it — iff
        // some decomposed rectangle contains it.
        for xi in 0..20 {
            for yi in 0..20 {
                let (x, y) = (xi as f64 * 0.5, yi as f64 * 0.5);
                let direct = dims[0].iter().any(|iv| iv.contains(x))
                    && dims[1].iter().any(|iv| iv.contains(y));
                let via_rects = rects.iter().any(|r| r.contains(&Point::new(vec![x, y])));
                assert_eq!(direct, via_rects, "probe ({x}, {y})");
            }
        }
    }

    #[test]
    fn empty_intervals_are_dropped() {
        let rects = decompose_multirange(&[
            vec![
                Interval::new(1.0, 1.0).unwrap(), // empty, dropped
                Interval::new(2.0, 4.0).unwrap(),
            ],
            vec![Interval::all()],
        ]);
        assert_eq!(rects.len(), 1);
    }

    #[test]
    fn unsatisfiable_dimension_yields_nothing() {
        let rects = decompose_multirange(&[
            vec![Interval::new(1.0, 1.0).unwrap()], // only an empty interval
            vec![Interval::all()],
        ]);
        assert!(rects.is_empty());
        assert!(decompose_multirange(&[]).is_empty());
    }
}
