//! Regular grid over a finite region of the event space.
//!
//! The grid-based clustering framework (Section 4.1 of the paper) applies
//! data clustering heuristics to the *cells of a regular grid* in `Ω`.
//! This module provides the grid itself: mapping events to cells and
//! rasterizing subscription rectangles to the set of cells they overlap.
//!
//! Cells inherit the half-open convention: the cell with per-dimension
//! index `i` covers `(lo + i·w, lo + (i+1)·w]`, so every event inside the
//! grid bounds falls in exactly one cell and adjacent cells never share a
//! point.

use std::fmt;

use crate::interval::Interval;
use crate::point::Point;
use crate::rect::Rect;

/// Identifier of a grid cell: a linearized index in `0..grid.num_cells()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub usize);

impl CellId {
    /// The raw linear index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// Error returned when constructing an invalid [`Grid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// Grid bounds must be bounded (finite) in every dimension.
    UnboundedBounds,
    /// Grid bounds must have positive extent in every dimension.
    EmptyBounds,
    /// Every dimension must have at least one bin.
    ZeroBins,
    /// `bins.len()` must equal the dimension of the bounds.
    DimensionMismatch {
        /// Dimension of the bounds rectangle.
        bounds: usize,
        /// Number of bin counts supplied.
        bins: usize,
    },
    /// The total number of cells overflowed `usize`.
    TooManyCells,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::UnboundedBounds => write!(f, "grid bounds must be finite"),
            GridError::EmptyBounds => write!(f, "grid bounds must be non-empty"),
            GridError::ZeroBins => write!(f, "grid needs at least one bin per dimension"),
            GridError::DimensionMismatch { bounds, bins } => write!(
                f,
                "bounds have {bounds} dimensions but {bins} bin counts were supplied"
            ),
            GridError::TooManyCells => write!(f, "total cell count overflows usize"),
        }
    }
}

impl std::error::Error for GridError {}

/// A regular grid over a finite, axis-aligned region of the event space.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Point, Rect};
///
/// let bounds = Rect::new(vec![
///     Interval::new(0.0, 20.0)?,
///     Interval::new(0.0, 20.0)?,
/// ]);
/// let grid = Grid::new(bounds, vec![10, 10])?;
/// assert_eq!(grid.num_cells(), 100);
/// let cell = grid.cell_of(&Point::new(vec![3.5, 11.0])).unwrap();
/// assert!(grid.cell_rect(cell).contains(&Point::new(vec![3.5, 11.0])));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    bounds: Rect,
    bins: Vec<usize>,
    widths: Vec<f64>,
    /// `strides[d]` is the linear-index step when the index along
    /// dimension `d` increases by one (row-major, last dim contiguous).
    strides: Vec<usize>,
    num_cells: usize,
}

impl Grid {
    /// Creates a grid over `bounds` with `bins[d]` equal-width cells
    /// along dimension `d`.
    ///
    /// # Errors
    ///
    /// See [`GridError`] for each rejected input shape.
    pub fn new(bounds: Rect, bins: Vec<usize>) -> Result<Self, GridError> {
        if bins.len() != bounds.dim() {
            return Err(GridError::DimensionMismatch {
                bounds: bounds.dim(),
                bins: bins.len(),
            });
        }
        if !bounds.is_bounded() {
            return Err(GridError::UnboundedBounds);
        }
        if bounds.is_empty() {
            return Err(GridError::EmptyBounds);
        }
        if bins.contains(&0) {
            return Err(GridError::ZeroBins);
        }
        let mut num_cells: usize = 1;
        for &b in &bins {
            num_cells = num_cells.checked_mul(b).ok_or(GridError::TooManyCells)?;
        }
        let widths: Vec<f64> = bounds
            .intervals()
            .iter()
            .zip(bins.iter())
            .map(|(iv, &b)| iv.length() / b as f64)
            .collect();
        // Row-major strides, last dimension contiguous.
        let mut strides = vec![1usize; bins.len()];
        for d in (0..bins.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * bins[d + 1];
        }
        Ok(Grid {
            bounds,
            bins,
            widths,
            strides,
            num_cells,
        })
    }

    /// Convenience constructor: a cube `(lo, hi]^dim` with `bins` cells
    /// per dimension.
    ///
    /// # Errors
    ///
    /// Same as [`Grid::new`].
    pub fn cube(lo: f64, hi: f64, dim: usize, bins: usize) -> Result<Self, GridError> {
        let iv = Interval::new(lo, hi).map_err(|_| GridError::EmptyBounds)?;
        Grid::new(Rect::new(vec![iv; dim]), vec![bins; dim])
    }

    /// The grid's bounding rectangle.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.bins.len()
    }

    /// Bins per dimension.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// The cell containing event `p`, or `None` if `p` falls outside the
    /// grid bounds (such events are delivered by unicast fallback).
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.dim()`.
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        assert_eq!(p.dim(), self.dim(), "dimension mismatch");
        let mut idx = 0usize;
        for d in 0..self.dim() {
            let iv = self.bounds.interval(d);
            let x = p[d];
            if !iv.contains(x) {
                return None;
            }
            // Cell i covers (lo + i·w, lo + (i+1)·w]; ceil(t) - 1 maps the
            // half-open convention correctly (a boundary point belongs to
            // the cell below it).
            let t = (x - iv.lo()) / self.widths[d];
            let i = (t.ceil() as isize - 1).clamp(0, self.bins[d] as isize - 1) as usize;
            idx += i * self.strides[d];
        }
        Some(CellId(idx))
    }

    /// The per-dimension cell coordinates of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_coords(&self, cell: CellId) -> Vec<usize> {
        assert!(cell.0 < self.num_cells, "cell id out of range");
        let mut rem = cell.0;
        let mut coords = Vec::with_capacity(self.dim());
        for d in 0..self.dim() {
            coords.push(rem / self.strides[d]);
            rem %= self.strides[d];
        }
        coords
    }

    /// The rectangle covered by `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let coords = self.cell_coords(cell);
        let ivs = coords
            .iter()
            .enumerate()
            .map(|(d, &i)| {
                let lo = self.bounds.interval(d).lo() + i as f64 * self.widths[d];
                // Snap the top cell's upper edge to the exact bound to
                // avoid floating-point drift.
                let hi = if i + 1 == self.bins[d] {
                    self.bounds.interval(d).hi()
                } else {
                    self.bounds.interval(d).lo() + (i + 1) as f64 * self.widths[d]
                };
                Interval::new(lo, hi).expect("cell interval is well-formed")
            })
            .collect();
        Rect::new(ivs)
    }

    /// Linearizes per-dimension cell coordinates.
    ///
    /// # Panics
    ///
    /// Panics if coordinates are out of range or of the wrong dimension.
    pub fn cell_at(&self, coords: &[usize]) -> CellId {
        assert_eq!(coords.len(), self.dim(), "dimension mismatch");
        let mut idx = 0usize;
        for ((&c, &bins), &stride) in coords.iter().zip(&self.bins).zip(&self.strides) {
            assert!(c < bins, "cell coordinate out of range");
            idx += c * stride;
        }
        CellId(idx)
    }

    /// All cells whose rectangle intersects the (possibly unbounded)
    /// subscription rectangle `r`. The result is sorted by linear index.
    ///
    /// Returns an empty vector when `r` misses the grid entirely.
    ///
    /// # Panics
    ///
    /// Panics if `r.dim() != self.dim()`.
    pub fn cells_overlapping(&self, r: &Rect) -> Vec<CellId> {
        assert_eq!(r.dim(), self.dim(), "dimension mismatch");
        let clipped = match r.clip(&self.bounds) {
            Some(c) => c,
            None => return Vec::new(),
        };
        // Per-dimension index ranges [i_min, i_max] of overlapped cells.
        let mut ranges = Vec::with_capacity(self.dim());
        for d in 0..self.dim() {
            let iv = clipped.interval(d);
            let lo = self.bounds.interval(d).lo();
            let w = self.widths[d];
            let ta = (iv.lo() - lo) / w;
            let tb = (iv.hi() - lo) / w;
            // Cell i overlaps (a, b] iff i+1 > ta and i < tb.
            let i_min = ((ta - 1.0).floor() as isize + 1).clamp(0, self.bins[d] as isize - 1);
            let i_max = (tb.ceil() as isize - 1).clamp(0, self.bins[d] as isize - 1);
            if i_max < i_min {
                return Vec::new();
            }
            ranges.push((i_min as usize, i_max as usize));
        }
        // Cartesian product of the per-dimension ranges.
        let mut out = Vec::new();
        let mut coords: Vec<usize> = ranges.iter().map(|&(a, _)| a).collect();
        loop {
            out.push(self.cell_at(&coords));
            // Odometer increment, last dimension fastest.
            let mut d = self.dim();
            loop {
                if d == 0 {
                    out.sort_unstable();
                    return out;
                }
                d -= 1;
                if coords[d] < ranges[d].1 {
                    coords[d] += 1;
                    break;
                }
                coords[d] = ranges[d].0;
            }
        }
    }

    /// Iterator over every cell id in the grid.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.num_cells).map(CellId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d() -> Grid {
        Grid::cube(0.0, 20.0, 2, 10).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Grid::new(Rect::all(2), vec![4, 4]),
            Err(GridError::UnboundedBounds)
        );
        let b = Rect::new(vec![
            Interval::new(0.0, 1.0).unwrap(),
            Interval::new(2.0, 2.0).unwrap(),
        ]);
        assert_eq!(Grid::new(b, vec![2, 2]), Err(GridError::EmptyBounds));
        let b = Rect::new(vec![Interval::new(0.0, 1.0).unwrap()]);
        assert_eq!(Grid::new(b.clone(), vec![0]), Err(GridError::ZeroBins));
        assert_eq!(
            Grid::new(b, vec![1, 1]),
            Err(GridError::DimensionMismatch { bounds: 1, bins: 2 })
        );
    }

    #[test]
    fn cell_of_interior_points() {
        let g = grid_2d();
        // Cell widths are 2.0; point (3.5, 11.0) → coords (1, 5).
        let c = g.cell_of(&Point::new(vec![3.5, 11.0])).unwrap();
        assert_eq!(g.cell_coords(c), vec![1, 5]);
    }

    #[test]
    fn cell_of_boundary_points_half_open() {
        let g = grid_2d();
        // x = 2.0 is the *closed upper* edge of cell 0 along that dim.
        let c = g.cell_of(&Point::new(vec![2.0, 2.0])).unwrap();
        assert_eq!(g.cell_coords(c), vec![0, 0]);
        // The global lower bound is open: (0, y) is outside.
        assert!(g.cell_of(&Point::new(vec![0.0, 5.0])).is_none());
        // The global upper bound is closed.
        let c = g.cell_of(&Point::new(vec![20.0, 20.0])).unwrap();
        assert_eq!(g.cell_coords(c), vec![9, 9]);
        // Just past the upper bound is outside.
        assert!(g.cell_of(&Point::new(vec![20.01, 5.0])).is_none());
    }

    #[test]
    fn every_interior_point_in_exactly_one_cell() {
        let g = grid_2d();
        // A boundary point must land in exactly one cell, and the cell's
        // rectangle must contain it.
        for &x in &[0.1, 2.0, 2.0001, 7.3, 19.999, 20.0] {
            for &y in &[0.5, 4.0, 10.0, 16.7, 20.0] {
                let p = Point::new(vec![x, y]);
                let c = g.cell_of(&p).unwrap();
                assert!(g.cell_rect(c).contains(&p), "({x},{y}) vs {:?}", c);
            }
        }
    }

    #[test]
    fn cell_rect_round_trip() {
        let g = grid_2d();
        for c in g.iter() {
            let r = g.cell_rect(c);
            // Midpoint of the cell maps back to the cell.
            let mid = Point::new(
                r.intervals()
                    .iter()
                    .map(|iv| (iv.lo() + iv.hi()) / 2.0)
                    .collect(),
            );
            assert_eq!(g.cell_of(&mid), Some(c));
        }
    }

    #[test]
    fn cells_overlapping_small_rect() {
        let g = grid_2d();
        // Rect (3, 5] x (11, 12] covers x-cells {1, 2} and y-cell {5}.
        let r = Rect::new(vec![
            Interval::new(3.0, 5.0).unwrap(),
            Interval::new(11.0, 12.0).unwrap(),
        ]);
        let cells = g.cells_overlapping(&r);
        let coords: Vec<Vec<usize>> = cells.iter().map(|&c| g.cell_coords(c)).collect();
        assert_eq!(coords, vec![vec![1, 5], vec![2, 5]]);
    }

    #[test]
    fn cells_overlapping_aligned_rect_excludes_touching() {
        let g = grid_2d();
        // (2, 4] is exactly cell index 1: touching at x=2 must NOT pull
        // in cell 0 because cells are half-open.
        let r = Rect::new(vec![
            Interval::new(2.0, 4.0).unwrap(),
            Interval::new(0.0, 2.0).unwrap(),
        ]);
        let cells = g.cells_overlapping(&r);
        assert_eq!(cells.len(), 1);
        assert_eq!(g.cell_coords(cells[0]), vec![1, 0]);
    }

    #[test]
    fn cells_overlapping_unbounded_subscription() {
        let g = grid_2d();
        let r = Rect::new(vec![Interval::greater_than(15.0), Interval::all()]);
        let cells = g.cells_overlapping(&r);
        // x-cells {7, 8, 9}? (15, 20] overlaps cells covering (14,16],(16,18],(18,20]
        assert_eq!(cells.len(), 3 * 10);
        for &c in &cells {
            assert!(g.cell_coords(c)[0] >= 7);
        }
    }

    #[test]
    fn cells_overlapping_disjoint_rect_is_empty() {
        let g = grid_2d();
        let r = Rect::new(vec![Interval::new(25.0, 30.0).unwrap(), Interval::all()]);
        assert!(g.cells_overlapping(&r).is_empty());
    }

    #[test]
    fn full_cover_counts_all_cells() {
        let g = grid_2d();
        assert_eq!(g.cells_overlapping(&Rect::all(2)).len(), g.num_cells());
    }

    #[test]
    fn strides_linearization() {
        let g = Grid::new(
            Rect::new(vec![
                Interval::new(0.0, 1.0).unwrap(),
                Interval::new(0.0, 1.0).unwrap(),
                Interval::new(0.0, 1.0).unwrap(),
            ]),
            vec![2, 3, 4],
        )
        .unwrap();
        assert_eq!(g.num_cells(), 24);
        let c = g.cell_at(&[1, 2, 3]);
        assert_eq!(c.index(), 12 + 2 * 4 + 3);
        assert_eq!(g.cell_coords(c), vec![1, 2, 3]);
    }
}
