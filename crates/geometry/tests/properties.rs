//! Property-based tests for the geometric primitives.

use geometry::{Grid, Interval, Point, Rect};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    prop_oneof![
        // Bounded
        (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(a, b)| Interval::from_unordered(a, b)),
        // One-sided
        (-50.0..50.0f64).prop_map(Interval::greater_than),
        (-50.0..50.0f64).prop_map(Interval::at_most),
        // Don't-care
        Just(Interval::all()),
    ]
}

fn rect_strategy(dim: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), dim).prop_map(Rect::new)
}

fn point_strategy(dim: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(-60.0..60.0f64, dim).prop_map(Point::new)
}

proptest! {
    #[test]
    fn interval_intersection_commutes(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn interval_intersection_is_contained(a in interval_strategy(), b in interval_strategy()) {
        if let Some(c) = a.intersection(&b) {
            prop_assert!(a.contains_interval(&c));
            prop_assert!(b.contains_interval(&c));
        }
    }

    #[test]
    fn interval_hull_contains_both(a in interval_strategy(), b in interval_strategy()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    #[test]
    fn point_membership_agrees_with_intersection(
        a in interval_strategy(),
        b in interval_strategy(),
        x in -60.0..60.0f64,
    ) {
        // x ∈ a∩b  iff  x ∈ a and x ∈ b
        let both = a.contains(x) && b.contains(x);
        let via_inter = a.intersection(&b).is_some_and(|c| c.contains(x));
        prop_assert_eq!(both, via_inter);
    }

    #[test]
    fn rect_contains_agrees_per_dimension(r in rect_strategy(3), p in point_strategy(3)) {
        let expected = (0..3).all(|d| r.interval(d).contains(p[d]));
        prop_assert_eq!(r.contains(&p), expected);
    }

    #[test]
    fn rect_intersection_membership(
        a in rect_strategy(3),
        b in rect_strategy(3),
        p in point_strategy(3),
    ) {
        let both = a.contains(&p) && b.contains(&p);
        let via_inter = a.intersection(&b).is_some_and(|c| c.contains(&p));
        prop_assert_eq!(both, via_inter);
    }

    #[test]
    fn grid_cell_of_is_a_partition(p in point_strategy(3)) {
        let g = Grid::cube(-60.0, 60.0, 3, 8).unwrap();
        // Every in-bounds point falls in exactly one cell and that cell's
        // rectangle contains it.
        if let Some(c) = g.cell_of(&p) {
            prop_assert!(g.cell_rect(c).contains(&p));
            // No other cell contains it.
            for other in g.iter() {
                if other != c {
                    prop_assert!(!g.cell_rect(other).contains(&p));
                }
            }
        } else {
            // Outside: at the open lower boundary or beyond the bounds.
            prop_assert!(!g.bounds().contains(&p));
        }
    }

    #[test]
    fn grid_rasterization_covers_contained_points(
        r in rect_strategy(2),
        p in point_strategy(2),
    ) {
        let g = Grid::cube(-60.0, 60.0, 2, 10).unwrap();
        // If p ∈ r and p is on the grid, then p's cell must be among the
        // cells overlapping r (no under-rasterization).
        if r.contains(&p) {
            if let Some(c) = g.cell_of(&p) {
                let cells = g.cells_overlapping(&r);
                prop_assert!(cells.contains(&c), "cell {:?} missing for rect {r}", c);
            }
        }
    }

    #[test]
    fn grid_rasterized_cells_all_intersect(r in rect_strategy(2)) {
        let g = Grid::cube(-60.0, 60.0, 2, 10).unwrap();
        // No over-rasterization: every reported cell genuinely intersects.
        for c in g.cells_overlapping(&r) {
            prop_assert!(g.cell_rect(c).intersects(&r));
        }
    }
}
