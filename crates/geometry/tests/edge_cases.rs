//! Edge-case coverage for the geometric primitives: degenerate grids,
//! extreme intervals, high dimensions — the inputs a library user will
//! eventually throw at it.

use geometry::{decompose_multirange, Grid, Interval, Point, Rect};

#[test]
fn single_bin_grid_is_one_cell() {
    let g = Grid::cube(0.0, 10.0, 2, 1).unwrap();
    assert_eq!(g.num_cells(), 1);
    let c = g.cell_of(&Point::new(vec![5.0, 5.0])).unwrap();
    assert_eq!(c.index(), 0);
    assert_eq!(
        g.cell_rect(c),
        Rect::new(vec![
            Interval::new(0.0, 10.0).unwrap(),
            Interval::new(0.0, 10.0).unwrap(),
        ])
    );
    // Everything overlapping maps to the single cell.
    assert_eq!(g.cells_overlapping(&Rect::all(2)).len(), 1);
}

#[test]
fn one_dimensional_grid() {
    let g = Grid::cube(0.0, 1.0, 1, 100).unwrap();
    assert_eq!(g.num_cells(), 100);
    let c = g.cell_of(&Point::new(vec![0.005])).unwrap();
    assert_eq!(g.cell_coords(c), vec![0]);
    let c = g.cell_of(&Point::new(vec![1.0])).unwrap();
    assert_eq!(g.cell_coords(c), vec![99]);
}

#[test]
fn six_dimensional_grid_linearizes_correctly() {
    let g = Grid::cube(0.0, 2.0, 6, 2).unwrap();
    assert_eq!(g.num_cells(), 64);
    // Round-trip every cell through coords.
    for c in g.iter() {
        let coords = g.cell_coords(c);
        assert_eq!(g.cell_at(&coords), c);
    }
}

#[test]
fn tiny_cells_do_not_lose_points() {
    // 1e-6-wide cells: floating-point boundaries must still partition.
    let g = Grid::cube(0.0, 1e-3, 1, 1000).unwrap();
    for i in 0..50 {
        let x = (i as f64 + 0.5) * 1e-6;
        let c = g.cell_of(&Point::new(vec![x])).unwrap();
        assert!(g.cell_rect(c).contains(&Point::new(vec![x])), "x={x}");
    }
}

#[test]
fn interval_extreme_magnitudes() {
    let i = Interval::new(-1e300, 1e300).unwrap();
    assert!(i.contains(0.0));
    assert!(i.is_bounded());
    assert!(i.length().is_finite());
    let hull = i.hull(&Interval::all());
    assert!(!hull.is_bounded());
}

#[test]
fn rect_zero_volume_on_any_empty_dim() {
    let r = Rect::new(vec![
        Interval::new(0.0, 10.0).unwrap(),
        Interval::new(3.0, 3.0).unwrap(),
    ]);
    assert!(r.is_empty());
    assert_eq!(r.volume(), 0.0);
    assert!(!r.contains(&Point::new(vec![5.0, 3.0])));
    // Empty rect intersects nothing.
    assert!(!r.intersects(&Rect::all(2)));
}

#[test]
fn decompose_large_products() {
    // 3 × 3 × 3 = 27 rectangles, all distinct.
    let per_dim: Vec<Vec<Interval>> = (0..3)
        .map(|_| {
            vec![
                Interval::new(0.0, 1.0).unwrap(),
                Interval::new(2.0, 3.0).unwrap(),
                Interval::new(4.0, 5.0).unwrap(),
            ]
        })
        .collect();
    let rects = decompose_multirange(&per_dim);
    assert_eq!(rects.len(), 27);
    let mut unique = rects.iter().map(|r| format!("{r}")).collect::<Vec<_>>();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), 27);
}

#[test]
fn grid_rejects_pathological_bins() {
    // Overflowing cell counts must error, not wrap.
    let r = Rect::new(vec![
        Interval::new(0.0, 1.0).unwrap(),
        Interval::new(0.0, 1.0).unwrap(),
        Interval::new(0.0, 1.0).unwrap(),
        Interval::new(0.0, 1.0).unwrap(),
    ]);
    let huge = usize::MAX / 2;
    assert!(Grid::new(r, vec![huge, huge, 2, 2]).is_err());
}

#[test]
fn negative_coordinate_domains() {
    let g = Grid::cube(-100.0, -50.0, 2, 10).unwrap();
    let p = Point::new(vec![-75.0, -51.0]);
    let c = g.cell_of(&p).unwrap();
    assert!(g.cell_rect(c).contains(&p));
    assert!(g.cell_of(&Point::new(vec![0.0, -75.0])).is_none());
}
