//! Property-based tests of the workload generators: structural
//! invariants that must hold for any parameter draw.

use netsim::{Topology, TransitStubParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{Normal, Pareto, PredicateDist, PublicationModes, Section3Model, StockModel, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ----- distributions -----

    #[test]
    fn normal_cdf_is_monotone_and_bounded(
        mean in -20.0..20.0f64,
        sd in 0.1..10.0f64,
        a in -50.0..50.0f64,
        b in -50.0..50.0f64,
    ) {
        let n = Normal::new(mean, sd);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&n.cdf(a)));
        // Symmetry about the mean.
        prop_assert!((n.cdf(mean) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn zipf_samples_stay_in_support(n in 1usize..200, alpha in 0.2..3.0f64, seed in 0u64..1000) {
        let z = Zipf::new(n, alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn pareto_samples_at_least_scale(scale in 0.1..10.0f64, shape in 0.3..4.0f64, seed in 0u64..1000) {
        let p = Pareto::new(scale, shape).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(p.sample(&mut rng) >= scale);
            prop_assert!(p.sample_capped(&mut rng, 20.0) <= 20.0);
        }
    }

    // ----- Section 3 generator -----

    #[test]
    fn section3_workload_is_structurally_valid(
        regionalism in 0.0..1.0f64,
        uniform in any::<bool>(),
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let model = Section3Model {
            regionalism,
            dist: if uniform { PredicateDist::Uniform } else { PredicateDist::Gaussian },
            num_subscriptions: 60,
            num_events: 30,
        };
        let w = model.generate(&topo, &mut rng);
        prop_assert_eq!(w.subscriptions.len(), 60);
        prop_assert_eq!(w.events.len(), 30);
        for s in &w.subscriptions {
            // Subscribers sit on stub nodes and have 4-dim non-empty rects.
            prop_assert!(topo.stub_of(s.node).is_some());
            prop_assert_eq!(s.rect.dim(), 4);
            prop_assert!(!s.rect.is_empty());
        }
        for e in &w.events {
            prop_assert!(topo.stub_of(e.publisher).is_some());
            // Regional attribute equals the origin stub id.
            prop_assert_eq!(e.point[0], topo.stub_of(e.publisher).unwrap().index() as f64);
            prop_assert!(w.bounds.contains(&e.point));
        }
    }

    // ----- stock generator -----

    #[test]
    fn stock_workload_is_structurally_valid(
        modes in prop_oneof![
            Just(PublicationModes::One),
            Just(PublicationModes::Four),
            Just(PublicationModes::Nine),
        ],
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let model = StockModel::default().with_sizes(80, 40).with_modes(modes);
        let w = model.generate(&topo, &mut rng);
        prop_assert_eq!(w.subscriptions.len(), 80);
        prop_assert_eq!(w.events.len(), 40);
        for s in &w.subscriptions {
            prop_assert!(topo.stub_of(s.node).is_some());
            prop_assert!(!s.rect.is_empty());
            // bst is always a unit-width equality on {0, 1, 2}.
            let bst = s.rect.interval(0);
            prop_assert_eq!(bst.length(), 1.0);
            prop_assert!((0.0..=2.0).contains(&bst.hi()));
        }
        for e in &w.events {
            prop_assert!(w.bounds.contains(&e.point));
        }
    }

    #[test]
    fn analytic_density_matches_event_sampling(
        seed in 0u64..200,
    ) {
        // The analytic density's mass over the full bounds must be close
        // to 1 minus the clamped tail (events are clamped into bounds,
        // density is not).
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let model = StockModel::default().with_sizes(10, 200);
        let w = model.generate(&topo, &mut rng);
        let density = model.publication_density();
        let total = density.mass(&w.bounds);
        prop_assert!(total > 0.5 && total <= 1.0 + 1e-9, "total mass {total}");
    }
}
