//! Edge-case coverage for the workload generators and utilities.

use netsim::{NodeId, Topology, TransitStubParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{
    prune_covered, NormalMixture, Pareto, PredicateDist, PublicationModes, Section3Model,
    StockModel, Subscription, Zipf,
};

fn topo() -> Topology {
    Topology::generate(
        &TransitStubParams::paper_100_nodes(),
        &mut StdRng::seed_from_u64(1),
    )
}

#[test]
fn zero_sized_workloads() {
    let t = topo();
    let mut rng = StdRng::seed_from_u64(2);
    let w = Section3Model {
        regionalism: 0.4,
        dist: PredicateDist::Uniform,
        num_subscriptions: 0,
        num_events: 0,
    }
    .generate(&t, &mut rng);
    assert!(w.subscriptions.is_empty());
    assert!(w.events.is_empty());
    let w = StockModel::default()
        .with_sizes(0, 0)
        .generate(&t, &mut rng);
    assert!(w.subscriptions.is_empty());
    assert!(w.events.is_empty());
}

#[test]
fn single_subscription_single_event() {
    let t = topo();
    let mut rng = StdRng::seed_from_u64(3);
    let w = StockModel::default()
        .with_sizes(1, 1)
        .generate(&t, &mut rng);
    assert_eq!(w.subscriptions.len(), 1);
    assert_eq!(w.events.len(), 1);
    // Matching either finds the one subscription or nothing.
    let m = w.matching_subscriptions(&w.events[0].point);
    assert!(m.len() <= 1);
}

#[test]
fn zipf_support_one_always_returns_rank_one() {
    let z = Zipf::new(1, 1.0).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..100 {
        assert_eq!(z.sample(&mut rng), 1);
    }
    assert_eq!(z.pmf(1), 1.0);
}

#[test]
fn zipf_extreme_alpha_concentrates_on_rank_one() {
    let z = Zipf::new(100, 8.0).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let ones = (0..1000).filter(|_| z.sample(&mut rng) == 1).count();
    assert!(ones > 980, "alpha=8 should pin rank 1, got {ones}/1000");
}

#[test]
fn pareto_heavy_tail_still_capped() {
    let p = Pareto::new(1.0, 0.2).unwrap(); // extremely heavy tail
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..1000 {
        let x = p.sample_capped(&mut rng, 20.0);
        assert!((1.0..=20.0).contains(&x));
    }
}

#[test]
fn mixture_single_component_equals_normal() {
    let m = NormalMixture::single(5.0, 2.0);
    // Mass over (3, 7] = CDF band of N(5,2).
    let mass = m.mass(3.0, 7.0);
    assert!((mass - 0.6827).abs() < 1e-3, "mass {mass}");
}

#[test]
#[should_panic(expected = "components")]
fn mixture_rejects_empty() {
    let _ = NormalMixture::new(vec![]);
}

#[test]
fn name_sd_zero_pins_centers_to_block_means() {
    let t = Topology::generate(
        &TransitStubParams::paper_section51(),
        &mut StdRng::seed_from_u64(7),
    );
    let mut rng = StdRng::seed_from_u64(8);
    let w = StockModel::default()
        .with_sizes(300, 1)
        .with_name_sd(0.0)
        .generate(&t, &mut rng);
    for s in &w.subscriptions {
        let iv = s.rect.interval(1);
        let center = (iv.lo() + iv.hi()) / 2.0;
        let block = t.block_of(s.node);
        let expect = [3.0, 10.0, 17.0][block];
        assert!(
            (center - expect).abs() < 1e-9,
            "block {block}: center {center}"
        );
    }
}

#[test]
fn stock_nine_mode_density_mass_is_valid() {
    let d = StockModel::default()
        .with_modes(PublicationModes::Nine)
        .publication_density();
    assert_eq!(d.dim(), 4);
    // Total mass over a huge box approaches 1.
    let big = geometry::Rect::new(vec![
        geometry::Interval::new(-1e6, 1e6).unwrap(),
        geometry::Interval::new(-1e6, 1e6).unwrap(),
        geometry::Interval::new(-1e6, 1e6).unwrap(),
        geometry::Interval::new(-1e6, 1e6).unwrap(),
    ]);
    assert!((d.mass(&big) - 1.0).abs() < 1e-6);
}

#[test]
fn prune_covered_empty_and_singleton() {
    let out = prune_covered(&[]);
    assert!(out.kept.is_empty());
    assert_eq!(out.removed, 0);
    let one = vec![Subscription {
        node: NodeId(1),
        rect: geometry::Rect::all(2),
    }];
    let out = prune_covered(&one);
    assert_eq!(out.kept.len(), 1);
}

#[test]
fn wildcard_subscription_covers_everything_at_its_node() {
    let subs = vec![
        Subscription {
            node: NodeId(1),
            rect: geometry::Rect::all(1),
        },
        Subscription {
            node: NodeId(1),
            rect: geometry::Rect::new(vec![geometry::Interval::new(0.0, 5.0).unwrap()]),
        },
        Subscription {
            node: NodeId(2),
            rect: geometry::Rect::new(vec![geometry::Interval::new(0.0, 5.0).unwrap()]),
        },
    ];
    let out = prune_covered(&subs);
    assert_eq!(out.removed, 1);
    assert_eq!(out.kept.len(), 2);
    assert!(out.kept.iter().any(|s| s.node == NodeId(2)));
}

#[test]
fn regionalism_bounds_are_validated() {
    let t = topo();
    let mut rng = StdRng::seed_from_u64(9);
    let result = std::panic::catch_unwind(move || {
        Section3Model {
            regionalism: 1.5,
            dist: PredicateDist::Uniform,
            num_subscriptions: 10,
            num_events: 1,
        }
        .generate(&t, &mut rng)
    });
    assert!(result.is_err(), "regionalism > 1 must panic");
}
