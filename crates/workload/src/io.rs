//! Plain-text (CSV) workload import/export.
//!
//! Section 6 (item 3) of the paper: "Evaluation of the algorithms with
//! real-world data would be helpful. For example, stock trading data
//! can be used to simulate a stream of events coming into the system."
//! This module gives real traces a way in: subscriptions and events
//! round-trip through a simple line format readable by any tooling.
//!
//! Formats (one record per line, `#`-prefixed comments ignored):
//!
//! * subscription: `node,lo1,hi1,lo2,hi2,…` — one `(lo, hi]` pair per
//!   dimension, with `-inf` / `inf` for unbounded ends;
//! * event: `publisher,x1,x2,…`.

use std::fmt;
use std::io::{BufRead, Write};

use geometry::{Interval, Point, Rect};
use netsim::NodeId;

use crate::types::{Event, Subscription};

/// Error produced while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not have the expected number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// An interval had `lo > hi`.
    BadInterval {
        /// 1-based line number.
        line: usize,
    },
    /// Records disagree on dimensionality.
    DimensionMismatch {
        /// 1-based line number.
        line: usize,
    },
    /// A trace with no subscriptions and no events was given where at
    /// least one record is required.
    EmptyTrace,
    /// A grid with zero bins per dimension was requested.
    ZeroBins,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::FieldCount { line, got } => {
                write!(f, "line {line}: unexpected field count {got}")
            }
            TraceError::BadNumber { line, token } => {
                write!(f, "line {line}: cannot parse number {token:?}")
            }
            TraceError::BadInterval { line } => {
                write!(f, "line {line}: interval lower bound exceeds upper bound")
            }
            TraceError::DimensionMismatch { line } => {
                write!(
                    f,
                    "line {line}: dimensionality differs from earlier records"
                )
            }
            TraceError::EmptyTrace => {
                write!(f, "need at least one subscription or event")
            }
            TraceError::ZeroBins => {
                write!(f, "need at least one bin per dimension")
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn fmt_bound(x: f64) -> String {
    if x == f64::INFINITY {
        "inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{x}")
    }
}

fn parse_number(token: &str, line: usize) -> Result<f64, TraceError> {
    match token.trim() {
        "inf" | "+inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        t => t.parse().map_err(|_| TraceError::BadNumber {
            line,
            token: token.to_string(),
        }),
    }
}

/// Writes subscriptions in the line format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_subscriptions<W: Write>(
    mut w: W,
    subscriptions: &[Subscription],
) -> std::io::Result<()> {
    writeln!(w, "# node,lo1,hi1,lo2,hi2,...")?;
    for s in subscriptions {
        write!(w, "{}", s.node.index())?;
        for iv in s.rect.intervals() {
            write!(w, ",{},{}", fmt_bound(iv.lo()), fmt_bound(iv.hi()))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads subscriptions written by [`write_subscriptions`] (or produced
/// by external tooling in the same format).
///
/// # Errors
///
/// Returns a [`TraceError`] describing the first malformed line;
/// I/O errors surface as `BadNumber` on the offending line would —
/// callers needing I/O-error distinction should pre-read into a
/// string.
pub fn read_subscriptions<R: BufRead>(r: R) -> Result<Vec<Subscription>, TraceError> {
    let mut out = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line_number = lineno + 1;
        let line = line.map_err(|_| TraceError::BadNumber {
            line: line_number,
            token: "<io error>".into(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 3 || !(fields.len() - 1).is_multiple_of(2) {
            return Err(TraceError::FieldCount {
                line: line_number,
                got: fields.len(),
            });
        }
        // lint: allow(no-literal-index): field count verified above
        let node: usize = fields[0]
            .trim()
            .parse()
            .map_err(|_| TraceError::BadNumber {
                line: line_number,
                // lint: allow(no-literal-index): field count verified above
                token: fields[0].to_string(),
            })?;
        let d = (fields.len() - 1) / 2;
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => {
                return Err(TraceError::DimensionMismatch { line: line_number })
            }
            _ => {}
        }
        let mut ivs = Vec::with_capacity(d);
        for k in 0..d {
            let lo = parse_number(fields[1 + 2 * k], line_number)?;
            let hi = parse_number(fields[2 + 2 * k], line_number)?;
            let iv =
                Interval::new(lo, hi).map_err(|_| TraceError::BadInterval { line: line_number })?;
            ivs.push(iv);
        }
        out.push(Subscription {
            node: NodeId(node),
            rect: Rect::new(ivs),
        });
    }
    Ok(out)
}

/// Writes events in the line format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_events<W: Write>(mut w: W, events: &[Event]) -> std::io::Result<()> {
    writeln!(w, "# publisher,x1,x2,...")?;
    for e in events {
        write!(w, "{}", e.publisher.index())?;
        for d in 0..e.point.dim() {
            write!(w, ",{}", e.point[d])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads events written by [`write_events`].
///
/// # Errors
///
/// Returns a [`TraceError`] describing the first malformed line.
pub fn read_events<R: BufRead>(r: R) -> Result<Vec<Event>, TraceError> {
    let mut out = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line_number = lineno + 1;
        let line = line.map_err(|_| TraceError::BadNumber {
            line: line_number,
            token: "<io error>".into(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 2 {
            return Err(TraceError::FieldCount {
                line: line_number,
                got: fields.len(),
            });
        }
        // lint: allow(no-literal-index): field count verified above
        let publisher: usize = fields[0]
            .trim()
            .parse()
            .map_err(|_| TraceError::BadNumber {
                line: line_number,
                // lint: allow(no-literal-index): field count verified above
                token: fields[0].to_string(),
            })?;
        let d = fields.len() - 1;
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => {
                return Err(TraceError::DimensionMismatch { line: line_number })
            }
            _ => {}
        }
        let coords: Result<Vec<f64>, TraceError> = fields[1..]
            .iter()
            .map(|t| parse_number(t, line_number))
            .collect();
        out.push(Event {
            publisher: NodeId(publisher),
            point: Point::new(coords?),
        });
    }
    Ok(out)
}

/// Infers finite grid bounds and a per-dimension bin count from an
/// imported trace: the bounding box of all event coordinates and all
/// finite subscription bounds, padded slightly so no event sits on the
/// open lower edge.
///
/// Returns `(bounds, bins)` with `bins_per_dim` bins in every
/// dimension, ready for `Grid::new`.
///
/// # Errors
///
/// [`TraceError::EmptyTrace`] when both inputs are empty,
/// [`TraceError::ZeroBins`] when `bins_per_dim == 0`, and
/// [`TraceError::DimensionMismatch`] (with the 1-based record index,
/// subscriptions first) when records disagree on dimension — all
/// conditions an external trace can trigger, so none of them panic.
pub fn infer_bounds(
    subscriptions: &[Subscription],
    events: &[Event],
    bins_per_dim: usize,
) -> Result<(Rect, Vec<usize>), TraceError> {
    if bins_per_dim == 0 {
        return Err(TraceError::ZeroBins);
    }
    let dim = subscriptions
        .first()
        .map(|s| s.rect.dim())
        .or_else(|| events.first().map(|e| e.point.dim()))
        .ok_or(TraceError::EmptyTrace)?;
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for (i, s) in subscriptions.iter().enumerate() {
        if s.rect.dim() != dim {
            return Err(TraceError::DimensionMismatch { line: i + 1 });
        }
        for (d, iv) in s.rect.intervals().iter().enumerate() {
            if iv.lo().is_finite() {
                lo[d] = lo[d].min(iv.lo());
            }
            if iv.hi().is_finite() {
                hi[d] = hi[d].max(iv.hi());
            }
        }
    }
    for (i, e) in events.iter().enumerate() {
        if e.point.dim() != dim {
            return Err(TraceError::DimensionMismatch {
                line: subscriptions.len() + i + 1,
            });
        }
        for d in 0..dim {
            lo[d] = lo[d].min(e.point[d]);
            hi[d] = hi[d].max(e.point[d]);
        }
    }
    let ivs = (0..dim)
        .map(|d| {
            // Fall back to a unit box for dimensions nothing bounded.
            let (a, mut b) = if lo[d].is_finite() && hi[d].is_finite() {
                (lo[d], hi[d])
            } else {
                (0.0, 1.0)
            };
            if a >= b {
                b = a + 1.0;
            }
            // Pad the open lower edge so boundary events stay inside.
            let pad = (b - a) * 0.001 + 1e-9;
            Interval::new(a - pad, b).expect("inferred bounds are ordered")
        })
        .collect();
    Ok((Rect::new(ivs), vec![bins_per_dim; dim]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_subscriptions() -> Vec<Subscription> {
        vec![
            Subscription {
                node: NodeId(5),
                rect: Rect::new(vec![Interval::new(0.0, 10.0).unwrap(), Interval::all()]),
            },
            Subscription {
                node: NodeId(9),
                rect: Rect::new(vec![Interval::greater_than(3.5), Interval::at_most(7.25)]),
            },
        ]
    }

    #[test]
    fn subscriptions_round_trip() {
        let subs = sample_subscriptions();
        let mut buf = Vec::new();
        write_subscriptions(&mut buf, &subs).unwrap();
        let parsed = read_subscriptions(buf.as_slice()).unwrap();
        assert_eq!(parsed, subs);
    }

    #[test]
    fn events_round_trip() {
        let events = vec![
            Event {
                publisher: NodeId(1),
                point: Point::new(vec![1.5, -2.0]),
            },
            Event {
                publisher: NodeId(44),
                point: Point::new(vec![0.0, 20.0]),
            },
        ];
        let mut buf = Vec::new();
        write_events(&mut buf, &events).unwrap();
        let parsed = read_events(buf.as_slice()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n3,0,5\n";
        let subs = read_subscriptions(text.as_bytes()).unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].node, NodeId(3));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(
            read_subscriptions("1,0\n".as_bytes()),
            Err(TraceError::FieldCount { line: 1, got: 2 })
        );
        assert_eq!(
            read_subscriptions("x,0,5\n".as_bytes()),
            Err(TraceError::BadNumber {
                line: 1,
                token: "x".into()
            })
        );
        assert_eq!(
            read_subscriptions("1,9,5\n".as_bytes()),
            Err(TraceError::BadInterval { line: 1 })
        );
        assert_eq!(
            read_subscriptions("1,0,5\n2,0,5,0,5\n".as_bytes()),
            Err(TraceError::DimensionMismatch { line: 2 })
        );
        assert_eq!(
            read_events("7\n".as_bytes()),
            Err(TraceError::FieldCount { line: 1, got: 1 })
        );
        assert_eq!(
            read_events("1,3\n2,3,4\n".as_bytes()),
            Err(TraceError::DimensionMismatch { line: 2 })
        );
    }

    #[test]
    fn infer_bounds_covers_everything() {
        let subs = sample_subscriptions();
        let events = vec![Event {
            publisher: NodeId(0),
            point: Point::new(vec![-5.0, 30.0]),
        }];
        let (bounds, bins) = infer_bounds(&subs, &events, 10).unwrap();
        assert_eq!(bins, vec![10, 10]);
        // Every event is strictly inside.
        assert!(bounds.contains(&events[0].point));
        // Finite subscription corners are covered.
        assert!(bounds.interval(0).hi() >= 10.0);
        assert!(bounds.interval(1).hi() >= 30.0);
    }

    #[test]
    fn infer_bounds_rejects_bad_inputs() {
        assert_eq!(infer_bounds(&[], &[], 10), Err(TraceError::EmptyTrace));
        let subs = sample_subscriptions();
        assert_eq!(infer_bounds(&subs, &[], 0), Err(TraceError::ZeroBins));
        // A 1-d event after 2-d subscriptions: record index counts
        // subscriptions first.
        let events = vec![Event {
            publisher: NodeId(0),
            point: Point::new(vec![1.0]),
        }];
        assert_eq!(
            infer_bounds(&subs, &events, 10),
            Err(TraceError::DimensionMismatch {
                line: subs.len() + 1
            })
        );
    }

    #[test]
    fn infinities_round_trip_textually() {
        let text = "0,-inf,inf,2,inf\n";
        let subs = read_subscriptions(text.as_bytes()).unwrap();
        assert_eq!(*subs[0].rect.interval(0), Interval::all());
        assert_eq!(*subs[0].rect.interval(1), Interval::greater_than(2.0));
        let mut buf = Vec::new();
        write_subscriptions(&mut buf, &subs).unwrap();
        let again = read_subscriptions(buf.as_slice()).unwrap();
        assert_eq!(again, subs);
    }
}
