//! Analytic publication densities.
//!
//! The paper's publication models are products of per-dimension normal
//! mixtures, so the probability mass of any axis-aligned rectangle has
//! a closed form: the product over dimensions of the mixture-CDF
//! difference. The clustering framework weighs cells and regions by
//! `p_p`; using the analytic mass (rather than an empirical estimate
//! from a finite sample) matches the paper's setup and keeps popularity
//! rankings meaningful even on fine grids.

use geometry::Rect;
use rand::Rng;

use crate::dist::Normal;

/// A weighted mixture of normal distributions on one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalMixture {
    components: Vec<(f64, Normal)>,
}

impl NormalMixture {
    /// Creates a mixture; weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if the component list is empty or any weight is
    /// non-positive.
    pub fn new(components: Vec<(f64, Normal)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components.iter().map(|&(w, _)| w).sum();
        assert!(
            components.iter().all(|&(w, _)| w > 0.0) && total > 0.0,
            "mixture weights must be positive"
        );
        NormalMixture {
            components: components
                .into_iter()
                .map(|(w, n)| (w / total, n))
                .collect(),
        }
    }

    /// A single-component mixture.
    pub fn single(mean: f64, sd: f64) -> Self {
        NormalMixture::new(vec![(1.0, Normal::new(mean, sd))])
    }

    /// The components (weights sum to 1).
    pub fn components(&self) -> &[(f64, Normal)] {
        &self.components
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let mut u = rng.gen::<f64>();
        for (w, n) in &self.components {
            if u < *w {
                return n.sample(rng);
            }
            u -= w;
        }
        self.components
            .last()
            .expect("mixture has at least one component")
            .1
            .sample(rng)
    }

    /// `P(lo < X <= hi)` under the mixture.
    pub fn mass(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        self.components
            .iter()
            .map(|(w, n)| w * (n.cdf(hi) - n.cdf(lo)))
            .sum::<f64>()
            .max(0.0)
    }
}

/// A product of independent per-dimension [`NormalMixture`]s: the
/// analytic publication density of the paper's 1/4/9-mode models.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicationDensity {
    dims: Vec<NormalMixture>,
}

impl PublicationDensity {
    /// Creates the product density.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<NormalMixture>) -> Self {
        assert!(!dims.is_empty(), "density needs at least one dimension");
        PublicationDensity { dims }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// The mixture along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn mixture(&self, d: usize) -> &NormalMixture {
        &self.dims[d]
    }

    /// The probability mass of a rectangle: the product of per-dimension
    /// interval masses.
    ///
    /// # Panics
    ///
    /// Panics if `rect.dim() != self.dim()`.
    pub fn mass(&self, rect: &Rect) -> f64 {
        assert_eq!(rect.dim(), self.dim(), "dimension mismatch");
        self.dims
            .iter()
            .zip(rect.intervals())
            .map(|(m, iv)| m.mass(iv.lo(), iv.hi()))
            .product()
    }

    /// Draws one event point.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        self.dims.iter().map(|m| m.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use rand::prelude::*;

    #[test]
    fn normal_cdf_reference_values() {
        let n = Normal::new(0.0, 1.0);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((n.cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((n.cdf(-1.96) - 0.0249979).abs() < 1e-5);
        // Degenerate sd.
        let d = Normal::new(3.0, 0.0);
        assert_eq!(d.cdf(2.9), 0.0);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn mixture_mass_matches_sampling() {
        let m = NormalMixture::new(vec![
            (0.5, Normal::new(4.0, 2.0)),
            (0.5, Normal::new(16.0, 2.0)),
        ]);
        let analytic = m.mass(3.0, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| {
                let x = m.sample(&mut rng);
                x > 3.0 && x <= 5.0
            })
            .count();
        let empirical = hits as f64 / n as f64;
        assert!(
            (analytic - empirical).abs() < 0.005,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn mixture_weights_normalize() {
        let m = NormalMixture::new(vec![
            (2.0, Normal::new(0.0, 1.0)),
            (6.0, Normal::new(5.0, 1.0)),
        ]);
        assert!((m.components()[0].0 - 0.25).abs() < 1e-12);
        assert!((m.components()[1].0 - 0.75).abs() < 1e-12);
        // Total mass over the whole line is 1.
        assert!((m.mass(-1e6, 1e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn product_density_mass() {
        let d = PublicationDensity::new(vec![
            NormalMixture::single(0.0, 1.0),
            NormalMixture::single(0.0, 1.0),
        ]);
        // Central square: (Φ(1) - Φ(-1))² ≈ 0.683².
        let r = Rect::new(vec![
            Interval::new(-1.0, 1.0).unwrap(),
            Interval::new(-1.0, 1.0).unwrap(),
        ]);
        let mass = d.mass(&r);
        assert!((mass - 0.6827f64.powi(2)).abs() < 1e-3, "mass {mass}");
        // Empty rectangle: zero.
        let empty = Rect::new(vec![
            Interval::new(1.0, 1.0).unwrap(),
            Interval::new(-1.0, 1.0).unwrap(),
        ]);
        assert_eq!(d.mass(&empty), 0.0);
        // Unbounded rectangle: one.
        assert!((d.mass(&Rect::all(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn density_dimension_mismatch_panics() {
        let d = PublicationDensity::new(vec![NormalMixture::single(0.0, 1.0)]);
        let _ = d.mass(&Rect::all(2));
    }
}
