//! Subscription covering: pruning redundant subscriptions.
//!
//! A classic content-based pub-sub optimization (used by Siena and the
//! Gryphon line of systems): if a node holds two subscriptions `A ⊆ B`,
//! then `A` can never change which *nodes* receive a message — every
//! event matching `A` also matches `B` at the same node — so `A` can be
//! dropped before clustering. Fewer input rectangles mean smaller
//! membership vectors and faster preprocessing with byte-identical
//! node-level delivery.
//!
//! (Subscription-level matching does change: the pruned subscription no
//! longer appears in match lists. Use this only where node-level
//! delivery is what matters — as in the paper's cost evaluation.)

use geometry::Covering;

use crate::types::Subscription;

/// Result of a covering prune.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// The surviving subscriptions, in original relative order.
    pub kept: Vec<Subscription>,
    /// How many subscriptions were dropped as covered.
    pub removed: usize,
}

/// Removes every subscription covered by another subscription *at the
/// same node*. Exact duplicates keep their first occurrence.
pub fn prune_covered(subscriptions: &[Subscription]) -> PruneOutcome {
    let n = subscriptions.len();
    let mut drop = vec![false; n];
    // Group indices by node to keep the O(m²) containment scans local.
    let mut by_node: std::collections::HashMap<netsim::NodeId, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, s) in subscriptions.iter().enumerate() {
        by_node.entry(s.node).or_default().push(i);
    }
    // lint: allow(hash-order): groups partition the indices; each pass only
    // reads and writes its own group's drop flags
    for group in by_node.values() {
        for (x, &i) in group.iter().enumerate() {
            if drop[i] {
                continue;
            }
            for &j in group.iter().skip(x + 1) {
                if drop[j] {
                    continue;
                }
                let (a, b) = (&subscriptions[i].rect, &subscriptions[j].rect);
                // One classification per pair — the shared covering
                // predicate compares each interval pair exactly once
                // and treats every empty rectangle as the empty set.
                match a.classify_covering(b) {
                    // Identical: keep the earlier one.
                    Covering::Equal | Covering::Covers => drop[j] = true,
                    Covering::CoveredBy => {
                        drop[i] = true;
                        break;
                    }
                    Covering::Incomparable => {}
                }
            }
        }
    }
    let kept: Vec<Subscription> = subscriptions
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop[*i])
        .map(|(_, s)| s.clone())
        .collect();
    let removed = n - kept.len();
    PruneOutcome { kept, removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Interval, Point, Rect};
    use netsim::NodeId;

    fn sub(node: usize, lo: f64, hi: f64) -> Subscription {
        Subscription {
            node: NodeId(node),
            rect: Rect::new(vec![Interval::new(lo, hi).unwrap()]),
        }
    }

    #[test]
    fn covered_subscription_is_dropped() {
        let subs = vec![sub(1, 0.0, 10.0), sub(1, 2.0, 5.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 1);
        assert_eq!(out.kept, vec![sub(1, 0.0, 10.0)]);
    }

    #[test]
    fn different_nodes_never_cover_each_other() {
        let subs = vec![sub(1, 0.0, 10.0), sub(2, 2.0, 5.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 0);
        assert_eq!(out.kept.len(), 2);
    }

    #[test]
    fn duplicates_keep_first() {
        let subs = vec![sub(3, 0.0, 5.0), sub(3, 0.0, 5.0), sub(3, 0.0, 5.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 2);
        assert_eq!(out.kept.len(), 1);
    }

    #[test]
    fn chains_collapse_to_the_broadest() {
        let subs = vec![sub(1, 2.0, 3.0), sub(1, 1.0, 4.0), sub(1, 0.0, 5.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 2);
        assert_eq!(out.kept, vec![sub(1, 0.0, 5.0)]);
    }

    #[test]
    fn overlapping_but_uncovered_both_survive() {
        let subs = vec![sub(1, 0.0, 6.0), sub(1, 4.0, 10.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 0);
    }

    #[test]
    fn degenerate_zero_width_subscriptions_collapse_consistently() {
        // Zero-width (empty) rectangles match no event. They are all the
        // same point set, so at one node they collapse to the first one
        // and are dropped when any non-empty subscription coexists.
        let subs = vec![sub(1, 5.0, 5.0), sub(1, 9.0, 9.0), sub(1, 2.0, 2.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 2);
        assert_eq!(out.kept, vec![sub(1, 5.0, 5.0)]);
        let subs = vec![sub(2, 7.0, 7.0), sub(2, 0.0, 1.0)];
        let out = prune_covered(&subs);
        assert_eq!(out.removed, 1);
        assert_eq!(out.kept, vec![sub(2, 0.0, 1.0)]);
    }

    #[test]
    fn node_level_delivery_is_preserved() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        let subs: Vec<Subscription> = (0..200)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                sub(rng.gen_range(0..10), a.min(b), a.max(b))
            })
            .collect();
        let out = prune_covered(&subs);
        assert!(out.removed > 0, "random overlaps should produce covers");
        // For any event, the set of interested NODES is unchanged.
        let nodes_for = |subs: &[Subscription], p: &Point| {
            let mut ns: Vec<_> = subs
                .iter()
                .filter(|s| s.rect.contains(p))
                .map(|s| s.node)
                .collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        };
        for _ in 0..200 {
            let p = Point::new(vec![rng.gen_range(-1.0..21.0)]);
            assert_eq!(nodes_for(&subs, &p), nodes_for(&out.kept, &p));
        }
    }
}
