//! Zipf-head near-duplicate subscription populations.
//!
//! At million-subscriber scale real content-based systems see heavy
//! repetition: most subscribers pick from a catalogue of popular
//! interest specifications ("all tech stocks", "quotes above 50"),
//! with a long tail of bespoke rectangles. [`NearDupModel`] reproduces
//! that shape: a pool of `distinct` template rectangles is drawn once,
//! then each of `population` subscribers picks a template with
//! Zipf(`alpha`) popularity — so the realized population contains many
//! *bit-identical* copies of the head templates, which is exactly what
//! subscription aggregation exploits.

use geometry::{Interval, Point, Rect};
use netsim::NodeId;
use rand::prelude::*;

use crate::dist::{DistError, Pareto, Zipf};
use crate::types::{Event, Subscription, Workload};

/// Extent of every attribute domain: `[0, DOMAIN]`.
const DOMAIN: f64 = 100.0;

/// A near-duplicate population generator (see the module docs).
///
/// # Examples
///
/// ```
/// use workload::NearDupModel;
///
/// let model = NearDupModel::new(10_000, 200, 2, 42)?;
/// let w = model.generate(1_000);
/// assert_eq!(w.subscriptions.len(), 10_000);
/// assert_eq!(w.events.len(), 1_000);
/// # Ok::<(), workload::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NearDupModel {
    population: usize,
    distinct: usize,
    dim: usize,
    zipf: Zipf,
    lengths: Pareto,
    seed: u64,
}

impl NearDupModel {
    /// Default Zipf exponent over template popularity.
    pub const DEFAULT_ALPHA: f64 = 1.1;

    /// Creates a model producing `population` subscriptions drawn from
    /// a pool of `distinct` template rectangles in `dim` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySupport`] when `distinct == 0`.
    pub fn new(
        population: usize,
        distinct: usize,
        dim: usize,
        seed: u64,
    ) -> Result<Self, DistError> {
        Self::with_alpha(population, distinct, dim, Self::DEFAULT_ALPHA, seed)
    }

    /// Like [`new`](Self::new) with an explicit Zipf exponent.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySupport`] when `distinct == 0` and
    /// [`DistError::InvalidShape`] when `alpha` is non-positive.
    pub fn with_alpha(
        population: usize,
        distinct: usize,
        dim: usize,
        alpha: f64,
        seed: u64,
    ) -> Result<Self, DistError> {
        assert!(dim > 0, "event space needs at least one dimension");
        Ok(NearDupModel {
            population,
            distinct,
            dim,
            zipf: Zipf::new(distinct, alpha)?,
            // Mean half-length 5 on a 0..100 domain: selective rects.
            lengths: Pareto::with_mean(5.0)?,
            seed,
        })
    }

    /// Number of subscriptions generated.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Size of the distinct-template pool.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// The finite event-space bounds (`[0, 100]` per dimension).
    pub fn bounds(&self) -> Rect {
        Rect::new(
            (0..self.dim)
                .map(|_| Interval::new(0.0, DOMAIN).expect("static bounds"))
                .collect(),
        )
    }

    /// One template rectangle: uniform center, Pareto-capped
    /// half-length per dimension, clipped to the domain.
    fn template(&self, rng: &mut StdRng) -> Rect {
        Rect::new(
            (0..self.dim)
                .map(|_| {
                    let center: f64 = rng.gen_range(1.0..DOMAIN - 1.0);
                    let half = self.lengths.sample_capped(rng, DOMAIN / 2.0).max(0.5);
                    let lo = (center - half).max(0.0);
                    let hi = (center + half).min(DOMAIN);
                    Interval::new(lo, hi).expect("half >= 0.5 keeps lo < hi")
                })
                .collect(),
        )
    }

    /// Generates the population and a uniform event stream.
    ///
    /// Subscribers picking the same template share its rectangle
    /// bit-for-bit. Nodes are assigned round-robin over
    /// `population.isqrt().max(1)` stubs so several subscribers share
    /// each node, as in the paper's stub-level placement.
    pub fn generate(&self, num_events: usize) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let templates: Vec<Rect> = (0..self.distinct)
            .map(|_| self.template(&mut rng))
            .collect();
        let num_nodes = (self.population as f64).sqrt() as usize;
        let num_nodes = num_nodes.max(1);
        let subscriptions: Vec<Subscription> = (0..self.population)
            .map(|i| {
                let rank = self.zipf.sample(&mut rng);
                Subscription {
                    node: NodeId(i % num_nodes),
                    rect: templates[rank - 1].clone(),
                }
            })
            .collect();
        let events: Vec<Event> = (0..num_events)
            .map(|i| Event {
                publisher: NodeId(i % num_nodes),
                point: Point::new((0..self.dim).map(|_| rng.gen_range(0.0..DOMAIN)).collect()),
            })
            .collect();
        Workload {
            bounds: self.bounds(),
            suggested_bins: vec![32; self.dim],
            subscriptions,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn key(r: &Rect) -> Vec<(u64, u64)> {
        r.intervals()
            .iter()
            .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
            .collect()
    }

    #[test]
    fn population_and_events_have_requested_sizes() {
        let w = NearDupModel::new(5_000, 100, 2, 1).unwrap().generate(500);
        assert_eq!(w.subscriptions.len(), 5_000);
        assert_eq!(w.events.len(), 500);
        assert_eq!(w.dim(), 2);
    }

    #[test]
    fn realized_distinct_count_is_bounded_by_pool() {
        let w = NearDupModel::new(20_000, 250, 2, 2).unwrap().generate(0);
        let mut counts: HashMap<Vec<(u64, u64)>, usize> = HashMap::new();
        for s in &w.subscriptions {
            *counts.entry(key(&s.rect)).or_insert(0) += 1;
        }
        assert!(counts.len() <= 250, "realized {} distinct", counts.len());
        // Zipf head: the most popular template dominates — it should
        // hold far more than the uniform share of 20000/250 = 80.
        let max = counts.values().copied().max().unwrap();
        assert!(max > 800, "head template only has {max} copies");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = NearDupModel::new(1_000, 50, 3, 9).unwrap();
        let a = m.generate(100);
        let b = m.generate(100);
        assert_eq!(a.subscriptions, b.subscriptions);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn rects_and_events_stay_inside_bounds() {
        let w = NearDupModel::new(2_000, 64, 2, 3).unwrap().generate(2_000);
        for s in &w.subscriptions {
            for iv in s.rect.intervals() {
                assert!(iv.lo() >= 0.0 && iv.hi() <= DOMAIN && iv.lo() < iv.hi());
            }
        }
        for e in &w.events {
            assert!(w.bounds.contains(&e.point));
        }
    }

    #[test]
    fn empty_pool_is_rejected() {
        assert!(NearDupModel::new(10, 0, 2, 1).is_err());
        assert!(NearDupModel::with_alpha(10, 5, 2, 0.0, 1).is_err());
    }
}
