//! The Section 5.1 evaluation workload: a stock-market-like model on the
//! 600-node network.
//!
//! Subscriptions are `{bst, name, quote, volume}` rectangles:
//!
//! * `bst` (buy/sell/transaction) takes values B, S, T with
//!   probabilities 0.4 / 0.4 / 0.2 — an equality predicate;
//! * the `name` interval's center is normal around a *transit-block
//!   specific* mean (3, 10 or 17) with σ = 4, its length Zipf —
//!   regionalism of interest;
//! * `quote` and `volume` follow the four-shape parametric family
//!   (don't-care / left-ended / right-ended / two-sided with Pareto
//!   length) with the paper's parameter rows.
//!
//! Subscribers are spread 40/30/30% over the three transit blocks, then
//! Zipf over stubs, then Zipf over nodes. Publications are mixtures of
//! 1, 4 or 9 multivariate normals.

use geometry::{Interval, Point, Rect};
use netsim::Topology;
use rand::Rng;

use crate::density::{NormalMixture, PublicationDensity};
use crate::dist::{Normal, Pareto, Zipf};
use crate::placement::{uniform_stub_placement, zipf_placement};
use crate::types::{Event, Subscription, Workload};

/// Number of hot spots in the publication mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublicationModes {
    /// Single multivariate normal.
    One,
    /// 2 × 2 mixture on the middle dimensions.
    Four,
    /// 3 × 3 mixture on the middle dimensions.
    Nine,
}

/// Per-dimension sampling mixtures for the chosen mode count
/// (Section 5.1: dimensions 1 and 4 are fixed at `(1,1)` and `(9,6)`;
/// the middle dimensions carry the modes).
fn publication_mixture(modes: PublicationModes) -> PublicationDensity {
    let mix = |parts: &[(f64, f64, f64)]| {
        NormalMixture::new(
            parts
                .iter()
                .map(|&(w, m, sd)| (w, Normal::new(m, sd)))
                .collect(),
        )
    };
    let dims = match modes {
        PublicationModes::One => vec![
            NormalMixture::single(1.0, 1.0),
            NormalMixture::single(10.0, 6.0),
            NormalMixture::single(9.0, 2.0),
            NormalMixture::single(9.0, 6.0),
        ],
        PublicationModes::Four => vec![
            NormalMixture::single(1.0, 1.0),
            mix(&[(0.5, 12.0, 3.0), (0.5, 6.0, 2.0)]),
            mix(&[(0.5, 4.0, 2.0), (0.5, 16.0, 2.0)]),
            NormalMixture::single(9.0, 6.0),
        ],
        PublicationModes::Nine => vec![
            NormalMixture::single(1.0, 1.0),
            mix(&[(0.3, 4.0, 3.0), (0.4, 11.0, 3.0), (0.3, 18.0, 3.0)]),
            mix(&[(0.3, 4.0, 3.0), (0.4, 9.0, 3.0), (0.3, 16.0, 3.0)]),
            NormalMixture::single(9.0, 6.0),
        ],
    };
    PublicationDensity::new(dims)
}

/// One parametric row for the `quote` / `volume` predicate family.
#[derive(Debug, Clone, Copy)]
struct ParametricRow {
    q0: f64,
    q1: f64,
    q2: f64,
    left_end: Normal,
    right_end: Normal,
    center: Normal,
    length: Pareto,
}

impl ParametricRow {
    fn sample(&self, rng: &mut impl Rng, cap: f64) -> Interval {
        let u: f64 = rng.gen();
        if u < self.q0 {
            Interval::all()
        } else if u < self.q0 + self.q1 {
            Interval::greater_than(self.left_end.sample(rng))
        } else if u < self.q0 + self.q1 + self.q2 {
            Interval::at_most(self.right_end.sample(rng))
        } else {
            let c = self.center.sample(rng);
            let len = self.length.sample_capped(rng, cap);
            Interval::from_unordered(c - len / 2.0, c + len / 2.0)
        }
    }
}

/// The Section 5.1 stock-market workload model.
///
/// # Examples
///
/// ```
/// use netsim::{Topology, TransitStubParams};
/// use rand::{rngs::StdRng, SeedableRng};
/// use workload::{PublicationModes, StockModel};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let topo = Topology::generate(&TransitStubParams::paper_section51(), &mut rng);
/// let w = StockModel::default().with_sizes(200, 50).generate(&topo, &mut rng);
/// assert_eq!(w.subscriptions.len(), 200);
/// assert_eq!(w.events.len(), 50);
/// # let _ = PublicationModes::One;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StockModel {
    /// Number of subscriptions (1000 in the paper).
    pub num_subscriptions: usize,
    /// Number of publication events to generate.
    pub num_events: usize,
    /// Number of publication hot spots.
    pub modes: PublicationModes,
    /// Zipf exponent for stub / node placement and name-interval length.
    pub zipf_alpha: f64,
    /// Per-block subscription weights (40/30/30% in the paper).
    pub block_weights: Vec<f64>,
    /// Standard deviation of the name-interval center around the
    /// block-specific mean (4 in the paper). Larger values weaken the
    /// *regionalism of interest* — the assumption the paper's Section 3
    /// argues multicast benefits hinge on.
    pub name_sd: f64,
}

impl Default for StockModel {
    fn default() -> Self {
        StockModel {
            num_subscriptions: 1000,
            num_events: 500,
            modes: PublicationModes::One,
            zipf_alpha: 1.0,
            block_weights: vec![0.4, 0.3, 0.3],
            name_sd: 4.0,
        }
    }
}

/// Name-mean per transit block (Section 5.1: "centered around the points
/// specific to transit block number (3, 10 and 17)").
const NAME_MEANS: [f64; 3] = [3.0, 10.0, 17.0];
/// Value domain maximum for name / quote / volume.
const VALUE_MAX: f64 = 20.0;

impl StockModel {
    /// Returns a copy with the given subscription and event counts.
    pub fn with_sizes(mut self, subscriptions: usize, events: usize) -> Self {
        self.num_subscriptions = subscriptions;
        self.num_events = events;
        self
    }

    /// Returns a copy with the given number of publication modes.
    pub fn with_modes(mut self, modes: PublicationModes) -> Self {
        self.modes = modes;
        self
    }

    /// Returns a copy with the given name-center spread (regionalism
    /// of interest: small = strongly regional, large = diffuse).
    ///
    /// # Panics
    ///
    /// Panics if `name_sd` is negative or NaN.
    pub fn with_name_sd(mut self, name_sd: f64) -> Self {
        assert!(name_sd >= 0.0, "name_sd must be non-negative");
        self.name_sd = name_sd;
        self
    }

    /// Returns a copy with the given Zipf exponent for stub/node
    /// placement and name-interval lengths (1.0 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is non-positive or NaN.
    pub fn with_zipf_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "zipf alpha must be positive");
        self.zipf_alpha = alpha;
        self
    }

    /// Returns a copy with the given per-block subscription weights
    /// (40/30/30% in the paper; adapted to the topology's block count
    /// at generation time).
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or not all positive.
    pub fn with_block_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(
            !weights.is_empty() && weights.iter().all(|&w| w > 0.0),
            "block weights must be positive"
        );
        self.block_weights = weights;
        self
    }

    /// The analytic publication density this model samples events from.
    ///
    /// The paper's clustering framework weighs cells and regions by the
    /// publication probability `p_p`; because the models are products
    /// of per-dimension normal mixtures, the mass of any rectangle has
    /// a closed form — use this instead of an empirical estimate.
    pub fn publication_density(&self) -> PublicationDensity {
        publication_mixture(self.modes)
    }

    /// Generates the workload on `topo`.
    ///
    /// `block_weights` are adapted to the topology: truncated when the
    /// topology has fewer transit blocks than weights, padded with the
    /// mean weight when it has more.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no stub nodes.
    pub fn generate(&self, topo: &Topology, rng: &mut impl Rng) -> Workload {
        let mut block_weights = self.block_weights.clone();
        let mean = block_weights.iter().sum::<f64>() / block_weights.len().max(1) as f64;
        block_weights.resize(topo.num_blocks(), mean);
        let quote_row = ParametricRow {
            q0: 0.15,
            q1: 0.1,
            q2: 0.1,
            left_end: Normal::new(9.0, 1.0),
            right_end: Normal::new(9.0, 1.0),
            center: Normal::new(9.0, 2.0),
            length: Pareto::new(4.0, 1.0).expect("paper parameters are valid"),
        };
        let volume_row = ParametricRow {
            q0: 0.35,
            ..quote_row
        };
        let name_len_zipf =
            Zipf::new(VALUE_MAX as usize, self.zipf_alpha).expect("positive support");

        // Subscriber placement: blocks → stubs (Zipf) → nodes (Zipf).
        let nodes = zipf_placement(
            topo,
            self.num_subscriptions,
            &block_weights,
            self.zipf_alpha,
            rng,
        );
        let mut subscriptions = Vec::with_capacity(self.num_subscriptions);
        for node in nodes {
            let block = topo.block_of(node);
            // bst: equality on B/S/T with probabilities 0.4/0.4/0.2.
            let u: f64 = rng.gen();
            let bst = if u < 0.4 {
                0
            } else if u < 0.8 {
                1
            } else {
                2
            };
            // name: center normal around the block-specific mean,
            // Zipf length.
            let center =
                Normal::new(NAME_MEANS[block.min(NAME_MEANS.len() - 1)], self.name_sd).sample(rng);
            let len = name_len_zipf.sample(rng) as f64;
            let name = Interval::from_unordered(center - len / 2.0, center + len / 2.0);
            let rect = Rect::new(vec![
                Interval::equals_int(bst),
                name,
                quote_row.sample(rng, VALUE_MAX),
                volume_row.sample(rng, VALUE_MAX),
            ]);
            subscriptions.push(Subscription { node, rect });
        }

        // Publications: mixture of multivariate normals, published from
        // uniform random stub nodes, clamped into the grid bounds.
        let mixture = publication_mixture(self.modes);
        let publishers = uniform_stub_placement(topo, self.num_events, rng);
        let events: Vec<Event> = publishers
            .into_iter()
            .map(|publisher| {
                // Clamp just inside the open lower bound of the grid.
                let coords: Vec<f64> = mixture
                    .sample(rng)
                    .into_iter()
                    .enumerate()
                    .map(|(d, v)| v.clamp(-0.99, bounds_hi(d)))
                    .collect();
                Event {
                    publisher,
                    point: Point::new(coords),
                }
            })
            .collect();

        let bounds = Rect::new(vec![
            Interval::new(-1.0, bounds_hi(0)).expect("valid bounds"),
            Interval::new(-1.0, bounds_hi(1)).expect("valid bounds"),
            Interval::new(-1.0, bounds_hi(2)).expect("valid bounds"),
            Interval::new(-1.0, bounds_hi(3)).expect("valid bounds"),
        ]);
        // One bin per bst value; width-2 bins on the value dimensions.
        // Unit-width bins would give a 42k-cell grid whose popular
        // region cannot be covered by a few thousand kept hyper-cells
        // (the paper's "number of rectangles" budget); width 2 keeps
        // rasterization over-approximation small relative to the mean
        // interval length (~5-10) while letting the budget cover the
        // publication mass.
        let suggested_bins = vec![4, 11, 11, 11];

        Workload {
            bounds,
            suggested_bins,
            subscriptions,
            events,
        }
    }
}

/// Upper grid bound per dimension: bst ids live in 0..=2 (bound 3); value
/// attributes in 0..=20 with a little headroom for normal tails (21).
fn bounds_hi(d: usize) -> f64 {
    if d == 0 {
        3.0
    } else {
        21.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;
    use rand::prelude::*;

    fn topo() -> Topology {
        Topology::generate(
            &TransitStubParams::paper_section51(),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn sizes_and_dims() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(2);
        let w = StockModel::default()
            .with_sizes(1000, 200)
            .generate(&t, &mut rng);
        assert_eq!(w.subscriptions.len(), 1000);
        assert_eq!(w.events.len(), 200);
        assert_eq!(w.dim(), 4);
    }

    #[test]
    fn bst_is_unit_equality_with_expected_frequencies() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let w = StockModel::default()
            .with_sizes(5000, 1)
            .generate(&t, &mut rng);
        let mut counts = [0usize; 3];
        for s in &w.subscriptions {
            let iv = s.rect.interval(0);
            assert_eq!(iv.length(), 1.0, "bst predicate must be unit equality");
            let v = iv.hi() as usize;
            assert!(v <= 2);
            counts[v] += 1;
        }
        let f = |i: usize| counts[i] as f64 / 5000.0;
        assert!((f(0) - 0.4).abs() < 0.03, "B {}", f(0));
        assert!((f(1) - 0.4).abs() < 0.03, "S {}", f(1));
        assert!((f(2) - 0.2).abs() < 0.03, "T {}", f(2));
    }

    #[test]
    fn name_centers_track_block_means() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(4);
        let w = StockModel::default()
            .with_sizes(6000, 1)
            .generate(&t, &mut rng);
        // Average name-interval center per block ≈ the block mean.
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for s in &w.subscriptions {
            let b = t.block_of(s.node);
            let iv = s.rect.interval(1);
            sums[b] += (iv.lo() + iv.hi()) / 2.0;
            counts[b] += 1;
        }
        for b in 0..3 {
            let mean = sums[b] / counts[b] as f64;
            assert!(
                (mean - NAME_MEANS[b]).abs() < 0.5,
                "block {b}: center mean {mean} vs {}",
                NAME_MEANS[b]
            );
        }
    }

    #[test]
    fn volume_has_more_dont_cares_than_quote() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        let w = StockModel::default()
            .with_sizes(6000, 1)
            .generate(&t, &mut rng);
        let stars = |d: usize| {
            w.subscriptions
                .iter()
                .filter(|s| *s.rect.interval(d) == Interval::all())
                .count() as f64
                / 6000.0
        };
        assert!((stars(2) - 0.15).abs() < 0.03, "quote stars {}", stars(2));
        assert!((stars(3) - 0.35).abs() < 0.03, "volume stars {}", stars(3));
    }

    #[test]
    fn builder_knobs_round_trip() {
        let m = StockModel::default()
            .with_zipf_alpha(1.5)
            .with_block_weights(vec![0.5, 0.5])
            .with_name_sd(2.0);
        assert_eq!(m.zipf_alpha, 1.5);
        assert_eq!(m.block_weights, vec![0.5, 0.5]);
        assert_eq!(m.name_sd, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_bad_alpha() {
        let _ = StockModel::default().with_zipf_alpha(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_bad_weights() {
        let _ = StockModel::default().with_block_weights(vec![0.5, 0.0]);
    }

    #[test]
    fn higher_alpha_concentrates_placement() {
        let t = topo();
        let count_top_stub = |alpha: f64| {
            let mut rng = StdRng::seed_from_u64(10);
            let w = StockModel::default()
                .with_sizes(3000, 1)
                .with_zipf_alpha(alpha)
                .generate(&t, &mut rng);
            // Subscriptions on the most-loaded stub.
            let mut per_stub = std::collections::HashMap::new();
            for s in &w.subscriptions {
                *per_stub.entry(t.stub_of(s.node).unwrap()).or_insert(0usize) += 1;
            }
            per_stub.values().copied().max().unwrap_or(0)
        };
        assert!(count_top_stub(2.0) > count_top_stub(0.5));
    }

    #[test]
    fn events_fall_inside_bounds() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(6);
        for modes in [
            PublicationModes::One,
            PublicationModes::Four,
            PublicationModes::Nine,
        ] {
            let w = StockModel::default()
                .with_modes(modes)
                .with_sizes(100, 500)
                .generate(&t, &mut rng);
            for e in &w.events {
                assert!(w.bounds.contains(&e.point), "{:?} {}", modes, e.point);
            }
        }
    }

    #[test]
    fn four_mode_mixture_is_bimodal_on_dim2() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(7);
        let w = StockModel::default()
            .with_modes(PublicationModes::Four)
            .with_sizes(10, 4000)
            .generate(&t, &mut rng);
        // Dim 2 mixes the well-separated N(4,2) and N(16,2): the region
        // between the modes (9.5..10.5) must be less populated than the
        // modes themselves.
        let count_in = |lo: f64, hi: f64| {
            w.events
                .iter()
                .filter(|e| e.point[2] > lo && e.point[2] <= hi)
                .count()
        };
        let valley = count_in(9.5, 10.5);
        let peak_low = count_in(3.5, 4.5);
        let peak_high = count_in(15.5, 16.5);
        assert!(valley < peak_low, "valley {valley} vs low peak {peak_low}");
        assert!(
            valley < peak_high,
            "valley {valley} vs high peak {peak_high}"
        );
    }

    #[test]
    fn some_events_match_some_subscriptions() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(8);
        let w = StockModel::default()
            .with_sizes(1000, 300)
            .generate(&t, &mut rng);
        let mut matched = Vec::new();
        let matched_events = w
            .events
            .iter()
            .filter(|e| {
                w.matching_into(&e.point, &mut matched);
                !matched.is_empty()
            })
            .count();
        assert!(
            matched_events > 50,
            "only {matched_events} of 300 events matched anything"
        );
    }
}
