//! Random distributions used by the paper's workload models: Normal
//! (Box–Muller), Zipf (rank-frequency) and Pareto interval lengths.
//!
//! These are implemented by hand rather than pulled from a distributions
//! crate so the formulas can be audited directly against the paper's
//! parameter tables.

use rand::Rng;

/// A normal distribution `N(mean, sd)` sampled with the Box–Muller
/// transform.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use workload::Normal;
///
/// let n = Normal::new(9.0, 2.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N(mean, sd)`.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative or either parameter is NaN.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(!mean.is_nan() && sd >= 0.0, "invalid normal parameters");
        Normal { mean, sd }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Box–Muller; u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.sd * z
    }

    /// Draws one sample, clamped to `[lo, hi]`.
    pub fn sample_clamped(&self, rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }

    /// The cumulative distribution function `P(X <= x)`, via the
    /// Abramowitz–Stegun erf approximation (|error| < 1.5e-7 — far below
    /// the noise of any experiment here).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Abramowitz–Stegun formula 7.1.26.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// A Zipf distribution over ranks `1..=n`: `P(k) ∝ 1 / k^alpha`.
///
/// The paper uses "Zipf-like" distributions for the number of
/// subscriptions per stub, per node, and for the popularity of stock
/// names. Sampling is by binary search over the precomputed CDF.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use workload::Zipf;
///
/// let z = Zipf::new(10, 1.0)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = z.sample(&mut rng);
/// assert!((1..=10).contains(&rank));
/// # Ok::<(), workload::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k-1] = P(rank <= k)`.
    cdf: Vec<f64>,
    alpha: f64,
}

/// Error constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// A Zipf distribution needs at least one rank.
    EmptySupport,
    /// A shape/exponent parameter was non-positive or NaN.
    InvalidShape,
    /// A scale parameter was non-positive or NaN.
    InvalidScale,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::EmptySupport => write!(f, "distribution support is empty"),
            DistError::InvalidShape => write!(f, "shape parameter must be positive"),
            DistError::InvalidScale => write!(f, "scale parameter must be positive"),
        }
    }
}

impl std::error::Error for DistError {}

impl Zipf {
    /// Creates a Zipf distribution over ranks `1..=n` with exponent
    /// `alpha > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySupport`] when `n == 0` and
    /// [`DistError::InvalidShape`] when `alpha` is non-positive or NaN.
    pub fn new(n: usize, alpha: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::EmptySupport);
        }
        // `!(alpha > 0.0)` deliberately catches NaN as well.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(alpha > 0.0) {
            return Err(DistError::InvalidShape);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf, alpha })
    }

    /// Number of ranks.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of rank `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k), "rank out of range");
        if k == 1 {
            // lint: allow(no-literal-index): k's range-assert implies a non-empty cdf
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF has no NaN"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// A Pareto distribution with scale `c > 0` and shape `alpha > 0`:
/// `P(X > x) = (c / x)^alpha` for `x >= c`.
///
/// The paper draws subscription-interval *lengths* from a "Pareto-like
/// distribution with a given mean"; the Section 5.1 table gives
/// `(c, alpha)` pairs directly. Because interval lengths live inside a
/// bounded attribute domain, [`Pareto::sample_capped`] truncates the
/// unbounded tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidScale`] / [`DistError::InvalidShape`]
    /// for non-positive or NaN parameters.
    pub fn new(scale: f64, shape: f64) -> Result<Self, DistError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(scale > 0.0) {
            return Err(DistError::InvalidScale);
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(shape > 0.0) {
            return Err(DistError::InvalidShape);
        }
        Ok(Pareto { scale, shape })
    }

    /// A Pareto with shape 2 whose mean equals `mean` (the Section 3
    /// table specifies lengths by mean only). For shape 2 the mean is
    /// `2c`, so `c = mean / 2`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidScale`] when `mean` is non-positive.
    pub fn with_mean(mean: f64) -> Result<Self, DistError> {
        Pareto::new(mean / 2.0, 2.0)
    }

    /// The scale `c` (minimum value).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shape `alpha`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Draws a sample via inverse transform: `c / U^(1/alpha)`.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale / u.powf(1.0 / self.shape)
    }

    /// Draws a sample truncated to at most `cap` (attribute domains are
    /// bounded, e.g. 0..20).
    pub fn sample_capped(&self, rng: &mut impl Rng, cap: f64) -> f64 {
        self.sample(rng).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments() {
        let n = Normal::new(9.0, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 9.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let n = Normal::new(0.0, 10.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = n.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid normal")]
    fn normal_rejects_negative_sd() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn zipf_construction_errors() {
        assert_eq!(Zipf::new(0, 1.0), Err(DistError::EmptySupport));
        assert_eq!(Zipf::new(5, 0.0), Err(DistError::InvalidShape));
        assert_eq!(Zipf::new(5, f64::NAN), Err(DistError::InvalidShape));
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(20, 1.0).unwrap();
        let total: f64 = (1..=20).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..20 {
            assert!(z.pmf(k) > z.pmf(k + 1));
        }
    }

    #[test]
    fn zipf_empirical_frequencies_match_pmf() {
        let z = Zipf::new(10, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for k in 1..=10 {
            let emp = counts[k - 1] as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn zipf_rank1_most_frequent() {
        let z = Zipf::new(50, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut ones = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        // P(rank 1) ≈ 0.22 at alpha = 1.2, n = 50.
        assert!(ones > 1500, "rank-1 count {ones}");
    }

    #[test]
    fn pareto_construction_errors() {
        assert_eq!(Pareto::new(0.0, 1.0), Err(DistError::InvalidScale));
        assert_eq!(Pareto::new(1.0, 0.0), Err(DistError::InvalidShape));
        assert_eq!(Pareto::with_mean(-4.0), Err(DistError::InvalidScale));
    }

    #[test]
    fn pareto_samples_at_least_scale() {
        let p = Pareto::new(4.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) >= 4.0);
        }
    }

    #[test]
    fn pareto_with_mean_has_that_mean() {
        let p = Pareto::with_mean(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 200_000;
        let mean = (0..n).map(|_| p.sample(&mut rng)).sum::<f64>() / n as f64;
        // Shape-2 Pareto has finite mean but heavy tail; allow slack.
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pareto_capped_respects_cap() {
        let p = Pareto::new(4.0, 0.5).unwrap(); // heavy tail
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(p.sample_capped(&mut rng, 20.0) <= 20.0);
        }
    }
}
