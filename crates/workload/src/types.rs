//! Core workload records: subscriptions, publication events, and the
//! bundle of both that the simulator evaluates.

use geometry::{Point, Rect};
use netsim::NodeId;

/// A subscription: an interest rectangle registered at a network node.
///
/// The paper indexes subscriptions `1..k`; a subscriber may own several
/// rectangles, in which case the same node id appears more than once.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// The network node the subscriber sits on.
    pub node: NodeId,
    /// The interest rectangle in event space.
    pub rect: Rect,
}

/// A publication event: a point in event space originating at a
/// publisher node.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The node the event is published from.
    pub publisher: NodeId,
    /// The event's position in the event space.
    pub point: Point,
}

/// A complete generated workload: the subscription population, the event
/// stream, and the finite event-space bounds the grid framework should
/// discretize.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Finite bounds containing (after clamping) all event coordinates.
    pub bounds: Rect,
    /// Suggested grid resolution per dimension (matching the natural
    /// granularity of the generating model, e.g. one bin per integer
    /// attribute value).
    pub suggested_bins: Vec<usize>,
    /// All subscriptions (index = subscription id).
    pub subscriptions: Vec<Subscription>,
    /// The publication event stream.
    pub events: Vec<Event>,
}

impl Workload {
    /// Number of dimensions of the event space.
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// Indices of subscriptions matching the event point (brute force;
    /// the ground truth that clustering-based matchers approximate).
    pub fn matching_subscriptions(&self, point: &Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.matching_into(point, &mut out);
        out
    }

    /// Buffer-reusing variant of
    /// [`matching_subscriptions`](Self::matching_subscriptions): clears
    /// `out` and fills it with the matching subscription indices in
    /// increasing order. Per-event loops reuse one buffer across the
    /// stream instead of allocating a fresh `Vec` per event.
    pub fn matching_into(&self, point: &Point, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.subscriptions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.rect.contains(point))
                .map(|(i, _)| i),
        );
    }

    /// The deduplicated, sorted set of nodes interested in the event
    /// point (several matching subscriptions can share a node).
    pub fn interested_nodes(&self, point: &Point) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .subscriptions
            .iter()
            .filter(|s| s.rect.contains(point))
            .map(|s| s.node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The node hosting subscription `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_of(&self, i: usize) -> NodeId {
        self.subscriptions[i].node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;

    fn rect(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn workload() -> Workload {
        Workload {
            bounds: rect(0.0, 10.0),
            suggested_bins: vec![10],
            subscriptions: vec![
                Subscription {
                    node: NodeId(1),
                    rect: rect(0.0, 5.0),
                },
                Subscription {
                    node: NodeId(2),
                    rect: rect(3.0, 8.0),
                },
                Subscription {
                    node: NodeId(1),
                    rect: rect(7.0, 10.0),
                },
            ],
            events: vec![],
        }
    }

    #[test]
    fn matching_subscriptions_brute_force() {
        let w = workload();
        assert_eq!(w.matching_subscriptions(&Point::new(vec![4.0])), vec![0, 1]);
        assert_eq!(w.matching_subscriptions(&Point::new(vec![9.0])), vec![2]);
        assert!(w.matching_subscriptions(&Point::new(vec![-1.0])).is_empty());
    }

    #[test]
    fn matching_into_reuses_and_clears_the_buffer() {
        let w = workload();
        let mut buf = vec![42, 43];
        w.matching_into(&Point::new(vec![4.0]), &mut buf);
        assert_eq!(buf, vec![0, 1]);
        w.matching_into(&Point::new(vec![-1.0]), &mut buf);
        assert!(buf.is_empty());
        for x in [4.0, 9.0, -1.0, 7.5] {
            let p = Point::new(vec![x]);
            w.matching_into(&p, &mut buf);
            assert_eq!(buf, w.matching_subscriptions(&p));
        }
    }

    #[test]
    fn interested_nodes_dedupes() {
        let mut w = workload();
        // Both node-1 subscriptions match at 4.5? No: rects are (0,5] and
        // (7,10]; make one overlapping event instead.
        w.subscriptions.push(Subscription {
            node: NodeId(1),
            rect: rect(4.0, 6.0),
        });
        let nodes = w.interested_nodes(&Point::new(vec![4.5]));
        assert_eq!(nodes, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn accessors() {
        let w = workload();
        assert_eq!(w.dim(), 1);
        assert_eq!(w.node_of(1), NodeId(2));
    }
}
