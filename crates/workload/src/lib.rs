//! Workload generators reproducing the evaluation models of the
//! ICDCS 2002 subscription-clustering paper.
//!
//! Two models are provided:
//!
//! * [`Section3Model`] — the preliminary-analysis workload (Tables 1–2):
//!   a regional attribute plus three integer value attributes with
//!   uniform or gaussian predicates;
//! * [`StockModel`] — the Section 5.1 evaluation workload (Figures
//!   7–11): `{bst, name, quote, volume}` stock subscriptions with
//!   block-regional name interest, Zipf placement, and 1/4/9-mode
//!   publication mixtures.
//!
//! Supporting distributions ([`Normal`], [`Zipf`], [`Pareto`]) are
//! implemented by hand so each formula is auditable against the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod covering;
mod density;
mod dist;
pub mod io;
mod neardup;
mod placement;
mod section3;
mod stock;
mod types;

pub use chaos::{ChaosConfig, ChaosEpoch, ChaosScenario, ChurnOp};
pub use covering::{prune_covered, PruneOutcome};
pub use density::{NormalMixture, PublicationDensity};
pub use dist::{DistError, Normal, Pareto, Zipf};
pub use neardup::NearDupModel;
pub use placement::{uniform_stub_placement, zipf_placement};
pub use section3::{PredicateDist, Section3Model};
pub use stock::{PublicationModes, StockModel};
pub use types::{Event, Subscription, Workload};
