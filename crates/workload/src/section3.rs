//! The preliminary-analysis workload of Section 3 of the paper.
//!
//! Events live in 4 dimensions. Dimension 0 is the *regional attribute*:
//! every publication carries the identifier of its originating stub, and
//! a subscription constrains it to the subscriber's own stub with
//! probability equal to the *degree of regionalism* (0.4 in Table 1,
//! 0 in Table 2). The other three attributes take integer values in
//! 0..=20 with either uniform or gaussian predicates per the parameter
//! table in Section 3.

use geometry::{Interval, Point, Rect};
use netsim::Topology;
use rand::Rng;

use crate::dist::{Normal, Pareto};
use crate::placement::uniform_stub_placement;
use crate::types::{Event, Subscription, Workload};

/// Shape of the value predicates on dimensions 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateDist {
    /// Predicate present with probability `0.98 · 0.78^(d-1)`, interval
    /// ends drawn uniformly from `[0, 20]`.
    Uniform,
    /// Per-dimension `(q1, q2, q3, one-sided, center, length)` parameters
    /// from the Section 3 table (simulating stock name / price / volume).
    Gaussian,
}

/// One row of the Section 3 gaussian parameter table.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GaussianRow {
    /// Probability of a `*` (don't-care) predicate.
    q1: f64,
    /// Probability of a left-ended interval `(n, +inf)`.
    q2: f64,
    /// Probability of a right-ended interval `(-inf, n]`.
    q3: f64,
    /// End of a left-ended interval.
    left_end: Normal,
    /// End of a right-ended interval.
    right_end: Normal,
    /// Center of a two-sided interval.
    center: Normal,
    /// Scale `c` of the Pareto-like length of a two-sided interval.
    ///
    /// The paper's table labels this column "mean"; its Section 5.1
    /// counterpart uses `(c, α) = (4, 1)`, and a shape-1 Pareto has no
    /// finite mean — so we read the column as the scale of a shape-1
    /// Pareto (capped at the domain width), which also reproduces the
    /// paper's observation that gaussian workloads match *more* events
    /// than uniform ones.
    length_scale: f64,
}

/// The three gaussian rows of the paper's table (dimensions 1, 2, 3).
fn gaussian_rows() -> [GaussianRow; 3] {
    [
        GaussianRow {
            q1: 0.1,
            q2: 0.0,
            q3: 0.0,
            left_end: Normal::new(8.0, 2.0),
            right_end: Normal::new(10.0, 2.0),
            center: Normal::new(9.0, 6.0),
            length_scale: 1.0,
        },
        GaussianRow {
            q1: 0.15,
            q2: 0.1,
            q3: 0.1,
            left_end: Normal::new(8.0, 1.0),
            right_end: Normal::new(10.0, 1.0),
            center: Normal::new(9.0, 2.0),
            length_scale: 4.0,
        },
        GaussianRow {
            q1: 0.35,
            q2: 0.1,
            q3: 0.1,
            left_end: Normal::new(8.0, 1.0),
            right_end: Normal::new(10.0, 1.0),
            center: Normal::new(9.0, 2.0),
            length_scale: 4.0,
        },
    ]
}

/// The Section 3 workload model.
///
/// # Examples
///
/// ```
/// use netsim::{Topology, TransitStubParams};
/// use rand::{rngs::StdRng, SeedableRng};
/// use workload::{PredicateDist, Section3Model};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
/// let model = Section3Model {
///     regionalism: 0.4,
///     dist: PredicateDist::Uniform,
///     num_subscriptions: 100,
///     num_events: 50,
/// };
/// let w = model.generate(&topo, &mut rng);
/// assert_eq!(w.subscriptions.len(), 100);
/// assert_eq!(w.events.len(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Section3Model {
    /// Degree of regionalism: the probability that a subscription pins
    /// the regional attribute to the subscriber's own stub.
    pub regionalism: f64,
    /// Shape of the value predicates.
    pub dist: PredicateDist,
    /// Number of subscriptions to generate.
    pub num_subscriptions: usize,
    /// Number of publication events to generate.
    pub num_events: usize,
}

/// Value attributes take integer values 0..=20.
const VALUE_MAX: f64 = 20.0;

impl Section3Model {
    /// Generates the workload on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `regionalism` is outside `[0, 1]` or the topology has
    /// no stub nodes.
    pub fn generate(&self, topo: &Topology, rng: &mut impl Rng) -> Workload {
        assert!(
            (0.0..=1.0).contains(&self.regionalism),
            "regionalism must be a probability"
        );
        let num_stubs = topo.stubs().len();
        let rows = gaussian_rows();

        // Subscribers placed uniformly on stub nodes.
        let nodes = uniform_stub_placement(topo, self.num_subscriptions, rng);
        let mut subscriptions = Vec::with_capacity(self.num_subscriptions);
        for node in nodes {
            let own_stub = topo.stub_of(node).expect("placement returns stub nodes");
            let mut ivs = Vec::with_capacity(4);
            // Dimension 0: regional attribute.
            if rng.gen_bool(self.regionalism) {
                ivs.push(Interval::equals_int(own_stub.index() as i64));
            } else {
                ivs.push(Interval::all());
            }
            // Dimensions 1..=3: value predicates.
            for (d, row) in rows.iter().enumerate().take(3) {
                let iv = match self.dist {
                    PredicateDist::Uniform => {
                        // Present with probability 0.98 · 0.78^d.
                        let p = 0.98 * 0.78f64.powi(d as i32);
                        if rng.gen_bool(p) {
                            let a = rng.gen_range(0.0..=VALUE_MAX);
                            let b = rng.gen_range(0.0..=VALUE_MAX);
                            Interval::from_unordered(a, b)
                        } else {
                            Interval::all()
                        }
                    }
                    PredicateDist::Gaussian => {
                        let u: f64 = rng.gen();
                        if u < row.q1 {
                            Interval::all()
                        } else if u < row.q1 + row.q2 {
                            Interval::greater_than(row.left_end.sample(rng))
                        } else if u < row.q1 + row.q2 + row.q3 {
                            Interval::at_most(row.right_end.sample(rng))
                        } else {
                            let c = row.center.sample(rng);
                            let len = Pareto::new(row.length_scale, 1.0)
                                .expect("positive scale")
                                .sample_capped(rng, VALUE_MAX);
                            Interval::from_unordered(c - len / 2.0, c + len / 2.0)
                        }
                    }
                };
                ivs.push(iv);
            }
            subscriptions.push(Subscription {
                node,
                rect: Rect::new(ivs),
            });
        }

        // Events: published from a uniform random stub node; dimension 0
        // is the originating stub id; value dimensions are integers,
        // uniform or gaussian to match the subscription peaks (the
        // paper's stated assumption that publication density follows
        // subscription density).
        let publishers = uniform_stub_placement(topo, self.num_events, rng);
        let value_normal = Normal::new(9.0, 3.0);
        let events = publishers
            .into_iter()
            .map(|publisher| {
                let stub = topo.stub_of(publisher).expect("publisher is a stub node");
                let mut coords = Vec::with_capacity(4);
                coords.push(stub.index() as f64);
                for _ in 0..3 {
                    let v = match self.dist {
                        PredicateDist::Uniform => rng.gen_range(0..=VALUE_MAX as i64) as f64,
                        PredicateDist::Gaussian => {
                            value_normal.sample_clamped(rng, 0.0, VALUE_MAX).round()
                        }
                    };
                    coords.push(v);
                }
                Event {
                    publisher,
                    point: Point::new(coords),
                }
            })
            .collect();

        // Grid bounds: one bin per stub id on dimension 0 (half-open
        // (-1, num_stubs-1] covers ids 0..num_stubs), one bin per integer
        // value on dimensions 1..=3 ((-1, 20] covers 0..=20).
        let bounds = Rect::new(vec![
            Interval::new(-1.0, num_stubs as f64 - 1.0).expect("valid bounds"),
            Interval::new(-1.0, VALUE_MAX).expect("valid bounds"),
            Interval::new(-1.0, VALUE_MAX).expect("valid bounds"),
            Interval::new(-1.0, VALUE_MAX).expect("valid bounds"),
        ]);
        let suggested_bins = vec![num_stubs, 21, 21, 21];

        Workload {
            bounds,
            suggested_bins,
            subscriptions,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;
    use rand::prelude::*;

    fn topo() -> Topology {
        Topology::generate(
            &TransitStubParams::paper_100_nodes(),
            &mut StdRng::seed_from_u64(1),
        )
    }

    fn model(regionalism: f64, dist: PredicateDist) -> Section3Model {
        Section3Model {
            regionalism,
            dist,
            num_subscriptions: 400,
            num_events: 100,
        }
    }

    #[test]
    fn sizes_and_dims() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(2);
        let w = model(0.4, PredicateDist::Uniform).generate(&t, &mut rng);
        assert_eq!(w.subscriptions.len(), 400);
        assert_eq!(w.events.len(), 100);
        assert_eq!(w.dim(), 4);
        for s in &w.subscriptions {
            assert_eq!(s.rect.dim(), 4);
        }
        for e in &w.events {
            assert_eq!(e.point.dim(), 4);
        }
    }

    #[test]
    fn zero_regionalism_leaves_dim0_unconstrained() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let w = model(0.0, PredicateDist::Uniform).generate(&t, &mut rng);
        for s in &w.subscriptions {
            assert_eq!(*s.rect.interval(0), Interval::all());
        }
    }

    #[test]
    fn regionalism_pins_dim0_to_own_stub() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(4);
        let w = model(1.0, PredicateDist::Uniform).generate(&t, &mut rng);
        for s in &w.subscriptions {
            let stub = t.stub_of(s.node).unwrap();
            let iv = s.rect.interval(0);
            assert!(iv.contains(stub.index() as f64));
            assert_eq!(iv.length(), 1.0);
        }
    }

    #[test]
    fn regionalism_fraction_close_to_parameter() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        let m = Section3Model {
            num_subscriptions: 5000,
            ..model(0.4, PredicateDist::Uniform)
        };
        let w = m.generate(&t, &mut rng);
        let regional = w
            .subscriptions
            .iter()
            .filter(|s| s.rect.interval(0).is_bounded())
            .count();
        let frac = regional as f64 / 5000.0;
        assert!((frac - 0.4).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn uniform_predicate_presence_rates() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(6);
        let m = Section3Model {
            num_subscriptions: 5000,
            ..model(0.0, PredicateDist::Uniform)
        };
        let w = m.generate(&t, &mut rng);
        // Dimension 1 specified with p = 0.98, dimension 3 with
        // p = 0.98·0.78² ≈ 0.596.
        let frac_d = |d: usize| {
            w.subscriptions
                .iter()
                .filter(|s| *s.rect.interval(d) != Interval::all())
                .count() as f64
                / 5000.0
        };
        assert!((frac_d(1) - 0.98).abs() < 0.02, "dim1 {}", frac_d(1));
        assert!((frac_d(3) - 0.596).abs() < 0.03, "dim3 {}", frac_d(3));
    }

    #[test]
    fn gaussian_predicates_have_expected_shapes() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(7);
        let m = Section3Model {
            num_subscriptions: 5000,
            ..model(0.0, PredicateDist::Gaussian)
        };
        let w = m.generate(&t, &mut rng);
        // Dimension 1 has q2 = q3 = 0: no one-sided intervals.
        for s in &w.subscriptions {
            let iv = s.rect.interval(1);
            let one_sided = (iv.lo().is_infinite() && iv.hi().is_finite())
                || (iv.lo().is_finite() && iv.hi().is_infinite());
            assert!(!one_sided, "dim1 must be * or two-sided, got {iv}");
        }
        // Dimension 3 has q1 = 0.35 don't-cares.
        let stars = w
            .subscriptions
            .iter()
            .filter(|s| *s.rect.interval(3) == Interval::all())
            .count() as f64
            / 5000.0;
        assert!((stars - 0.35).abs() < 0.03, "dim3 stars {stars}");
    }

    #[test]
    fn events_carry_origin_stub_and_fall_in_bounds() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(8);
        let w = model(0.4, PredicateDist::Gaussian).generate(&t, &mut rng);
        for e in &w.events {
            let stub = t.stub_of(e.publisher).unwrap();
            assert_eq!(e.point[0], stub.index() as f64);
            assert!(
                w.bounds.contains(&e.point),
                "event {} out of bounds",
                e.point
            );
        }
    }

    #[test]
    fn regional_events_match_regional_subscribers_in_same_stub() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(9);
        // Full regionalism + always-present dim0 predicate: an event can
        // only interest subscribers in its own stub.
        let w = model(1.0, PredicateDist::Uniform).generate(&t, &mut rng);
        let mut matched = Vec::new();
        for e in &w.events {
            let origin = t.stub_of(e.publisher).unwrap();
            w.matching_into(&e.point, &mut matched);
            for &i in &matched {
                let node = w.subscriptions[i].node;
                assert_eq!(t.stub_of(node), Some(origin));
            }
        }
    }
}
