//! Assignment of subscribers (and publishers) to network nodes.
//!
//! Section 5.1 of the paper: subscriptions are split across the three
//! transit blocks with a 40/30/30% breakdown; within a block, a
//! Zipf-like distribution spreads them over stubs; within a stub,
//! another (common) Zipf-like distribution spreads them over nodes.
//! Section 3's preliminary experiments place subscribers uniformly.

use netsim::{NodeId, Topology};
use rand::Rng;

use crate::dist::Zipf;

/// Draws `n` subscriber nodes uniformly at random from the topology's
/// stub nodes (Section 3's placement).
///
/// # Panics
///
/// Panics if the topology has no stub nodes.
pub fn uniform_stub_placement(topo: &Topology, n: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let stub_nodes: Vec<NodeId> = topo.stub_nodes().collect();
    assert!(!stub_nodes.is_empty(), "topology has no stub nodes");
    (0..n)
        .map(|_| stub_nodes[rng.gen_range(0..stub_nodes.len())])
        .collect()
}

/// Draws `n` subscriber nodes following the paper's Section 5.1 scheme:
///
/// 1. pick a transit block with the given `block_weights`;
/// 2. pick a stub within the block from a Zipf over the block's stubs;
/// 3. pick a node within the stub from a (common) Zipf over its nodes.
///
/// `alpha` is the Zipf exponent used at both levels (the paper says only
/// "Zipf-like"; 1.0 is the classic choice).
///
/// # Panics
///
/// Panics if `block_weights.len() != topo.num_blocks()`, if weights do
/// not sum to a positive value, or if some block has no stubs.
pub fn zipf_placement(
    topo: &Topology,
    n: usize,
    block_weights: &[f64],
    alpha: f64,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    assert_eq!(
        block_weights.len(),
        topo.num_blocks(),
        "one weight per transit block"
    );
    let total: f64 = block_weights.iter().sum();
    assert!(total > 0.0, "block weights must sum to a positive value");

    // Per-block stub lists and Zipf distributions.
    let block_stubs: Vec<Vec<&netsim::Stub>> = (0..topo.num_blocks())
        .map(|b| topo.stubs_in_block(b).collect())
        .collect();
    let stub_zipfs: Vec<Zipf> = block_stubs
        .iter()
        .map(|stubs| {
            assert!(!stubs.is_empty(), "every block must have stubs");
            Zipf::new(stubs.len(), alpha).expect("positive support and alpha")
        })
        .collect();
    // The per-node Zipf is "common" across stubs (same size everywhere in
    // our generator).
    let node_zipfs: Vec<Zipf> = block_stubs
        .iter()
        .flat_map(|stubs| stubs.iter().map(|s| s.nodes.len()))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|len| Zipf::new(len, alpha).expect("positive support"))
        .collect();
    let node_zipf_for = |len: usize| -> &Zipf {
        node_zipfs
            .iter()
            .find(|z| z.support() == len)
            .expect("zipf prepared for every stub size")
    };

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // 1. Block by weight.
        let mut u = rng.gen::<f64>() * total;
        let mut block = 0;
        for (b, &w) in block_weights.iter().enumerate() {
            if u < w {
                block = b;
                break;
            }
            u -= w;
            block = b;
        }
        // 2. Stub by Zipf rank.
        let stubs = &block_stubs[block];
        let stub = stubs[stub_zipfs[block].sample(rng) - 1];
        // 3. Node by Zipf rank.
        let node = stub.nodes[node_zipf_for(stub.nodes.len()).sample(rng) - 1];
        out.push(node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;
    use rand::prelude::*;

    fn topo() -> Topology {
        Topology::generate(
            &TransitStubParams::paper_section51(),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn uniform_placement_uses_only_stub_nodes() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(2);
        let nodes = uniform_stub_placement(&t, 500, &mut rng);
        assert_eq!(nodes.len(), 500);
        for n in nodes {
            assert!(t.stub_of(n).is_some(), "{n} is a transit node");
        }
    }

    #[test]
    fn zipf_placement_respects_block_weights() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = zipf_placement(&t, 10_000, &[0.4, 0.3, 0.3], 1.0, &mut rng);
        let mut counts = [0usize; 3];
        for n in &nodes {
            counts[t.block_of(*n)] += 1;
        }
        let f0 = counts[0] as f64 / 10_000.0;
        assert!((f0 - 0.4).abs() < 0.02, "block 0 fraction {f0}");
    }

    #[test]
    fn zipf_placement_is_skewed_within_blocks() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(4);
        let nodes = zipf_placement(&t, 10_000, &[0.4, 0.3, 0.3], 1.0, &mut rng);
        // The rank-1 stub of block 0 must receive more subscriptions than
        // the rank-last stub.
        let stubs: Vec<_> = t.stubs_in_block(0).collect();
        let first = stubs.first().unwrap().id;
        let last = stubs.last().unwrap().id;
        let count_for = |sid| nodes.iter().filter(|&&n| t.stub_of(n) == Some(sid)).count();
        assert!(
            count_for(first) > count_for(last),
            "first {} vs last {}",
            count_for(first),
            count_for(last)
        );
    }

    #[test]
    #[should_panic(expected = "one weight per transit block")]
    fn wrong_weight_count_panics() {
        let t = topo();
        let _ = zipf_placement(&t, 10, &[1.0], 1.0, &mut StdRng::seed_from_u64(0));
    }
}
