//! Seeded chaos scenarios: subscription churn composed with network
//! fault storms, epoch-aligned, for driving the always-on broker loop.
//!
//! A [`ChaosScenario`] glues together the two independent stress axes
//! the repo already models — user churn (subscribe / unsubscribe /
//! resubscribe streams, as replayed by `DynamicClustering`) and
//! network faults ([`FaultSchedule`] epochs of link failures and node
//! crashes) — into one deterministic, epoch-structured storm. Each
//! epoch carries a batch of [`ChurnOp`]s, a burst of publication
//! events, and (implicitly, via the shared schedule) whatever the
//! fault model does to the network in that epoch. Drivers replay the
//! epochs in order: apply churn, translate the epoch's node crashes
//! into forced unsubscribes, rebalance, then publish the events.
//!
//! Everything is derived from one `u64` seed: the same seed always
//! yields the same ops, events and faults, so a concurrent service run
//! can be checked bit-for-bit against a serial oracle replay.

use geometry::{Interval, Point, Rect};
use netsim::{FaultModel, FaultSchedule, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{Event, Subscription, Workload};

/// One subscription-churn operation.
///
/// Targets are *birth ordinals*: index `i` refers to the `i`-th
/// subscription ever created (initial population first, then chaos
/// subscribes in stream order). Ordinals are stable across the whole
/// scenario, matching the slot-id discipline of the dynamic clustering
/// — a driver can map ordinal `i` straight to the id returned by the
/// `i`-th subscribe.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnOp {
    /// Register a new subscription (gets the next birth ordinal).
    Subscribe {
        /// Node hosting the new subscription.
        node: NodeId,
        /// Its interest rectangle.
        rect: Rect,
    },
    /// Remove the subscription with this birth ordinal.
    Unsubscribe {
        /// Birth ordinal of the victim.
        target: usize,
    },
    /// Replace the rectangle of the subscription with this ordinal.
    Resubscribe {
        /// Birth ordinal of the subscription changing interest.
        target: usize,
        /// Its new rectangle.
        rect: Rect,
    },
}

/// One epoch of the storm: churn first, then events, under whatever
/// network state the epoch's faults produce.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEpoch {
    /// Churn ops to apply before this epoch's rebalance.
    pub churn: Vec<ChurnOp>,
    /// Events published during the epoch.
    pub events: Vec<Event>,
}

/// Shape parameters of a generated [`ChaosScenario`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of epochs (also forced onto the fault model).
    pub epochs: usize,
    /// Churn ops drawn per epoch.
    pub churn_per_epoch: usize,
    /// Events drawn per epoch.
    pub events_per_epoch: usize,
    /// Among churn ops: probability a given op is a fresh subscribe
    /// (the remainder splits evenly between unsubscribe and
    /// resubscribe of a live subscription).
    pub subscribe_fraction: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            epochs: 6,
            churn_per_epoch: 12,
            events_per_epoch: 40,
            subscribe_fraction: 0.4,
        }
    }
}

/// A fully materialized, seed-deterministic chaos storm.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// The initial (pre-storm) subscription population.
    pub initial: Vec<Subscription>,
    /// Event-space bounds every rectangle and event point lies in.
    pub bounds: Rect,
    /// The epoch stream.
    pub epochs: Vec<ChaosEpoch>,
    /// The fault storm, with exactly `epochs.len()` epochs.
    pub faults: FaultSchedule,
    /// The seed everything was derived from.
    pub seed: u64,
}

/// A random sub-rectangle of `bounds` (positive volume in every
/// dimension).
fn random_rect(bounds: &Rect, rng: &mut StdRng) -> Rect {
    Rect::new(
        bounds
            .intervals()
            .iter()
            .map(|iv| {
                let a = rng.gen_range(iv.lo()..iv.hi());
                let b = rng.gen_range(iv.lo()..iv.hi());
                Interval::from_unordered(a, b)
            })
            .collect(),
    )
}

/// A uniform random point inside `bounds`.
fn random_point(bounds: &Rect, rng: &mut StdRng) -> Point {
    Point::new(
        bounds
            .intervals()
            .iter()
            .map(|iv| rng.gen_range(iv.lo()..iv.hi()))
            .collect(),
    )
}

impl ChaosScenario {
    /// Generates a scenario over `base`'s event space and `topo`'s
    /// nodes: the base workload's subscriptions form the initial
    /// population, churn and events are drawn uniformly from the base
    /// bounds, and `model` (with its epoch count overridden to
    /// `config.epochs`) drives the fault schedule. Deterministic in
    /// `seed`.
    ///
    /// Unsubscribe/resubscribe ops only ever target ordinals that are
    /// still live *by user churn* at that point in the stream; a
    /// driver layering crash-forced unsubscribes on top must therefore
    /// tolerate already-gone targets (the service counts them as
    /// rejected ops).
    pub fn generate(
        topo: &Topology,
        base: &Workload,
        model: &FaultModel,
        config: &ChaosConfig,
        seed: u64,
    ) -> ChaosScenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = topo.graph().nodes().collect();
        let mut model = model.clone();
        model.epochs = config.epochs.max(1);
        let faults = FaultSchedule::random(topo.graph(), &model, seed);

        // Live-by-churn tracking over birth ordinals.
        let mut alive: Vec<usize> = (0..base.subscriptions.len()).collect();
        let mut born = base.subscriptions.len();

        let epochs = (0..model.epochs)
            .map(|_| {
                let mut churn = Vec::with_capacity(config.churn_per_epoch);
                for _ in 0..config.churn_per_epoch {
                    let fresh =
                        alive.len() < 2 || rng.gen_bool(config.subscribe_fraction.clamp(0.0, 1.0));
                    if fresh {
                        let node = nodes[rng.gen_range(0..nodes.len())];
                        churn.push(ChurnOp::Subscribe {
                            node,
                            rect: random_rect(&base.bounds, &mut rng),
                        });
                        alive.push(born);
                        born += 1;
                    } else if rng.gen_bool(0.5) {
                        let victim = alive.swap_remove(rng.gen_range(0..alive.len()));
                        churn.push(ChurnOp::Unsubscribe { target: victim });
                    } else {
                        let target = alive[rng.gen_range(0..alive.len())];
                        churn.push(ChurnOp::Resubscribe {
                            target,
                            rect: random_rect(&base.bounds, &mut rng),
                        });
                    }
                }
                let events = (0..config.events_per_epoch)
                    .map(|_| Event {
                        publisher: nodes[rng.gen_range(0..nodes.len())],
                        point: random_point(&base.bounds, &mut rng),
                    })
                    .collect();
                ChaosEpoch { churn, events }
            })
            .collect();

        ChaosScenario {
            initial: base.subscriptions.clone(),
            bounds: base.bounds.clone(),
            epochs,
            faults,
            seed,
        }
    }

    /// Total churn ops across all epochs.
    pub fn total_churn(&self) -> usize {
        self.epochs.iter().map(|e| e.churn.len()).sum()
    }

    /// Total events across all epochs.
    pub fn total_events(&self) -> usize {
        self.epochs.iter().map(|e| e.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;

    fn base() -> (Topology, Workload) {
        let mut rng = StdRng::seed_from_u64(77);
        let topo = Topology::generate(
            &TransitStubParams {
                transit_blocks: 2,
                transit_nodes_per_block: 2,
                stubs_per_transit: 2,
                nodes_per_stub: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let model = crate::Section3Model {
            regionalism: 0.4,
            dist: crate::PredicateDist::Uniform,
            num_subscriptions: 40,
            num_events: 10,
        };
        let w = model.generate(&topo, &mut rng);
        (topo, w)
    }

    #[test]
    fn same_seed_same_storm() {
        let (topo, w) = base();
        let model = FaultModel {
            node_crash: 0.2,
            ..FaultModel::default()
        };
        let cfg = ChaosConfig::default();
        let a = ChaosScenario::generate(&topo, &w, &model, &cfg, 123);
        let b = ChaosScenario::generate(&topo, &w, &model, &cfg, 123);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.faults.num_epochs(), b.faults.num_epochs());
        for e in 0..a.faults.num_epochs() {
            assert_eq!(a.faults.faults_at(e), b.faults.faults_at(e));
        }
        let c = ChaosScenario::generate(&topo, &w, &model, &cfg, 124);
        assert_ne!(a.epochs, c.epochs, "different seeds should differ");
    }

    #[test]
    fn storm_shape_matches_config() {
        let (topo, w) = base();
        let cfg = ChaosConfig {
            epochs: 4,
            churn_per_epoch: 7,
            events_per_epoch: 9,
            subscribe_fraction: 0.5,
        };
        let s = ChaosScenario::generate(&topo, &w, &FaultModel::default(), &cfg, 9);
        assert_eq!(s.epochs.len(), 4);
        assert_eq!(s.faults.num_epochs(), 4);
        assert_eq!(s.total_churn(), 28);
        assert_eq!(s.total_events(), 36);
        assert_eq!(s.initial.len(), w.subscriptions.len());
        for e in &s.epochs {
            for ev in &e.events {
                assert!(s.bounds.contains(&ev.point));
            }
        }
    }

    /// Churn is self-consistent: no op targets an ordinal that user
    /// churn already removed, and every target was actually born.
    #[test]
    fn churn_targets_are_live_ordinals() {
        let (topo, w) = base();
        let cfg = ChaosConfig {
            epochs: 8,
            churn_per_epoch: 20,
            events_per_epoch: 1,
            subscribe_fraction: 0.3,
        };
        let s = ChaosScenario::generate(&topo, &w, &FaultModel::default(), &cfg, 5);
        let mut born = s.initial.len();
        let mut live: Vec<bool> = vec![true; born];
        for epoch in &s.epochs {
            for op in &epoch.churn {
                match op {
                    ChurnOp::Subscribe { .. } => {
                        live.push(true);
                        born += 1;
                    }
                    ChurnOp::Unsubscribe { target } => {
                        assert!(live[*target], "unsubscribe of dead ordinal");
                        live[*target] = false;
                    }
                    ChurnOp::Resubscribe { target, .. } => {
                        assert!(live[*target], "resubscribe of dead ordinal");
                    }
                }
            }
        }
        assert_eq!(live.len(), born);
    }
}
