//! Offline drop-in replacement for the subset of `criterion` 0.5 used by
//! this workspace's benches.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal harness: it runs each registered benchmark a handful of times
//! and prints a `median ms` line per benchmark id. There is no statistical
//! analysis, HTML report, or saved baseline — the benches stay compilable
//! and give rough comparative numbers.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), benchmarks are skipped entirely so
//! the test suite stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Registers and immediately runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timing driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{label}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        eprintln!(
            "  {group}/{label}: median {:.3} ms over {} samples",
            median.as_secs_f64() * 1e3,
            sorted.len()
        );
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identity function that defeats constant-folding of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// True when the binary was invoked by `cargo test` (which passes
/// `--test`), in which case benches are skipped.
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                eprintln!("criterion stub: skipping benches under cargo test");
                return;
            }
            $($group();)+
        }
    };
}
