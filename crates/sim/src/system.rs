//! A live publish-subscribe system façade: the piece a downstream user
//! actually embeds.
//!
//! [`PubSubSystem`] owns a network, a dynamic subscription population,
//! a clustering (kept up to date with warm-started re-balancing), a
//! subscription index for real-time matching, and a router for
//! delivery. `publish` runs the full dynamic path of the paper:
//! match → pick group or unicast (Figure 5) → deliver → account costs.

use geometry::{Grid, Point, Rect};
use netsim::{NodeId, Router, Topology};
use pubsub_core::{
    BitSet, CellProbability, Delivery, DynamicClustering, DynamicError, GridMatcher, KMeans,
    KMeansVariant, SubscriptionId, SubscriptionIndex,
};

use crate::delivery::MulticastMode;

/// How a published event was delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryReport {
    /// The interested subscription ids.
    pub interested: Vec<usize>,
    /// The nodes that received the message.
    pub receiver_nodes: Vec<NodeId>,
    /// Whether a multicast group carried the message (and which).
    pub multicast_group: Option<usize>,
    /// Network cost of this delivery.
    pub cost: f64,
}

/// Aggregate delivery statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SystemStats {
    /// Events published.
    pub events: usize,
    /// Events delivered via a multicast group.
    pub multicast_events: usize,
    /// Events delivered by unicast fallback.
    pub unicast_events: usize,
    /// Total network cost.
    pub total_cost: f64,
}

/// A live content-based pub-sub system over a fixed network.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Point, Rect};
/// use netsim::{Topology, TransitStubParams};
/// use rand::{rngs::StdRng, SeedableRng};
/// use sim::PubSubSystem;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
/// let grid = Grid::cube(0.0, 20.0, 1, 20)?;
/// let mut system = PubSubSystem::new(&topo, grid, 8);
///
/// let node = topo.stub_nodes().next().unwrap();
/// system.subscribe(node, Rect::new(vec![Interval::new(0.0, 10.0)?]));
/// system.refresh();
///
/// let publisher = topo.stub_nodes().last().unwrap();
/// let report = system.publish(publisher, &Point::new(vec![5.0]));
/// assert_eq!(report.receiver_nodes, vec![node]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PubSubSystem<'a> {
    topo: &'a Topology,
    router: Router<'a>,
    dynamic: DynamicClustering,
    /// Node of each subscription slot (tombstones keep their node).
    nodes: Vec<NodeId>,
    /// Rectangles of live subscriptions (`None` = unsubscribed).
    rects: Vec<Option<Rect>>,
    index: SubscriptionIndex,
    /// Member nodes per group, rebuilt on refresh.
    group_nodes: Vec<Vec<NodeId>>,
    mode: MulticastMode,
    threshold: f64,
    stats: SystemStats,
}

impl<'a> PubSubSystem<'a> {
    /// Creates a system over `topo`, discretizing the event space with
    /// `grid` and maintaining at most `k` multicast groups (Forgy
    /// K-means, the paper's recommended algorithm).
    pub fn new(topo: &'a Topology, grid: Grid, k: usize) -> Self {
        let probs = CellProbability::uniform(&grid);
        let dynamic = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::Forgy), k);
        PubSubSystem {
            topo,
            router: Router::new(topo.graph()),
            dynamic,
            nodes: Vec::new(),
            rects: Vec::new(),
            index: SubscriptionIndex::build(&[]),
            group_nodes: Vec::new(),
            mode: MulticastMode::NetworkSupported,
            threshold: 0.0,
            stats: SystemStats::default(),
        }
    }

    /// Switches the multicast substrate (default: network-supported).
    pub fn with_mode(mut self, mode: MulticastMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the Figure 5 matching threshold (default 0).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold is a proportion"
        );
        self.threshold = threshold;
        self
    }

    /// Registers a subscription at `node`. Call
    /// [`PubSubSystem::refresh`] to fold pending changes into the
    /// groups and the matching index.
    pub fn subscribe(&mut self, node: NodeId, rect: Rect) -> SubscriptionId {
        let id = self.dynamic.subscribe(rect.clone());
        debug_assert_eq!(id.index(), self.nodes.len());
        self.nodes.push(node);
        self.rects.push(Some(rect));
        id
    }

    /// Removes a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::UnknownSubscription`] for unknown ids.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), DynamicError> {
        self.dynamic.unsubscribe(id)?;
        self.rects[id.index()] = None;
        Ok(())
    }

    /// Number of live subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.dynamic.num_subscriptions()
    }

    /// Folds pending subscription changes into the clustering (warm
    /// start) and rebuilds the matching index and per-group node
    /// lists. Returns the number of re-balancing moves.
    pub fn refresh(&mut self) -> usize {
        let moves = self.dynamic.rebalance();
        // Matching index over live rectangles (tombstones become
        // never-matching empty rectangles to keep ids aligned).
        let rects: Vec<Rect> = self
            .rects
            .iter()
            .map(|r| {
                r.clone().unwrap_or_else(|| {
                    Rect::new(
                        (0..self.dynamic.framework().grid().dim())
                            .map(|_| geometry::Interval::new(0.0, 0.0).expect("valid"))
                            .collect(),
                    )
                })
            })
            .collect();
        self.index = SubscriptionIndex::build(&rects);
        self.group_nodes = self
            .dynamic
            .clustering()
            .groups()
            .iter()
            .map(|g| {
                let mut ns: Vec<NodeId> = g.members.iter().map(|i| self.nodes[i]).collect();
                ns.sort_unstable();
                ns.dedup();
                ns
            })
            .collect();
        moves
    }

    /// Publishes an event: matches it, chooses multicast or unicast
    /// per Figure 5, "delivers", and returns the report.
    pub fn publish(&mut self, publisher: NodeId, event: &Point) -> DeliveryReport {
        let interested = self.index.matching(event);
        let interested_set =
            BitSet::from_members(self.rects.len().max(1), interested.iter().copied());
        let mut interested_nodes: Vec<NodeId> = interested.iter().map(|&i| self.nodes[i]).collect();
        interested_nodes.sort_unstable();
        interested_nodes.dedup();

        let matcher = GridMatcher::new(self.dynamic.framework(), self.dynamic.clustering())
            .with_threshold(self.threshold);
        let decision = matcher.match_event(event, &interested_set);
        let (cost, receivers, group) = match decision {
            Delivery::Multicast { group } => {
                let members = &self.group_nodes[group];
                let cost = match self.mode {
                    MulticastMode::NetworkSupported => {
                        self.router.group_multicast_cost(publisher, members)
                    }
                    MulticastMode::ApplicationLevel => {
                        self.router.app_multicast_cost(publisher, members)
                    }
                    MulticastMode::SparseMode => {
                        let rp = self.router.rendezvous_point(members).unwrap_or(publisher);
                        self.router.sparse_multicast_cost(publisher, rp, members)
                    }
                };
                (cost, members.clone(), Some(group))
            }
            Delivery::Unicast => {
                let cost = self
                    .router
                    .unicast_cost(publisher, interested_nodes.iter().copied());
                (cost, interested_nodes.clone(), None)
            }
        };
        self.stats.events += 1;
        self.stats.total_cost += cost;
        if group.is_some() {
            self.stats.multicast_events += 1;
        } else {
            self.stats.unicast_events += 1;
        }
        DeliveryReport {
            interested,
            receiver_nodes: receivers,
            multicast_group: group,
            cost,
        }
    }

    /// Aggregate statistics since creation.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// The network the system runs on.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use netsim::TransitStubParams;
    use rand::prelude::*;

    fn topo() -> Topology {
        Topology::generate(
            &TransitStubParams::paper_100_nodes(),
            &mut StdRng::seed_from_u64(3),
        )
    }

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    #[test]
    fn subscribe_publish_deliver() {
        let t = topo();
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut sys = PubSubSystem::new(&t, grid, 4);
        let nodes: Vec<NodeId> = t.stub_nodes().collect();
        sys.subscribe(nodes[0], rect1(0.0, 10.0));
        sys.subscribe(nodes[1], rect1(5.0, 15.0));
        sys.refresh();
        let report = sys.publish(nodes[5], &Point::new(vec![7.0]));
        assert_eq!(report.interested, vec![0, 1]);
        // Multicast covers a superset of the interested nodes.
        for n in [nodes[0], nodes[1]] {
            assert!(report.receiver_nodes.contains(&n));
        }
        assert!(report.cost > 0.0);
        assert_eq!(sys.stats().events, 1);
    }

    #[test]
    fn event_nobody_wants_costs_nothing() {
        let t = topo();
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut sys = PubSubSystem::new(&t, grid, 4);
        let nodes: Vec<NodeId> = t.stub_nodes().collect();
        sys.subscribe(nodes[0], rect1(0.0, 5.0));
        sys.refresh();
        let report = sys.publish(nodes[3], &Point::new(vec![15.0]));
        assert!(report.interested.is_empty());
        assert!(report.receiver_nodes.is_empty());
        assert_eq!(report.cost, 0.0);
        assert_eq!(sys.stats().unicast_events, 1);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let t = topo();
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut sys = PubSubSystem::new(&t, grid, 4);
        let nodes: Vec<NodeId> = t.stub_nodes().collect();
        let id = sys.subscribe(nodes[0], rect1(0.0, 10.0));
        sys.refresh();
        assert_eq!(
            sys.publish(nodes[2], &Point::new(vec![4.0])).interested,
            vec![0]
        );
        sys.unsubscribe(id).unwrap();
        sys.refresh();
        assert!(sys
            .publish(nodes[2], &Point::new(vec![4.0]))
            .interested
            .is_empty());
        assert_eq!(sys.num_subscriptions(), 0);
    }

    #[test]
    fn stats_accumulate_and_split_by_scheme() {
        let t = topo();
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut sys = PubSubSystem::new(&t, grid, 2);
        let nodes: Vec<NodeId> = t.stub_nodes().collect();
        for &node in nodes.iter().take(6) {
            sys.subscribe(node, rect1(0.0, 10.0));
        }
        sys.refresh();
        // In-grid interesting event → multicast; off-interest event →
        // (empty) unicast.
        sys.publish(nodes[9], &Point::new(vec![5.0]));
        sys.publish(nodes[9], &Point::new(vec![19.0]));
        let stats = sys.stats();
        assert_eq!(stats.events, 2);
        assert_eq!(stats.multicast_events, 1);
        assert_eq!(stats.unicast_events, 1);
        assert!(stats.total_cost > 0.0);
    }

    #[test]
    fn app_level_mode_is_in_the_same_ballpark() {
        let t = topo();
        let nodes: Vec<NodeId> = t.stub_nodes().collect();
        let run = |mode: MulticastMode| {
            let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
            let mut sys = PubSubSystem::new(&t, grid, 2).with_mode(mode);
            for i in 0..10 {
                sys.subscribe(nodes[i * 3], rect1(0.0, 12.0));
            }
            sys.refresh();
            sys.publish(nodes[1], &Point::new(vec![6.0])).cost
        };
        let net = run(MulticastMode::NetworkSupported);
        let app = run(MulticastMode::ApplicationLevel);
        // Either substrate can win on a single delivery (the pruned SPT
        // is not a Steiner tree); both must be positive and comparable.
        assert!(net > 0.0 && app > 0.0);
        assert!(
            app <= 3.0 * net && net <= 3.0 * app,
            "net {net} vs app {app}"
        );
    }
}
