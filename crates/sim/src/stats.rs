//! Multi-seed experiment statistics.
//!
//! The paper reports single runs (Figure 9 shows one alternative
//! seed). For a credible reproduction it is useful to quantify the
//! seed-to-seed spread: this module re-runs the Figure 7 sweep over a
//! set of seeds and summarizes each algorithm's improvement curve as
//! mean ± standard deviation.

use crate::delivery::MulticastMode;
use crate::experiments::{fig7, Fig7Config};

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or NaN values.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = if n < 2 {
            0.0
        } else {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            mean,
            sd,
            min,
            max,
            n,
        }
    }
}

/// Per-(algorithm, mode) improvement summaries across seeds.
#[derive(Debug, Clone)]
pub struct MultiSeedSeries {
    /// Algorithm name.
    pub algorithm: String,
    /// Multicast substrate.
    pub mode: MulticastMode,
    /// One summary per K (aligned with the config's `ks`).
    pub per_k: Vec<Summary>,
}

/// The result of a multi-seed Figure 7 study.
#[derive(Debug, Clone)]
pub struct MultiSeedFig7 {
    /// The K values swept.
    pub ks: Vec<usize>,
    /// Summaries per series.
    pub series: Vec<MultiSeedSeries>,
}

/// Runs the Figure 7 experiment once per seed and aggregates the
/// improvement percentages.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn fig7_multi_seed(cfg: &Fig7Config, seeds: &[u64]) -> MultiSeedFig7 {
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            fig7(&c)
        })
        .collect();
    // lint: allow(no-literal-index): seeds asserted non-empty above
    let first = &runs[0];
    let series = first
        .series
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let per_k = (0..s.points.len())
                .map(|ki| {
                    let samples: Vec<f64> = runs
                        .iter()
                        .map(|r| {
                            debug_assert_eq!(r.series[si].algorithm, s.algorithm);
                            r.series[si].points[ki].1
                        })
                        .collect();
                    Summary::of(&samples)
                })
                .collect();
            MultiSeedSeries {
                algorithm: s.algorithm.clone(),
                mode: s.mode,
                per_k,
            }
        })
        .collect();
    MultiSeedFig7 {
        ks: cfg.ks.clone(),
        series,
    }
}

/// Renders a multi-seed study as `mean±sd` cells.
pub fn render_multi_seed(res: &MultiSeedFig7) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 across {} seeds (improvement %, mean±sd, network multicast)",
        res.series
            .first()
            .and_then(|s| s.per_k.first())
            .map_or(0, |s| s.n)
    );
    let net: Vec<_> = res
        .series
        .iter()
        .filter(|s| s.mode == MulticastMode::NetworkSupported)
        .collect();
    let _ = write!(out, "{:>5}", "K");
    for s in &net {
        let _ = write!(out, " {:>16}", s.algorithm);
    }
    let _ = writeln!(out);
    for (ki, &k) in res.ks.iter().enumerate() {
        let _ = write!(out, "{k:>5}");
        for s in &net {
            let cell = format!("{:.1}±{:.1}", s.per_k[ki].mean, s.per_k[ki].sd);
            let _ = write!(out, " {cell:>16}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;
    use pubsub_core::NoLossConfig;
    use workload::StockModel;

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.sd - 1.2909944).abs() < 1e-6);
        assert_eq!(s.n, 4);
        let single = Summary::of(&[7.0]);
        assert_eq!(single.sd, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn multi_seed_aggregates_all_series() {
        let cfg = Fig7Config {
            model: StockModel::default().with_sizes(80, 40),
            topo: TransitStubParams::paper_100_nodes(),
            density_events: 80,
            ks: vec![4, 8],
            max_cells: 150,
            max_cells_pairs: 100,
            noloss: NoLossConfig {
                max_rects: 100,
                iterations: 2,
                max_candidates_per_round: 10_000,
            },
            seed: 0,
        };
        let res = fig7_multi_seed(&cfg, &[1, 2, 3]);
        assert_eq!(res.ks, vec![4, 8]);
        assert_eq!(res.series.len(), 10);
        for s in &res.series {
            assert_eq!(s.per_k.len(), 2);
            for summary in &s.per_k {
                assert_eq!(summary.n, 3);
                assert!(summary.min <= summary.mean && summary.mean <= summary.max);
            }
        }
        let text = render_multi_seed(&res);
        assert!(text.contains("across 3 seeds"));
        assert!(text.contains("forgy"));
    }
}
