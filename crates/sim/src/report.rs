//! Plain-text rendering of experiment results in the paper's layout.

use std::fmt::Write as _;

use workload::PredicateDist;

use crate::delivery::MulticastMode;
use crate::experiments::{Fig10Result, Fig7Result, Fig8Result, TableRow};

fn dist_label(d: PredicateDist) -> &'static str {
    match d {
        PredicateDist::Uniform => "uniform",
        PredicateDist::Gaussian => "gaussian",
    }
}

fn mode_label(m: MulticastMode) -> &'static str {
    match m {
        MulticastMode::NetworkSupported => "net",
        MulticastMode::ApplicationLevel => "app",
        MulticastMode::SparseMode => "sparse",
    }
}

/// Renders Table 1/2 rows in the paper's column layout.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>9} {:>10} {:>10} {:>10}",
        "Node", "Sub'n", "Dist'n", "Unicast", "Broadcast", "Ideal"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>9} {:>10.0} {:>10.0} {:>10.0}",
            r.nodes,
            r.subscriptions,
            dist_label(r.dist),
            r.unicast,
            r.broadcast,
            r.ideal
        );
    }
    out
}

/// Renders a Figure 7/9 result: one block per multicast mode, one row
/// per K, one column per algorithm.
pub fn render_group_sweep(title: &str, res: &Fig7Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "baselines: unicast={:.0} broadcast={:.0} ideal={:.0}",
        res.baselines.unicast, res.baselines.broadcast, res.baselines.ideal
    );
    for mode in [
        MulticastMode::NetworkSupported,
        MulticastMode::ApplicationLevel,
    ] {
        let series: Vec<_> = res.series.iter().filter(|s| s.mode == mode).collect();
        if series.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "-- {} multicast (improvement % over unicast)",
            mode_label(mode)
        );
        let _ = write!(out, "{:>5}", "K");
        for s in &series {
            let _ = write!(out, " {:>13}", s.algorithm);
        }
        let _ = writeln!(out);
        // lint: allow(no-literal-index): the empty case `continue`d above
        let ks: Vec<usize> = series[0].points.iter().map(|&(k, _)| k).collect();
        for (row, &k) in ks.iter().enumerate() {
            let _ = write!(out, "{k:>5}");
            for s in &series {
                let _ = write!(out, " {:>13.1}", s.points[row].1);
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Renders the Figure 8 result (No-Loss parameter sensitivity).
pub fn render_fig8(res: &Fig8Result) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: No-Loss parameter sensitivity (improvement % over unicast)"
    );
    let _ = writeln!(out, "-- by number of rectangles kept");
    let _ = writeln!(out, "{:>8} {:>13}", "rects", "improvement");
    for &(r, i) in &res.by_rects {
        let _ = writeln!(out, "{r:>8} {i:>13.1}");
    }
    let _ = writeln!(out, "-- by number of iterations");
    let _ = writeln!(out, "{:>8} {:>13}", "iters", "improvement");
    for &(n, i) in &res.by_iterations {
        let _ = writeln!(out, "{n:>8} {i:>13.1}");
    }
    out
}

/// Renders the Figure 10 result (quality and runtime vs cell budget).
pub fn render_fig10(res: &Fig10Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10: quality and runtime vs number of cells");
    for s in &res.series {
        let _ = writeln!(out, "-- {}", s.algorithm);
        let _ = writeln!(
            out,
            "{:>8} {:>13} {:>10}",
            "cells", "improvement", "seconds"
        );
        for p in &s.points {
            let _ = writeln!(
                out,
                "{:>8} {:>13.1} {:>10.3}",
                p.cells, p.improvement, p.seconds
            );
        }
    }
    out
}

/// Renders the Figure 11 view: quality as a function of time, merged
/// across algorithms and sorted by time.
pub fn render_fig11(res: &Fig10Result) -> String {
    let mut rows: Vec<(f64, f64, &str, usize)> = res
        .series
        .iter()
        .flat_map(|s| {
            s.points
                .iter()
                .map(move |p| (p.seconds, p.improvement, s.algorithm.as_str(), p.cells))
        })
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("seconds are never NaN"));
    let mut out = String::new();
    let _ = writeln!(out, "Figure 11: solution quality as a function of time");
    let _ = writeln!(
        out,
        "{:>10} {:>13} {:>14} {:>8}",
        "seconds", "improvement", "algorithm", "cells"
    );
    for (sec, impr, alg, cells) in rows {
        let _ = writeln!(out, "{sec:>10.3} {impr:>13.1} {alg:>14} {cells:>8}");
    }
    out
}

/// Renders Table 1/2 rows as a GitHub-flavored markdown table (for
/// pasting into reports like `EXPERIMENTS.md`).
pub fn render_table_markdown(rows: &[TableRow]) -> String {
    let mut out = String::from(
        "| Node | Sub'n | Dist'n | Unicast | Broadcast | Ideal |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.0} | {:.0} | {:.0} |",
            r.nodes,
            r.subscriptions,
            dist_label(r.dist),
            r.unicast,
            r.broadcast,
            r.ideal
        );
    }
    out
}

/// Renders a Figure 7/9 result as a markdown table (one block per
/// mode).
pub fn render_group_sweep_markdown(res: &Fig7Result) -> String {
    let mut out = String::new();
    for mode in [
        MulticastMode::NetworkSupported,
        MulticastMode::SparseMode,
        MulticastMode::ApplicationLevel,
    ] {
        let series: Vec<_> = res.series.iter().filter(|s| s.mode == mode).collect();
        if series.is_empty() {
            continue;
        }
        let _ = writeln!(out, "**{} multicast (improvement %)**\n", mode_label(mode));
        let _ = write!(out, "| K |");
        for s in &series {
            let _ = write!(out, " {} |", s.algorithm);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        // lint: allow(no-literal-index): the empty case `continue`d above
        let ks: Vec<usize> = series[0].points.iter().map(|&(k, _)| k).collect();
        for (row, &k) in ks.iter().enumerate() {
            let _ = write!(out, "| {k} |");
            for s in &series {
                let _ = write!(out, " {:.1} |", s.points[row].1);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Table 1/2 rows as CSV (for plotting tools).
pub fn render_table_csv(rows: &[TableRow]) -> String {
    let mut out = String::from("nodes,subscriptions,dist,unicast,broadcast,ideal\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.nodes,
            r.subscriptions,
            dist_label(r.dist),
            r.unicast,
            r.broadcast,
            r.ideal
        );
    }
    out
}

/// Renders a Figure 7/9 result as long-format CSV
/// (`algorithm,mode,k,improvement`).
pub fn render_group_sweep_csv(res: &Fig7Result) -> String {
    let mut out = String::from("algorithm,mode,k,improvement\n");
    for s in &res.series {
        for &(k, impr) in &s.points {
            let _ = writeln!(out, "{},{},{k},{impr}", s.algorithm, mode_label(s.mode));
        }
    }
    out
}

/// Renders a Figure 10 result as long-format CSV
/// (`algorithm,cells,improvement,seconds`).
pub fn render_fig10_csv(res: &Fig10Result) -> String {
    let mut out = String::from("algorithm,cells,improvement,seconds\n");
    for s in &res.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                s.algorithm, p.cells, p.improvement, p.seconds
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::BaselineCosts;
    use crate::experiments::{CellSweepPoint, CellSweepSeries, GroupSweepSeries};

    fn baselines() -> BaselineCosts {
        BaselineCosts {
            unicast: 7139.0,
            broadcast: 8536.0,
            ideal: 1763.0,
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![TableRow {
            nodes: 100,
            subscriptions: 5000,
            dist: PredicateDist::Uniform,
            unicast: 31351.0,
            broadcast: 1430.0,
            ideal: 1334.0,
        }];
        let s = render_table("Table 1", &rows);
        assert!(s.contains("Table 1"));
        assert!(s.contains("31351"));
        assert!(s.contains("uniform"));
    }

    #[test]
    fn group_sweep_renders_modes_and_columns() {
        let res = Fig7Result {
            baselines: baselines(),
            series: vec![
                GroupSweepSeries {
                    algorithm: "forgy".into(),
                    mode: MulticastMode::NetworkSupported,
                    points: vec![(10, 40.0), (20, 55.0)],
                },
                GroupSweepSeries {
                    algorithm: "forgy".into(),
                    mode: MulticastMode::ApplicationLevel,
                    points: vec![(10, 35.0), (20, 50.0)],
                },
            ],
        };
        let s = render_group_sweep("Figure 7", &res);
        assert!(s.contains("net multicast"));
        assert!(s.contains("app multicast"));
        assert!(s.contains("forgy"));
        assert!(s.contains("55.0"));
    }

    #[test]
    fn fig8_and_fig10_render() {
        let f8 = Fig8Result {
            baselines: baselines(),
            by_rects: vec![(1000, 20.0)],
            by_iterations: vec![(8, 25.0)],
        };
        let s = render_fig8(&f8);
        assert!(s.contains("rects"));
        assert!(s.contains("iters"));

        let f10 = Fig10Result {
            baselines: baselines(),
            series: vec![CellSweepSeries {
                algorithm: "mst".into(),
                points: vec![CellSweepPoint {
                    cells: 1000,
                    improvement: 44.0,
                    seconds: 1.25,
                }],
            }],
        };
        let s = render_fig10(&f10);
        assert!(s.contains("mst"));
        assert!(s.contains("1.250"));
        let s = render_fig11(&f10);
        assert!(s.contains("quality as a function of time"));
        assert!(s.contains("44.0"));
    }

    #[test]
    fn markdown_renders_are_tables() {
        let rows = vec![TableRow {
            nodes: 600,
            subscriptions: 1000,
            dist: PredicateDist::Uniform,
            unicast: 5477.0,
            broadcast: 10235.0,
            ideal: 1350.0,
        }];
        let md = render_table_markdown(&rows);
        assert!(md.starts_with("| Node | Sub'n |"));
        assert!(md.contains("| 600 | 1000 | uniform | 5477 | 10235 | 1350 |"));

        let res = Fig7Result {
            baselines: baselines(),
            series: vec![GroupSweepSeries {
                algorithm: "forgy".into(),
                mode: MulticastMode::NetworkSupported,
                points: vec![(10, 67.7), (100, 88.0)],
            }],
        };
        let md = render_group_sweep_markdown(&res);
        assert!(md.contains("**net multicast"));
        assert!(md.contains("| 100 | 88.0 |"));
        // Sparse/app blocks absent when no series carries them.
        assert!(!md.contains("sparse multicast"));
    }

    #[test]
    fn csv_renders_are_machine_readable() {
        let rows = vec![TableRow {
            nodes: 100,
            subscriptions: 80,
            dist: PredicateDist::Gaussian,
            unicast: 548.0,
            broadcast: 1430.0,
            ideal: 287.0,
        }];
        let csv = render_table_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "nodes,subscriptions,dist,unicast,broadcast,ideal"
        );
        assert_eq!(lines.next().unwrap(), "100,80,gaussian,548,1430,287");

        let res = Fig7Result {
            baselines: baselines(),
            series: vec![GroupSweepSeries {
                algorithm: "forgy".into(),
                mode: MulticastMode::SparseMode,
                points: vec![(10, 40.5)],
            }],
        };
        let csv = render_group_sweep_csv(&res);
        assert!(csv.contains("forgy,sparse,10,40.5"));

        let f10 = Fig10Result {
            baselines: baselines(),
            series: vec![CellSweepSeries {
                algorithm: "pairs".into(),
                points: vec![CellSweepPoint {
                    cells: 500,
                    improvement: 57.4,
                    seconds: 0.039,
                }],
            }],
        };
        let csv = render_fig10_csv(&f10);
        assert!(csv.contains("pairs,500,57.4,0.039"));
    }
}
