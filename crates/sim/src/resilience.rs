//! Failure-aware delivery: fault schedules, degraded routing, bounded
//! retries and per-member unicast fallback.
//!
//! The paper's evaluation assumes a fault-free network. This module
//! re-runs the same per-event cost model of [`crate::Evaluator`] under
//! a [`FaultSchedule`]: the event stream is partitioned into epochs,
//! each epoch sees a cumulative [`DegradedView`] of the topology, and
//! routing state (the per-publisher shortest-path trees) is repaired
//! incrementally between epochs. Members whose path crosses a degraded
//! link may lose the primary copy; the publisher retries with
//! exponential backoff and finally falls back to a dedicated unicast
//! ([`RetryPolicy`]). The resulting [`ResilienceBreakdown`] accounts
//! for every interested subscriber node of every event: per event,
//! `delivered + fallback_deliveries + dropped` partitions the
//! interested set exactly.
//!
//! With an empty schedule the whole machinery is a strict no-op: the
//! healthy path issues the exact same cost calls, in the same chunk
//! order, as [`crate::Evaluator::grid_clustering_breakdown`], so the
//! multicast/unicast cost fields are bit-for-bit identical.

use std::collections::HashMap;

use netsim::{DegradedView, EdgeId, FaultSchedule, Graph, NodeId, ShortestPathTree};
use pubsub_core::{
    env_knob, parallel, BatchScratch, BitSet, Clustering, Delivery, DispatchPlan,
    DynamicClustering, DynamicError, GridFramework, SubscriptionId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delivery::{DeliveryBreakdown, Evaluator, EVENT_CHUNK};

/// How a publisher reacts to a lost primary copy: bounded retries with
/// exponential backoff, then a dedicated per-member unicast fallback.
///
/// Losses are only possible on paths that cross a degraded link; links
/// that are *down* reroute (or partition) instead of losing copies.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retransmissions per member before falling back.
    pub max_retries: u32,
    /// Per-attempt loss probability on a degraded path.
    pub loss_prob: f64,
    /// Probability that a successful retry also delivers a duplicate
    /// (the original copy was late, not lost).
    pub duplicate_prob: f64,
    /// Base of the exponential backoff: retry `r` waits
    /// `backoff_base^r` abstract time units.
    pub backoff_base: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            loss_prob: 0.3,
            duplicate_prob: 0.05,
            backoff_base: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Reads overrides from the environment: `PUBSUB_RETRY_MAX`,
    /// `PUBSUB_RETRY_LOSS` and `PUBSUB_RETRY_BACKOFF`. Unset variables
    /// keep the defaults; malformed ones keep the defaults and are
    /// reported once to stderr ([`pubsub_core::env_knob`]);
    /// probabilities are clamped to `[0, 1]` and the backoff base to
    /// at least 1.
    pub fn from_env() -> Self {
        let d = RetryPolicy::default();
        RetryPolicy {
            max_retries: env_knob("PUBSUB_RETRY_MAX", d.max_retries, |s| s.parse().ok()),
            loss_prob: env_knob("PUBSUB_RETRY_LOSS", d.loss_prob, |s| {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| !v.is_nan())
                    .map(|v| v.clamp(0.0, 1.0))
            }),
            duplicate_prob: d.duplicate_prob,
            backoff_base: env_knob("PUBSUB_RETRY_BACKOFF", d.backoff_base, |s| {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| !v.is_nan())
                    .map(|v| v.max(1.0))
            }),
        }
    }

    /// Backoff units waited before retry `r` (1-based):
    /// `backoff_base^min(r, 32)`. The exponent is shift-capped so a
    /// huge `PUBSUB_RETRY_MAX` cannot push the accounting to `inf` —
    /// past the cap every further retry waits the same capped amount.
    fn backoff_at(&self, r: u32) -> f64 {
        self.backoff_base.powi(r.min(BACKOFF_EXP_CAP) as i32)
    }

    /// Total backoff units spent by `attempts` consecutive retries.
    /// The sub-cap head is summed term by term (bit-identical to the
    /// pre-cap arithmetic for `attempts ≤ 32`) and the flat tail in
    /// closed form, so the cost is O(cap) even for `u32::MAX` retries.
    fn backoff_sum(&self, attempts: u32) -> f64 {
        let head = attempts.min(BACKOFF_EXP_CAP);
        let sum: f64 = (1..=head).map(|r| self.backoff_at(r)).sum();
        sum + f64::from(attempts - head) * self.backoff_at(BACKOFF_EXP_CAP)
    }
}

/// Exponent cap of the retry backoff (see [`RetryPolicy::backoff_at`]).
const BACKOFF_EXP_CAP: u32 = 32;

/// Per-event accounting of a grid clustering under a fault schedule.
///
/// Cost fields extend [`DeliveryBreakdown`]'s: `multicast_cost` and
/// `unicast_cost` are the primary transmissions (bit-identical to the
/// fault-free breakdown when the schedule is empty), `retry_cost` /
/// `fallback_cost` the recovery traffic, and `repair_traffic` the
/// control-plane cost of re-installing routing trees between epochs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceBreakdown {
    /// Total events evaluated.
    pub events: usize,
    /// Epochs in the schedule.
    pub epochs: usize,
    /// Epochs whose view had at least one active fault.
    pub faulty_epochs: usize,
    /// Events delivered by group multicast.
    pub multicast_events: usize,
    /// Events delivered by per-node unicast.
    pub unicast_events: usize,
    /// Primary multicast transmission cost.
    pub multicast_cost: f64,
    /// Primary unicast transmission cost.
    pub unicast_cost: f64,
    /// Cost of retransmissions along the degraded path.
    pub retry_cost: f64,
    /// Cost of dedicated per-member unicast fallbacks.
    pub fallback_cost: f64,
    /// Cost of tree edges newly installed when routing state was
    /// repaired at an epoch boundary.
    pub repair_traffic: f64,
    /// Shortest-path trees recomputed against a degraded view.
    pub spt_rebuilds: usize,
    /// Sum over events of interested subscriber nodes.
    pub interested: usize,
    /// Members that received the primary copy (possibly after retries).
    pub delivered: usize,
    /// Members that only received via the unicast fallback.
    pub fallback_deliveries: usize,
    /// Members that never received the event (no surviving path).
    pub dropped: usize,
    /// Duplicate copies delivered by late originals after a retry.
    pub duplicated: usize,
    /// Total retransmission attempts.
    pub retry_attempts: usize,
    /// Total abstract backoff time spent waiting between retries.
    pub backoff_units: f64,
}

impl ResilienceBreakdown {
    /// Fraction of interested members that got the event, through any
    /// path (`1.0` when nothing was dropped; `1.0` on an empty run).
    pub fn delivery_rate(&self) -> f64 {
        if self.interested == 0 {
            1.0
        } else {
            (self.delivered + self.fallback_deliveries) as f64 / self.interested as f64
        }
    }

    /// All traffic: primary, retries, fallbacks and repair.
    pub fn total_cost(&self) -> f64 {
        self.multicast_cost
            + self.unicast_cost
            + self.retry_cost
            + self.fallback_cost
            + self.repair_traffic
    }

    /// Mean total cost per event.
    pub fn mean_cost(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_cost() / self.events as f64
        }
    }

    /// Relative cost increase over the fault-free breakdown of the same
    /// clustering (`0.0` = no inflation, `0.5` = 50% more traffic).
    pub fn inflation_vs(&self, baseline: &DeliveryBreakdown) -> f64 {
        let base = baseline.multicast_cost + baseline.unicast_cost;
        if base <= 0.0 {
            0.0
        } else {
            self.total_cost() / base - 1.0
        }
    }
}

/// Chunked partial tally, combined in chunk order (see
/// [`crate::delivery`]'s determinism note).
#[derive(Default)]
struct Partial {
    multicast_events: usize,
    unicast_events: usize,
    multicast_cost: f64,
    unicast_cost: f64,
    retry_cost: f64,
    fallback_cost: f64,
    interested: usize,
    delivered: usize,
    fallback_deliveries: usize,
    dropped: usize,
    duplicated: usize,
    retry_attempts: usize,
    backoff_units: f64,
}

impl Partial {
    fn fold_into(self, out: &mut ResilienceBreakdown) {
        out.multicast_events += self.multicast_events;
        out.unicast_events += self.unicast_events;
        out.multicast_cost += self.multicast_cost;
        out.unicast_cost += self.unicast_cost;
        out.retry_cost += self.retry_cost;
        out.fallback_cost += self.fallback_cost;
        out.interested += self.interested;
        out.delivered += self.delivered;
        out.fallback_deliveries += self.fallback_deliveries;
        out.dropped += self.dropped;
        out.duplicated += self.duplicated;
        out.retry_attempts += self.retry_attempts;
        out.backoff_units += self.backoff_units;
    }
}

/// Mixes the fault seed with an event index into an independent
/// per-event stream, so draws are identical at any thread count.
fn event_rng(fault_seed: u64, event: usize) -> StdRng {
    StdRng::seed_from_u64(fault_seed ^ (event as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Whether the tree path from the source to `m` crosses a degraded
/// (but live) link. Walks parent pointers; allocation-free.
fn path_is_lossy(spt: &ShortestPathTree, view: &DegradedView, m: NodeId) -> bool {
    let mut cur = m;
    while let Some((p, e)) = spt.parent(cur) {
        if view.edge_degraded(e) {
            return true;
        }
        cur = p;
    }
    false
}

/// Resolves one interested member against the epoch's routing tree:
/// primary copy, retries, fallback or drop. Exactly one of
/// `delivered`, `fallback_deliveries`, `dropped` is incremented.
fn resolve_member(
    spt: &ShortestPathTree,
    view: &DegradedView,
    policy: &RetryPolicy,
    rng: &mut StdRng,
    m: NodeId,
    p: &mut Partial,
) {
    if !spt.is_reachable(m) {
        // No surviving path (crashed member or partition): the
        // publisher retries into the void, backs off, and gives up.
        p.retry_attempts += policy.max_retries as usize;
        p.backoff_units += policy.backoff_sum(policy.max_retries);
        p.dropped += 1;
        return;
    }
    if !path_is_lossy(spt, view, m) {
        // Healthy path: the primary copy always arrives.
        p.delivered += 1;
        return;
    }
    if policy.loss_prob <= 0.0 || !rng.gen_bool(policy.loss_prob.min(1.0)) {
        p.delivered += 1;
        return;
    }
    for r in 1..=policy.max_retries {
        p.retry_attempts += 1;
        p.backoff_units += policy.backoff_at(r);
        p.retry_cost += spt.distance(m);
        if !rng.gen_bool(policy.loss_prob.min(1.0)) {
            p.delivered += 1;
            if policy.duplicate_prob > 0.0 && rng.gen_bool(policy.duplicate_prob.min(1.0)) {
                p.duplicated += 1;
            }
            return;
        }
    }
    // Retries exhausted: dedicated reliable unicast along the same
    // surviving (degraded) shortest path.
    p.fallback_deliveries += 1;
    p.fallback_cost += spt.distance(m);
}

/// Cost of installing `new_tree`'s edges that `old_edges` did not
/// already carry — the control traffic of an epoch-boundary repair.
fn install_cost(
    new_tree: &ShortestPathTree,
    old_edges: &[EdgeId],
    view: &DegradedView,
    g: &Graph,
) -> f64 {
    let mut old = vec![false; g.num_edges()];
    for &e in old_edges {
        old[e.index()] = true;
    }
    new_tree
        .tree_edges()
        .filter(|e| !old[e.index()])
        .map(|e| view.edge_cost(g, e))
        .filter(|c| c.is_finite())
        .sum()
}

impl<'a> Evaluator<'a> {
    /// Evaluates a grid clustering under a fault schedule.
    ///
    /// The event stream is split into `schedule.num_epochs()` equal
    /// contiguous epochs (event `e` lands in epoch
    /// `e * epochs / num_events`). Each epoch's cumulative
    /// [`DegradedView`] governs routing: per-publisher shortest-path
    /// trees are kept in a cache that is invalidated incrementally at
    /// epoch boundaries (only trees crossing a changed edge — or any
    /// tree, after a repair that can shorten paths — are recomputed),
    /// and the newly installed tree edges are charged to
    /// `repair_traffic`.
    ///
    /// All randomness (loss, duplicates) derives from `fault_seed`
    /// mixed per event, never from thread scheduling: results are
    /// bit-identical at any `PUBSUB_THREADS`. With an empty schedule
    /// the cost fields are bit-identical to
    /// [`Evaluator::grid_clustering_breakdown`].
    pub fn resilience_breakdown(
        &mut self,
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        schedule: &FaultSchedule,
        policy: &RetryPolicy,
        fault_seed: u64,
    ) -> ResilienceBreakdown {
        let workload = self.workload;
        let events = &workload.events;
        let n = events.len();
        let memberships: Vec<&BitSet> = clustering.groups().iter().map(|g| &g.members).collect();
        let group_nodes = self.member_nodes(&memberships);
        let plan = DispatchPlan::compile(framework, clustering).with_threshold(threshold);
        let matches: Vec<Delivery> = {
            let subs = &self.interested_subs;
            parallel::par_chunks(n, EVENT_CHUNK, |range| {
                let mut scratch = BatchScratch::new();
                let mut out = Vec::with_capacity(range.len());
                plan.dispatch_batch(
                    range,
                    |e| &events[e].point,
                    |e| &subs[e],
                    &mut scratch,
                    &mut out,
                );
                out
            })
            .into_iter()
            .flatten()
            .collect()
        };
        // Healthy trees for every publisher: the routing state all
        // brokers start from (and fall back to in healthy epochs).
        self.ensure_spts(events.iter().map(|e| e.publisher));

        let g = self.topo.graph();
        let views = schedule.views(g);
        let mut out = ResilienceBreakdown {
            events: n,
            epochs: views.len(),
            ..ResilienceBreakdown::default()
        };
        // Trees recomputed against a degraded view, keyed by source.
        let mut cache: HashMap<NodeId, ShortestPathTree> = HashMap::new();
        let mut prev_view = DegradedView::healthy(g);
        let frozen = &self.frozen;
        let inodes = &self.interested_nodes;

        for (epoch, view) in views.into_iter().enumerate() {
            // Events of this epoch: a contiguous equal split.
            let lo = epoch * n / out.epochs;
            let hi = (epoch + 1) * n / out.epochs;
            let mut needed: Vec<NodeId> = events[lo..hi].iter().map(|e| e.publisher).collect();
            needed.sort_unstable();
            needed.dedup();

            let partials: Vec<Partial> = if view.is_healthy() {
                // Reverting to healthy trees is a repair too: charge
                // the edges the cached degraded trees did not carry.
                for &s in &needed {
                    if let (Some(old), Ok(new)) = (cache.get(&s), frozen.try_spt(s)) {
                        let old_edges: Vec<EdgeId> = old.tree_edges().collect();
                        out.repair_traffic += install_cost(new, &old_edges, &view, g);
                    }
                }
                cache.clear();
                // Fault-free fast path: the exact cost calls, in the
                // exact chunk order, of `grid_clustering_breakdown`.
                parallel::par_chunks(hi - lo, EVENT_CHUNK, |range| {
                    let mut p = Partial::default();
                    for i in range {
                        let e = lo + i;
                        let ev = &events[e];
                        p.interested += inodes[e].len();
                        match matches[e] {
                            Delivery::Multicast { group } => {
                                p.multicast_events += 1;
                                p.multicast_cost +=
                                    frozen.group_multicast_cost(ev.publisher, &group_nodes[group]);
                            }
                            Delivery::Unicast => {
                                p.unicast_events += 1;
                                p.unicast_cost +=
                                    frozen.unicast_cost(ev.publisher, inodes[e].iter().copied());
                            }
                        }
                        match frozen.try_spt(ev.publisher) {
                            Ok(spt) => {
                                for &m in &inodes[e] {
                                    if spt.is_reachable(m) {
                                        p.delivered += 1;
                                    } else {
                                        p.dropped += 1;
                                    }
                                }
                            }
                            Err(_) => p.delivered += inodes[e].len(),
                        }
                    }
                    p
                })
            } else {
                out.faulty_epochs += 1;
                // Old routing state of the sources this epoch reads:
                // the cached degraded tree, else the healthy tree.
                let mut old_edges_by_source: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
                for &s in &needed {
                    let tree = cache.get(&s).ok_or(()).or_else(|()| frozen.try_spt(s));
                    if let Ok(t) = tree {
                        old_edges_by_source.insert(s, t.tree_edges().collect());
                    }
                }
                // Incremental invalidation: a repair (anything that can
                // shorten a path) flushes everything, pure deterioration
                // only flushes trees that cross a changed edge.
                if view.has_improvement_over(&prev_view, g) {
                    cache.clear();
                } else {
                    cache.retain(|_, t| !view.invalidates_tree(&prev_view, g, t));
                }
                let dg = view.apply(g);
                let mut missing: Vec<NodeId> = needed
                    .iter()
                    .copied()
                    .filter(|s| !cache.contains_key(s))
                    .collect();
                missing.sort_unstable();
                let rebuilt =
                    parallel::par_map(&missing, 2, |&s| ShortestPathTree::compute(&dg, s));
                out.spt_rebuilds += rebuilt.len();
                for spt in rebuilt {
                    if let Some(old) = old_edges_by_source.get(&spt.source()) {
                        out.repair_traffic += install_cost(&spt, old, &view, g);
                    }
                    cache.insert(spt.source(), spt);
                }
                let cache_ref = &cache;
                let view_ref = &view;
                let dg_ref = &dg;
                parallel::par_chunks(hi - lo, EVENT_CHUNK, |range| {
                    let mut p = Partial::default();
                    for i in range {
                        let e = lo + i;
                        let ev = &events[e];
                        p.interested += inodes[e].len();
                        let mut rng = event_rng(fault_seed, e);
                        let spt = match cache_ref.get(&ev.publisher) {
                            Some(spt) => spt,
                            // Unreachable: every epoch publisher is warmed
                            // above. Count the event dropped if it ever
                            // regresses rather than panic mid-simulation.
                            None => {
                                p.dropped += inodes[e].len();
                                continue;
                            }
                        };
                        match matches[e] {
                            Delivery::Multicast { group } => {
                                p.multicast_events += 1;
                                p.multicast_cost += spt.multicast_tree_cost(
                                    dg_ref,
                                    group_nodes[group].iter().copied(),
                                );
                            }
                            Delivery::Unicast => {
                                p.unicast_events += 1;
                                p.unicast_cost += spt.unicast_cost(inodes[e].iter().copied());
                            }
                        }
                        for &m in &inodes[e] {
                            resolve_member(spt, view_ref, policy, &mut rng, m, &mut p);
                        }
                    }
                    p
                })
            };
            for p in partials {
                p.fold_into(&mut out);
            }
            prev_view = view;
        }
        out
    }
}

/// Outcome of replaying a fault schedule's crash-induced churn through
/// a [`DynamicClustering`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Epochs replayed.
    pub epochs: usize,
    /// Node-crash transitions observed (a node crashing, recovering
    /// and crashing again counts twice).
    pub crashed_nodes: usize,
    /// Subscriptions forcibly removed because their home crashed.
    pub forced_unsubscribes: usize,
    /// Subscriptions moved between groups by the per-epoch rebalances.
    pub rebalance_moves: usize,
    /// Per-epoch rebalances served by the incremental churn pipeline
    /// (delta rasterization + seeded re-clustering) rather than a full
    /// rebuild; governed by `PUBSUB_INCREMENTAL_MAX_DIRTY`.
    pub incremental_rebalances: usize,
    /// Live subscriptions after the last epoch.
    pub final_subscriptions: usize,
}

/// Replays `schedule` against a dynamic clustering: every node crash
/// forcibly unsubscribes the crashed node's subscriptions (failure-
/// induced churn instead of user churn), then the clustering is
/// rebalanced against the surviving population after each epoch.
///
/// `homes` maps each dynamic subscription id to the node hosting it.
/// A recovered node's subscriptions stay gone — subscribers must
/// re-subscribe explicitly, as in real brokers. Ids already removed by
/// an earlier crash are skipped, so the only error surface is ids that
/// were never registered ([`DynamicError`]).
pub fn failure_churn(
    dynamic: &mut DynamicClustering,
    homes: &[(SubscriptionId, NodeId)],
    graph: &Graph,
    schedule: &FaultSchedule,
) -> Result<ChurnReport, DynamicError> {
    let mut report = ChurnReport {
        epochs: schedule.num_epochs(),
        ..ChurnReport::default()
    };
    let mut prev = DegradedView::healthy(graph);
    let mut gone = vec![false; homes.len()];
    for epoch in 0..schedule.num_epochs() {
        let view = schedule.view_at(graph, epoch);
        for n in graph.nodes() {
            if prev.node_live(n) && !view.node_live(n) {
                report.crashed_nodes += 1;
                for (i, &(id, home)) in homes.iter().enumerate() {
                    if home == n && !gone[i] {
                        dynamic.unsubscribe(id)?;
                        gone[i] = true;
                        report.forced_unsubscribes += 1;
                    }
                }
            }
        }
        report.rebalance_moves += dynamic.rebalance();
        if dynamic.last_rebalance().incremental {
            report.incremental_rebalances += 1;
        }
        prev = view;
    }
    report.final_subscriptions = dynamic.num_subscriptions();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FaultModel, Topology, TransitStubParams};
    use pubsub_core::{CellProbability, ClusteringAlgorithm, KMeans, KMeansVariant};
    use workload::{PredicateDist, Section3Model, Workload};

    fn scenario() -> (Topology, Workload) {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let model = Section3Model {
            regionalism: 0.4,
            dist: PredicateDist::Uniform,
            num_subscriptions: 200,
            num_events: 60,
        };
        let w = model.generate(&topo, &mut rng);
        (topo, w)
    }

    fn framework(w: &Workload) -> GridFramework {
        let grid = geometry::Grid::new(w.bounds.clone(), w.suggested_bins.clone()).unwrap();
        let rects: Vec<geometry::Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let sample: Vec<geometry::Point> = w.events.iter().map(|e| e.point.clone()).collect();
        let probs = CellProbability::empirical(&grid, &sample);
        GridFramework::build(grid, &rects, &probs, Some(2000))
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_breakdown() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 20);
        let mut ev = Evaluator::new(&topo, &w);
        let base = ev.grid_clustering_breakdown(&fw, &clustering, 0.0);
        let r = ev.resilience_breakdown(
            &fw,
            &clustering,
            0.0,
            &FaultSchedule::empty(),
            &RetryPolicy::default(),
            2002,
        );
        assert_eq!(r.multicast_cost.to_bits(), base.multicast_cost.to_bits());
        assert_eq!(r.unicast_cost.to_bits(), base.unicast_cost.to_bits());
        assert_eq!(r.multicast_events, base.multicast_events);
        assert_eq!(r.unicast_events, base.unicast_events);
        assert_eq!(r.events, base.events);
        assert_eq!(r.delivered, r.interested, "no member lost without faults");
        assert_eq!(r.dropped, 0);
        assert_eq!(r.fallback_deliveries, 0);
        assert_eq!(r.duplicated, 0);
        assert_eq!(r.retry_attempts, 0);
        assert_eq!(r.repair_traffic, 0.0);
        assert_eq!(r.spt_rebuilds, 0);
        assert_eq!(r.faulty_epochs, 0);
        assert_eq!(r.delivery_rate(), 1.0);
        assert_eq!(r.inflation_vs(&base), 0.0);
    }

    #[test]
    fn faulty_run_partitions_every_interested_member() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 20);
        let model = FaultModel {
            epochs: 4,
            link_fail: 0.12,
            node_crash: 0.05,
            degrade: 0.25,
            ..FaultModel::default()
        };
        let schedule = FaultSchedule::random(topo.graph(), &model, 7);
        let mut ev = Evaluator::new(&topo, &w);
        let base = ev.grid_clustering_breakdown(&fw, &clustering, 0.0);
        let r = ev.resilience_breakdown(
            &fw,
            &clustering,
            0.0,
            &schedule,
            &RetryPolicy::default(),
            2002,
        );
        assert_eq!(
            r.delivered + r.fallback_deliveries + r.dropped,
            r.interested
        );
        assert_eq!(r.epochs, 4);
        assert!(r.faulty_epochs >= 1, "stormy schedule produced no faults");
        assert!(r.spt_rebuilds > 0);
        assert!(r.total_cost().is_finite());
        assert!(r.delivery_rate() <= 1.0 && r.delivery_rate() >= 0.0);
        // Inflation is bounded below by "all traffic vanished": crashed
        // publishers and partitioned members produce no traffic at all,
        // so a faulty run may be *cheaper* than the baseline, but never
        // less than -100%.
        let inflation = r.inflation_vs(&base);
        assert!(inflation.is_finite());
        assert!(inflation >= -1.0, "inflation {inflation} below -100%");
    }

    #[test]
    fn resilience_is_deterministic_across_runs() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 20);
        let model = FaultModel::with_link_fail(3, 0.15);
        let schedule = FaultSchedule::random(topo.graph(), &model, 11);
        let run = || {
            let mut ev = Evaluator::new(&topo, &w);
            ev.resilience_breakdown(
                &fw,
                &clustering,
                0.0,
                &schedule,
                &RetryPolicy::default(),
                42,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    fn retry_policy_env_roundtrip() {
        // Defaults survive unset / garbage environment values.
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 3);
        assert!(p.backoff_sum(2) > p.backoff_base);
        let q = RetryPolicy::from_env();
        assert!(q.loss_prob >= 0.0 && q.loss_prob <= 1.0);
        assert!(q.backoff_base >= 1.0);
    }

    #[test]
    fn backoff_is_shift_capped_and_finite() {
        let p = RetryPolicy::default();
        // Below the cap the arithmetic is the plain geometric sum.
        let naive: f64 = (1..=7).map(|r| p.backoff_base.powi(r)).sum();
        assert_eq!(p.backoff_sum(7), naive);
        assert_eq!(p.backoff_at(3), p.backoff_base.powi(3));
        // Past the cap each retry waits the capped term, the sum stays
        // finite and is O(1) to compute even at u32::MAX retries.
        assert_eq!(p.backoff_at(33), p.backoff_at(u32::MAX));
        let huge = p.backoff_sum(u32::MAX);
        assert!(huge.is_finite());
        assert!(huge > p.backoff_sum(1_000));
        assert_eq!(
            p.backoff_sum(40),
            p.backoff_sum(32) + 8.0 * p.backoff_at(32)
        );
    }

    #[test]
    fn failure_churn_unsubscribes_crashed_homes() {
        let mut rng = StdRng::seed_from_u64(9);
        let topo = Topology::generate(
            &TransitStubParams {
                transit_blocks: 2,
                transit_nodes_per_block: 2,
                stubs_per_transit: 2,
                nodes_per_stub: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let g = topo.graph();
        let grid = geometry::Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let mut dynamic = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::Forgy), 3);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let homes: Vec<(SubscriptionId, NodeId)> = (0..30)
            .map(|i| {
                let a: f64 = rng.gen_range(0.0..10.0);
                let b: f64 = rng.gen_range(0.0..10.0);
                let rect = geometry::Rect::new(vec![geometry::Interval::from_unordered(a, b)]);
                (dynamic.subscribe(rect), nodes[i % nodes.len()])
            })
            .collect();
        dynamic.rebalance();
        let model = FaultModel {
            epochs: 3,
            node_crash: 0.3,
            node_recover: 0.0,
            ..FaultModel::default()
        };
        let schedule = FaultSchedule::random(g, &model, 13);
        let before = dynamic.num_subscriptions();
        let report = failure_churn(&mut dynamic, &homes, g, &schedule).unwrap();
        assert_eq!(report.epochs, 3);
        assert_eq!(report.final_subscriptions, dynamic.num_subscriptions());
        assert_eq!(
            before - report.forced_unsubscribes,
            report.final_subscriptions
        );
        // The final view's crashed nodes host no surviving subscription.
        let final_view = schedule.view_at(g, schedule.num_epochs() - 1);
        let expected_gone: usize = homes
            .iter()
            .filter(|(_, home)| !final_view.node_live(*home))
            .count();
        // node_recover = 0: every crash is permanent, so exactly the
        // subscriptions on finally-dead nodes are gone.
        assert_eq!(report.forced_unsubscribes, expected_gone);
        assert!(report.crashed_nodes >= 1, "seed produced no crashes");
    }

    #[test]
    fn failure_churn_rejects_unknown_ids() {
        let grid = geometry::Grid::cube(0.0, 10.0, 1, 4).unwrap();
        let probs = CellProbability::uniform(&grid);
        let mut dynamic = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::Forgy), 2);
        let g = {
            let mut g = Graph::with_nodes(2);
            g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
            g
        };
        let mut schedule = FaultSchedule::new(1);
        schedule.push(0, netsim::Fault::NodeCrash(NodeId(1)));
        let bogus = vec![(SubscriptionId(99), NodeId(1))];
        assert!(failure_churn(&mut dynamic, &bogus, &g, &schedule).is_err());
    }
}
