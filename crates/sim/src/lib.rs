//! End-to-end simulation of content-based pub-sub delivery: ties the
//! network substrate (`netsim`), the workload generators (`workload`)
//! and the clustering algorithms (`pubsub-core`) together, computes the
//! per-event delivery cost of every scheme the paper compares, and
//! regenerates every table and figure of its evaluation.
//!
//! * [`Evaluator`] — per-event costs: unicast, broadcast, ideal
//!   multicast, grid-clustered multicast, No-Loss delivery, under
//!   network-supported and application-level multicast;
//! * [`experiments`] — drivers for Tables 1–2 and
//!   Figures 7–11;
//! * [`report`] — text rendering in the paper's layout.
//!
//! # Example
//!
//! ```no_run
//! use sim::experiments::{fig7, Fig7Config};
//! use sim::report::render_group_sweep;
//!
//! let result = fig7(&Fig7Config::quick());
//! println!("{}", render_group_sweep("Figure 7 (quick)", &result));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delivery;
pub mod experiments;
pub mod report;
mod resilience;
mod scenario;
mod service;
pub mod stats;
mod system;

pub use delivery::{BaselineCosts, DeliveryBreakdown, Evaluator, MulticastMode};
pub use resilience::{failure_churn, ChurnReport, ResilienceBreakdown, RetryPolicy};
pub use scenario::StockScenario;
pub use service::{run_chaos, ChaosRunReport};
pub use system::{DeliveryReport, PubSubSystem, SystemStats};
