//! Per-event delivery-cost evaluation: the bridge between clusterings
//! and the network cost models.
//!
//! Costs follow Section 5.2 of the paper: the cost of delivering one
//! event is the sum of edge costs on every link the message crosses.
//! All aggregate numbers reported here are *mean cost per event* over
//! the workload's event stream.

use netsim::{FrozenRouter, NodeId, ShortestPathTree, Topology};
use pubsub_core::{
    parallel, BatchScratch, BitSet, Clustering, Delivery, DispatchPlan, GridFramework,
    NoLossClustering, NoLossDispatchPlan, SubscriptionIndex,
};
use workload::Workload;

/// Fixed per-chunk event count for parallel cost sums. The chunk size is
/// a constant — never derived from the thread count — so partial sums
/// are combined identically no matter how many workers run, keeping
/// every reported figure bit-for-bit reproducible.
pub(crate) const EVENT_CHUNK: usize = 64;

/// Which multicast substrate delivers group traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulticastMode {
    /// Dense-mode network-supported multicast: the shortest-path tree
    /// rooted at the publisher, pruned to the group (the paper's
    /// assumption: "the routing tree is a shortest path tree rooted at
    /// publisher").
    NetworkSupported,
    /// Application-level multicast: group members form an overlay MST
    /// of unicast paths.
    ApplicationLevel,
    /// Sparse-mode network multicast: one shared tree per group rooted
    /// at a rendezvous point; publishers unicast into the RP. Less
    /// router state (per group instead of per publisher-group), an
    /// entry detour per event.
    SparseMode,
}

/// Mean per-event costs of the three baseline schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineCosts {
    /// Each interested node served by its own unicast.
    pub unicast: f64,
    /// Flooding the full shortest-path tree to every node.
    pub broadcast: f64,
    /// A dedicated multicast group per event (the unreachable optimum
    /// that needs up to `2^Ns` groups).
    pub ideal: f64,
}

impl BaselineCosts {
    /// The improvement percentage of a scheme with mean cost `cost`:
    /// 0% = unicast, 100% = ideal multicast (Section 5.2).
    ///
    /// Returns 100 when unicast and ideal coincide (nothing to improve).
    pub fn improvement_pct(&self, cost: f64) -> f64 {
        let denom = self.unicast - self.ideal;
        if denom.abs() < 1e-12 {
            return 100.0;
        }
        100.0 * (self.unicast - cost) / denom
    }
}

/// Detailed accounting of one clustering's delivery behaviour over an
/// event stream (dense-mode multicast).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeliveryBreakdown {
    /// Events evaluated.
    pub events: usize,
    /// Events delivered via a multicast group.
    pub multicast_events: usize,
    /// Events delivered by unicast fallback.
    pub unicast_events: usize,
    /// Total cost of the multicast deliveries.
    pub multicast_cost: f64,
    /// Total cost of the unicast deliveries.
    pub unicast_cost: f64,
    /// Mean member-node count of matched groups.
    pub mean_group_nodes: f64,
    /// Mean number of *uninterested* nodes per multicast — the
    /// empirical counterpart of the expected-waste objective.
    pub mean_wasted_nodes: f64,
    /// Mean interested-node count per event (ground truth).
    pub mean_interested_nodes: f64,
}

impl DeliveryBreakdown {
    /// Fraction of events that used a multicast group.
    pub fn match_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.multicast_events as f64 / self.events as f64
        }
    }

    /// Mean total cost per event.
    pub fn mean_cost(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.multicast_cost + self.unicast_cost) / self.events as f64
        }
    }
}

/// A delivery-cost evaluator bound to one topology and one workload.
///
/// Caches per-event interested sets and per-publisher shortest-path
/// trees, so evaluating many clusterings over the same scenario is
/// cheap. Event evaluation fans out across threads (see
/// [`pubsub_core::parallel`]): shortest-path trees are computed in
/// parallel once per source, then per-event costs are summed in
/// fixed-size chunks against the immutable [`FrozenRouter`] view.
pub struct Evaluator<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) workload: &'a Workload,
    pub(crate) frozen: FrozenRouter<'a>,
    /// Interested subscription ids per event (aligned with
    /// `workload.events`).
    pub(crate) interested_subs: Vec<BitSet>,
    /// Deduplicated interested nodes per event.
    pub(crate) interested_nodes: Vec<Vec<NodeId>>,
}

impl<'a> Evaluator<'a> {
    /// Builds the evaluator, precomputing the exact interested set of
    /// every event via an R-tree subscription index (the matching
    /// problem of Section 4.6; equivalent to — and tested against —
    /// the brute-force scan). Events are matched in parallel.
    pub fn new(topo: &'a Topology, workload: &'a Workload) -> Self {
        let ns = workload.subscriptions.len();
        let rects: Vec<geometry::Rect> = workload
            .subscriptions
            .iter()
            .map(|s| s.rect.clone())
            .collect();
        let index = SubscriptionIndex::build(&rects);
        let per_chunk = parallel::par_chunks(workload.events.len(), EVENT_CHUNK, |range| {
            // One match buffer per chunk: `matching_into` clears and
            // refills it, so the hot loop stays allocation-free.
            let mut matched: Vec<usize> = Vec::new();
            let mut out = Vec::with_capacity(range.len());
            for e in range {
                index.matching_into(&workload.events[e].point, &mut matched);
                let mut nodes: Vec<NodeId> = matched
                    .iter()
                    .map(|&i| workload.subscriptions[i].node)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                out.push((BitSet::from_members(ns, matched.iter().copied()), nodes));
            }
            out
        });
        let mut interested_subs = Vec::with_capacity(workload.events.len());
        let mut interested_nodes = Vec::with_capacity(workload.events.len());
        for (subs, nodes) in per_chunk.into_iter().flatten() {
            interested_subs.push(subs);
            interested_nodes.push(nodes);
        }
        Evaluator {
            topo,
            workload,
            frozen: FrozenRouter::new(topo.graph()),
            interested_subs,
            interested_nodes,
        }
    }

    /// Ensures the frozen router holds a shortest-path tree for every
    /// source in `sources`, computing the missing ones in parallel.
    pub(crate) fn ensure_spts(&mut self, sources: impl IntoIterator<Item = NodeId>) {
        let mut missing: Vec<NodeId> = sources
            .into_iter()
            .filter(|&s| !self.frozen.contains(s))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            return;
        }
        let graph = self.topo.graph();
        let spts = parallel::par_map(&missing, 2, |&s| ShortestPathTree::compute(graph, s));
        for spt in spts {
            self.frozen.insert_spt(spt);
        }
    }

    /// Member-node lists of every group-like membership set, sorted and
    /// deduplicated, computed in parallel.
    pub(crate) fn member_nodes(&self, memberships: &[&BitSet]) -> Vec<Vec<NodeId>> {
        let subscriptions = &self.workload.subscriptions;
        parallel::par_map(memberships, 8, |members| {
            let mut nodes: Vec<NodeId> = members.iter().map(|i| subscriptions[i].node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            nodes
        })
    }

    /// The topology under evaluation.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The workload under evaluation.
    pub fn workload(&self) -> &'a Workload {
        self.workload
    }

    /// Number of events in the stream.
    pub fn num_events(&self) -> usize {
        self.workload.events.len()
    }

    /// Mean per-event cost of the three baseline schemes. Events are
    /// evaluated in parallel over fixed-size chunks.
    pub fn baseline_costs(&mut self) -> BaselineCosts {
        let workload = self.workload;
        self.ensure_spts(workload.events.iter().map(|e| e.publisher));
        let events = &workload.events;
        let frozen = &self.frozen;
        let nodes = &self.interested_nodes;
        let n = events.len().max(1) as f64;
        // lint: hot-path
        let partials = parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
            let (mut u, mut b, mut i) = (0.0f64, 0.0f64, 0.0f64);
            for e in range {
                let ev = &events[e];
                u += frozen.unicast_cost(ev.publisher, nodes[e].iter().copied());
                b += frozen.broadcast_cost(ev.publisher);
                i += frozen.group_multicast_cost(ev.publisher, &nodes[e]);
            }
            (u, b, i)
        });
        // lint: hot-path end
        let (unicast, broadcast, ideal) = partials
            .into_iter()
            .fold((0.0, 0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1, a.2 + p.2));
        BaselineCosts {
            unicast: unicast / n,
            broadcast: broadcast / n,
            ideal: ideal / n,
        }
    }

    /// Mean per-event cost of delivering through a grid-based
    /// clustering: events are matched by cell, multicast to the matched
    /// group (under `mode`) or unicast to the interested nodes when no
    /// group matches / the `threshold` optimization rejects the group.
    pub fn grid_clustering_cost(
        &mut self,
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        mode: MulticastMode,
    ) -> f64 {
        let workload = self.workload;
        let events = &workload.events;
        // Static per-group member-node lists (parallel over groups).
        let memberships: Vec<&BitSet> = clustering.groups().iter().map(|g| &g.members).collect();
        let group_nodes = self.member_nodes(&memberships);
        // Match every event up front through the compiled dispatch
        // plan's cell-bucketed batch kernel (bit-identical to
        // `GridMatcher` and to per-event `dispatch`, emitting in event
        // order); chunks are the fixed `EVENT_CHUNK`, so decisions and
        // ordering are thread-count independent.
        let plan = DispatchPlan::compile(framework, clustering).with_threshold(threshold);
        let matches: Vec<Delivery> = {
            let subs = &self.interested_subs;
            // lint: hot-path
            parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
                let mut scratch = BatchScratch::new();
                let mut out = Vec::with_capacity(range.len());
                plan.dispatch_batch(
                    range,
                    |e| &events[e].point,
                    |e| &subs[e],
                    &mut scratch,
                    &mut out,
                );
                out
            })
            // lint: hot-path end
            .into_iter()
            .flatten()
            .collect()
        };
        // Per-group event-independent state, resolved exactly as the
        // per-event lazy initialization would have: the first matching
        // event's publisher backs the (degenerate) empty-group RP case.
        let mut matched = vec![false; group_nodes.len()];
        let mut first_pub: Vec<Option<NodeId>> = vec![None; group_nodes.len()];
        for (e, m) in matches.iter().enumerate() {
            if let Delivery::Multicast { group } = *m {
                if !matched[group] {
                    matched[group] = true;
                    first_pub[group] = Some(events[e].publisher);
                }
            }
        }
        // Warm every SPT the cost pass will read, in parallel.
        let mut warm: Vec<NodeId> = events.iter().map(|e| e.publisher).collect();
        if mode != MulticastMode::NetworkSupported {
            for (g, nodes) in group_nodes.iter().enumerate() {
                if matched[g] {
                    warm.extend(nodes.iter().copied());
                }
            }
        }
        self.ensure_spts(warm);
        let frozen = &self.frozen;
        let app_tree: Vec<Option<f64>> = if mode == MulticastMode::ApplicationLevel {
            parallel::par_map_indexed(group_nodes.len(), 4, |g| {
                matched[g].then(|| frozen.overlay_mst_cost(&group_nodes[g]))
            })
        } else {
            vec![None; group_nodes.len()]
        };
        let rps: Vec<Option<NodeId>> = if mode == MulticastMode::SparseMode {
            parallel::par_map_indexed(group_nodes.len(), 4, |g| {
                matched[g].then(|| {
                    frozen
                        .rendezvous_point(&group_nodes[g])
                        .or(first_pub[g])
                        .expect("matched group has a first publisher")
                })
            })
        } else {
            vec![None; group_nodes.len()]
        };
        let inodes = &self.interested_nodes;
        let n = events.len().max(1) as f64;
        let total: f64 = parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
            let mut acc = 0.0;
            for e in range {
                let ev = &events[e];
                acc += match matches[e] {
                    Delivery::Multicast { group } => match mode {
                        MulticastMode::NetworkSupported => {
                            frozen.group_multicast_cost(ev.publisher, &group_nodes[group])
                        }
                        MulticastMode::ApplicationLevel => {
                            app_tree[group].expect("precomputed for matched groups")
                                + frozen.entry_cost(ev.publisher, &group_nodes[group])
                        }
                        MulticastMode::SparseMode => frozen.sparse_multicast_cost(
                            ev.publisher,
                            rps[group].expect("precomputed for matched groups"),
                            &group_nodes[group],
                        ),
                    },
                    Delivery::Unicast => {
                        frozen.unicast_cost(ev.publisher, inodes[e].iter().copied())
                    }
                };
            }
            acc
        })
        .into_iter()
        // lint: allow(float-det): the partials come from par_chunks'
        // fixed EVENT_CHUNK decomposition, returned in chunk order;
        // this serial sum folds them in that fixed order, so the
        // result is bit-identical at any thread count.
        .sum();
        total / n
    }

    /// Detailed per-event accounting for a grid clustering under
    /// dense-mode multicast: where the cost goes and how much of it is
    /// waste. Complements [`Evaluator::grid_clustering_cost`] (which
    /// reports only the mean) for diagnostics and reports.
    pub fn grid_clustering_breakdown(
        &mut self,
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
    ) -> DeliveryBreakdown {
        let workload = self.workload;
        let events = &workload.events;
        let memberships: Vec<&BitSet> = clustering.groups().iter().map(|g| &g.members).collect();
        let group_nodes = self.member_nodes(&memberships);
        let plan = DispatchPlan::compile(framework, clustering).with_threshold(threshold);
        let matches: Vec<Delivery> = {
            let subs = &self.interested_subs;
            // lint: hot-path
            parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
                let mut scratch = BatchScratch::new();
                let mut out = Vec::with_capacity(range.len());
                plan.dispatch_batch(
                    range,
                    |e| &events[e].point,
                    |e| &subs[e],
                    &mut scratch,
                    &mut out,
                );
                out
            })
            // lint: hot-path end
            .into_iter()
            .flatten()
            .collect()
        };
        self.ensure_spts(events.iter().map(|e| e.publisher));
        let frozen = &self.frozen;
        let inodes = &self.interested_nodes;
        // Chunked partial tallies: counts are exact, costs are combined
        // in chunk order (fixed chunk size → thread-count independent).
        struct Partial {
            multicast_events: usize,
            unicast_events: usize,
            multicast_cost: f64,
            unicast_cost: f64,
            group_node_sum: usize,
            interested_sum: usize,
            wasted_nodes: usize,
        }
        let partials = parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
            let mut p = Partial {
                multicast_events: 0,
                unicast_events: 0,
                multicast_cost: 0.0,
                unicast_cost: 0.0,
                group_node_sum: 0,
                interested_sum: 0,
                wasted_nodes: 0,
            };
            for e in range {
                let ev = &events[e];
                p.interested_sum += inodes[e].len();
                match matches[e] {
                    Delivery::Multicast { group } => {
                        p.multicast_events += 1;
                        let members = &group_nodes[group];
                        p.group_node_sum += members.len();
                        // Nodes in the group that have no interested
                        // subscription for this event receive waste.
                        p.wasted_nodes += members
                            .iter()
                            .filter(|n| inodes[e].binary_search(n).is_err())
                            .count();
                        p.multicast_cost += frozen.group_multicast_cost(ev.publisher, members);
                    }
                    Delivery::Unicast => {
                        p.unicast_events += 1;
                        p.unicast_cost +=
                            frozen.unicast_cost(ev.publisher, inodes[e].iter().copied());
                    }
                }
            }
            p
        });
        let mut out = DeliveryBreakdown {
            events: events.len(),
            ..DeliveryBreakdown::default()
        };
        let mut group_node_sum = 0usize;
        let mut interested_sum = 0usize;
        let mut wasted_nodes = 0usize;
        for p in partials {
            out.multicast_events += p.multicast_events;
            out.unicast_events += p.unicast_events;
            out.multicast_cost += p.multicast_cost;
            out.unicast_cost += p.unicast_cost;
            group_node_sum += p.group_node_sum;
            interested_sum += p.interested_sum;
            wasted_nodes += p.wasted_nodes;
        }
        if out.multicast_events > 0 {
            out.mean_group_nodes = group_node_sum as f64 / out.multicast_events as f64;
            out.mean_wasted_nodes = wasted_nodes as f64 / out.multicast_events as f64;
        }
        if out.events > 0 {
            out.mean_interested_nodes = interested_sum as f64 / out.events as f64;
        }
        out
    }

    /// Mean per-event cost of delivering through a No-Loss clustering
    /// (Figure 6 of the paper): multicast to the heaviest matching
    /// region's subscribers, unicast to the remaining interested nodes.
    pub fn noloss_cost(&mut self, clustering: &NoLossClustering, mode: MulticastMode) -> f64 {
        let workload = self.workload;
        let events = &workload.events;
        // Static per-region member-node lists (parallel over regions).
        let memberships: Vec<&BitSet> = clustering
            .regions()
            .iter()
            .map(|r| &r.subscribers)
            .collect();
        let region_nodes = self.member_nodes(&memberships);
        // Match every event up front through the compiled No-Loss plan
        // (identical decisions, no per-candidate re-counting).
        let plan = NoLossDispatchPlan::compile(clustering);
        let matches: Vec<Option<usize>> =
            parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
                let mut out = Vec::with_capacity(range.len());
                plan.dispatch_chunk(range, |e| &events[e].point, &mut out);
                out
            })
            .into_iter()
            .flatten()
            .collect();
        // Per-region event-independent state (overlay MST / RP),
        // resolved as the per-event lazy initialization would have.
        let mut matched = vec![false; region_nodes.len()];
        let mut first_pub: Vec<Option<NodeId>> = vec![None; region_nodes.len()];
        for (e, m) in matches.iter().enumerate() {
            if let Some(region) = *m {
                if !matched[region] {
                    matched[region] = true;
                    first_pub[region] = Some(events[e].publisher);
                }
            }
        }
        let mut warm: Vec<NodeId> = events.iter().map(|e| e.publisher).collect();
        if mode != MulticastMode::NetworkSupported {
            for (r, nodes) in region_nodes.iter().enumerate() {
                if matched[r] {
                    warm.extend(nodes.iter().copied());
                }
            }
        }
        self.ensure_spts(warm);
        let frozen = &self.frozen;
        let app_tree: Vec<Option<f64>> = if mode == MulticastMode::ApplicationLevel {
            parallel::par_map_indexed(region_nodes.len(), 4, |r| {
                matched[r].then(|| frozen.overlay_mst_cost(&region_nodes[r]))
            })
        } else {
            vec![None; region_nodes.len()]
        };
        let rps: Vec<Option<NodeId>> = if mode == MulticastMode::SparseMode {
            parallel::par_map_indexed(region_nodes.len(), 4, |r| {
                matched[r].then(|| {
                    frozen
                        .rendezvous_point(&region_nodes[r])
                        .or(first_pub[r])
                        .expect("matched region has a first publisher")
                })
            })
        } else {
            vec![None; region_nodes.len()]
        };
        let inodes = &self.interested_nodes;
        let n = events.len().max(1) as f64;
        let total: f64 = parallel::par_chunks(events.len(), EVENT_CHUNK, |range| {
            let mut acc = 0.0;
            for e in range {
                let ev = &events[e];
                match matches[e] {
                    Some(region) => {
                        let covered = &region_nodes[region];
                        acc += match mode {
                            MulticastMode::NetworkSupported => {
                                frozen.group_multicast_cost(ev.publisher, covered)
                            }
                            MulticastMode::ApplicationLevel => {
                                app_tree[region].expect("precomputed for matched regions")
                                    + frozen.entry_cost(ev.publisher, covered)
                            }
                            MulticastMode::SparseMode => frozen.sparse_multicast_cost(
                                ev.publisher,
                                rps[region].expect("precomputed for matched regions"),
                                covered,
                            ),
                        };
                        // Unicast top-up for interested nodes outside the
                        // region.
                        let extra = inodes[e]
                            .iter()
                            .copied()
                            .filter(|n| covered.binary_search(n).is_err());
                        acc += frozen.unicast_cost(ev.publisher, extra);
                    }
                    None => {
                        acc += frozen.unicast_cost(ev.publisher, inodes[e].iter().copied());
                    }
                }
            }
            acc
        })
        .into_iter()
        // lint: allow(float-det): fixed EVENT_CHUNK partials folded
        // serially in chunk order (same argument as total_cost), so
        // the result is bit-identical at any thread count.
        .sum();
        total / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;
    use pubsub_core::{CellProbability, ClusteringAlgorithm, KMeans, KMeansVariant, NoLossConfig};
    use rand::prelude::*;
    use workload::{PredicateDist, Section3Model};

    fn scenario() -> (Topology, Workload) {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let model = Section3Model {
            regionalism: 0.4,
            dist: PredicateDist::Uniform,
            num_subscriptions: 200,
            num_events: 60,
        };
        let w = model.generate(&topo, &mut rng);
        (topo, w)
    }

    fn framework(w: &Workload) -> GridFramework {
        let grid = geometry::Grid::new(w.bounds.clone(), w.suggested_bins.clone()).unwrap();
        let rects: Vec<geometry::Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let sample: Vec<geometry::Point> = w.events.iter().map(|e| e.point.clone()).collect();
        let probs = CellProbability::empirical(&grid, &sample);
        GridFramework::build(grid, &rects, &probs, Some(2000))
    }

    #[test]
    fn baselines_are_ordered() {
        let (topo, w) = scenario();
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        assert!(
            b.ideal <= b.unicast + 1e-9,
            "ideal {} > unicast {}",
            b.ideal,
            b.unicast
        );
        assert!(b.ideal <= b.broadcast + 1e-9);
        assert!(b.unicast > 0.0);
    }

    #[test]
    fn improvement_pct_endpoints() {
        let b = BaselineCosts {
            unicast: 100.0,
            broadcast: 80.0,
            ideal: 20.0,
        };
        assert_eq!(b.improvement_pct(100.0), 0.0);
        assert_eq!(b.improvement_pct(20.0), 100.0);
        assert_eq!(b.improvement_pct(60.0), 50.0);
        let degenerate = BaselineCosts {
            unicast: 50.0,
            broadcast: 50.0,
            ideal: 50.0,
        };
        assert_eq!(degenerate.improvement_pct(50.0), 100.0);
    }

    #[test]
    fn clustered_multicast_between_unicast_and_ideal() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        // Clustered delivery can't beat per-event ideal groups.
        assert!(cost >= b.ideal - 1e-9, "cost {cost} < ideal {}", b.ideal);
        // And with a sane clustering it should beat plain unicast here
        // (regional workload on a 100-node net).
        assert!(
            cost <= b.unicast * 1.5,
            "cost {cost} vs unicast {}",
            b.unicast
        );
    }

    #[test]
    fn app_level_costs_are_sane_and_close_to_network_level() {
        // No strict dominance holds in either direction (the pruned SPT
        // is not a Steiner tree), but on real scenarios the two levels
        // must be in the same ballpark and both above the ideal.
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let net = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        let app = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::ApplicationLevel);
        assert!(net >= b.ideal - 1e-9);
        assert!(app >= b.ideal - 1e-9);
        assert!(app <= 3.0 * net, "app {app} wildly above net {net}");
    }

    #[test]
    fn threshold_one_reduces_to_unicast_of_interested() {
        // With threshold 1.0, multicast only fires when every group
        // member is interested; costs must be <= pure unicast (it picks
        // the better of the two per event).
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let cost = ev.grid_clustering_cost(&fw, &clustering, 1.0, MulticastMode::NetworkSupported);
        assert!(cost <= b.unicast + 1e-9);
    }

    #[test]
    fn breakdown_is_consistent_with_mean_cost() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let mean = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        let bd = ev.grid_clustering_breakdown(&fw, &clustering, 0.0);
        assert_eq!(bd.events, w.events.len());
        assert_eq!(bd.multicast_events + bd.unicast_events, bd.events);
        assert!(
            (bd.mean_cost() - mean).abs() < 1e-9,
            "{} vs {mean}",
            bd.mean_cost()
        );
        assert!((0.0..=1.0).contains(&bd.match_rate()));
        // The group is a superset of the interested nodes, so waste is
        // at most the group size.
        assert!(bd.mean_wasted_nodes <= bd.mean_group_nodes);
        // Empty breakdown is well-behaved.
        let empty = DeliveryBreakdown::default();
        assert_eq!(empty.match_rate(), 0.0);
        assert_eq!(empty.mean_cost(), 0.0);
    }

    #[test]
    fn sparse_mode_costs_are_sane() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let sparse = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::SparseMode);
        assert!(sparse.is_finite());
        assert!(
            sparse >= b.ideal - 1e-9,
            "sparse {sparse} < ideal {}",
            b.ideal
        );
    }

    #[test]
    fn noloss_cost_is_bounded_by_unicast_factor() {
        let (topo, w) = scenario();
        let rects: Vec<geometry::Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let sample: Vec<geometry::Point> = w.events.iter().map(|e| e.point.clone()).collect();
        let nl = pubsub_core::NoLossClustering::build(
            &rects,
            &sample,
            &NoLossConfig {
                max_rects: 500,
                iterations: 3,
                max_candidates_per_round: 50_000,
            },
            50,
        );
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let cost = ev.noloss_cost(&nl, MulticastMode::NetworkSupported);
        assert!(cost >= b.ideal - 1e-9);
        // No-loss delivery covers every interested node (group + top-up),
        // so it can't exceed unicast by the multicast detour alone; the
        // group tree shares edges, so it should in fact be cheaper or
        // equal on average.
        assert!(
            cost <= b.unicast + 1e-9,
            "cost {cost} vs unicast {}",
            b.unicast
        );
    }
}
