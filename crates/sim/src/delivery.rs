//! Per-event delivery-cost evaluation: the bridge between clusterings
//! and the network cost models.
//!
//! Costs follow Section 5.2 of the paper: the cost of delivering one
//! event is the sum of edge costs on every link the message crosses.
//! All aggregate numbers reported here are *mean cost per event* over
//! the workload's event stream.

use netsim::{NodeId, Router, Topology};
use pubsub_core::{
    BitSet, Clustering, Delivery, GridFramework, GridMatcher, NoLossClustering,
    SubscriptionIndex,
};
use workload::Workload;

/// Which multicast substrate delivers group traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulticastMode {
    /// Dense-mode network-supported multicast: the shortest-path tree
    /// rooted at the publisher, pruned to the group (the paper's
    /// assumption: "the routing tree is a shortest path tree rooted at
    /// publisher").
    NetworkSupported,
    /// Application-level multicast: group members form an overlay MST
    /// of unicast paths.
    ApplicationLevel,
    /// Sparse-mode network multicast: one shared tree per group rooted
    /// at a rendezvous point; publishers unicast into the RP. Less
    /// router state (per group instead of per publisher-group), an
    /// entry detour per event.
    SparseMode,
}

/// Mean per-event costs of the three baseline schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineCosts {
    /// Each interested node served by its own unicast.
    pub unicast: f64,
    /// Flooding the full shortest-path tree to every node.
    pub broadcast: f64,
    /// A dedicated multicast group per event (the unreachable optimum
    /// that needs up to `2^Ns` groups).
    pub ideal: f64,
}

impl BaselineCosts {
    /// The improvement percentage of a scheme with mean cost `cost`:
    /// 0% = unicast, 100% = ideal multicast (Section 5.2).
    ///
    /// Returns 100 when unicast and ideal coincide (nothing to improve).
    pub fn improvement_pct(&self, cost: f64) -> f64 {
        let denom = self.unicast - self.ideal;
        if denom.abs() < 1e-12 {
            return 100.0;
        }
        100.0 * (self.unicast - cost) / denom
    }
}

/// Detailed accounting of one clustering's delivery behaviour over an
/// event stream (dense-mode multicast).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeliveryBreakdown {
    /// Events evaluated.
    pub events: usize,
    /// Events delivered via a multicast group.
    pub multicast_events: usize,
    /// Events delivered by unicast fallback.
    pub unicast_events: usize,
    /// Total cost of the multicast deliveries.
    pub multicast_cost: f64,
    /// Total cost of the unicast deliveries.
    pub unicast_cost: f64,
    /// Mean member-node count of matched groups.
    pub mean_group_nodes: f64,
    /// Mean number of *uninterested* nodes per multicast — the
    /// empirical counterpart of the expected-waste objective.
    pub mean_wasted_nodes: f64,
    /// Mean interested-node count per event (ground truth).
    pub mean_interested_nodes: f64,
}

impl DeliveryBreakdown {
    /// Fraction of events that used a multicast group.
    pub fn match_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.multicast_events as f64 / self.events as f64
        }
    }

    /// Mean total cost per event.
    pub fn mean_cost(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.multicast_cost + self.unicast_cost) / self.events as f64
        }
    }
}

/// A delivery-cost evaluator bound to one topology and one workload.
///
/// Caches per-event interested sets and per-publisher shortest-path
/// trees, so evaluating many clusterings over the same scenario is
/// cheap.
pub struct Evaluator<'a> {
    topo: &'a Topology,
    workload: &'a Workload,
    router: Router<'a>,
    /// Interested subscription ids per event (aligned with
    /// `workload.events`).
    interested_subs: Vec<BitSet>,
    /// Deduplicated interested nodes per event.
    interested_nodes: Vec<Vec<NodeId>>,
}

impl<'a> Evaluator<'a> {
    /// Builds the evaluator, precomputing the exact interested set of
    /// every event via an R-tree subscription index (the matching
    /// problem of Section 4.6; equivalent to — and tested against —
    /// the brute-force scan).
    pub fn new(topo: &'a Topology, workload: &'a Workload) -> Self {
        let ns = workload.subscriptions.len();
        let rects: Vec<geometry::Rect> = workload
            .subscriptions
            .iter()
            .map(|s| s.rect.clone())
            .collect();
        let index = SubscriptionIndex::build(&rects);
        let mut interested_subs = Vec::with_capacity(workload.events.len());
        let mut interested_nodes = Vec::with_capacity(workload.events.len());
        for ev in &workload.events {
            let subs = index.matching(&ev.point);
            let mut nodes: Vec<NodeId> =
                subs.iter().map(|&i| workload.subscriptions[i].node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            interested_subs.push(BitSet::from_members(ns, subs));
            interested_nodes.push(nodes);
        }
        Evaluator {
            topo,
            workload,
            router: Router::new(topo.graph()),
            interested_subs,
            interested_nodes,
        }
    }

    /// The topology under evaluation.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The workload under evaluation.
    pub fn workload(&self) -> &'a Workload {
        self.workload
    }

    /// Number of events in the stream.
    pub fn num_events(&self) -> usize {
        self.workload.events.len()
    }

    /// Mean per-event cost of the three baseline schemes.
    pub fn baseline_costs(&mut self) -> BaselineCosts {
        let n = self.workload.events.len().max(1) as f64;
        let mut unicast = 0.0;
        let mut broadcast = 0.0;
        let mut ideal = 0.0;
        for (e, ev) in self.workload.events.iter().enumerate() {
            let nodes = &self.interested_nodes[e];
            unicast += self.router.unicast_cost(ev.publisher, nodes.iter().copied());
            broadcast += self.router.broadcast_cost(ev.publisher);
            ideal += self.router.group_multicast_cost(ev.publisher, nodes);
        }
        BaselineCosts {
            unicast: unicast / n,
            broadcast: broadcast / n,
            ideal: ideal / n,
        }
    }

    /// Mean per-event cost of delivering through a grid-based
    /// clustering: events are matched by cell, multicast to the matched
    /// group (under `mode`) or unicast to the interested nodes when no
    /// group matches / the `threshold` optimization rejects the group.
    pub fn grid_clustering_cost(
        &mut self,
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        mode: MulticastMode,
    ) -> f64 {
        // Static per-group member-node lists.
        let group_nodes: Vec<Vec<NodeId>> = clustering
            .groups()
            .iter()
            .map(|g| {
                let mut nodes: Vec<NodeId> = g
                    .members
                    .iter()
                    .map(|i| self.workload.subscriptions[i].node)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            })
            .collect();
        let matcher = GridMatcher::new(framework, clustering).with_threshold(threshold);
        let n = self.workload.events.len().max(1) as f64;
        // Per-group event-independent state: the overlay MST cost
        // (app-level) or the rendezvous point (sparse mode).
        let mut app_tree: Vec<Option<f64>> = vec![None; group_nodes.len()];
        let mut rps: Vec<Option<NodeId>> = vec![None; group_nodes.len()];
        let mut total = 0.0;
        for (e, ev) in self.workload.events.iter().enumerate() {
            match matcher.match_event(&ev.point, &self.interested_subs[e]) {
                Delivery::Multicast { group } => {
                    total += match mode {
                        MulticastMode::NetworkSupported => self
                            .router
                            .group_multicast_cost(ev.publisher, &group_nodes[group]),
                        MulticastMode::ApplicationLevel => {
                            let tree = *app_tree[group].get_or_insert_with(|| {
                                self.router.overlay_mst_cost(&group_nodes[group])
                            });
                            tree + self.router.entry_cost(ev.publisher, &group_nodes[group])
                        }
                        MulticastMode::SparseMode => {
                            let rp = *rps[group].get_or_insert_with(|| {
                                self.router
                                    .rendezvous_point(&group_nodes[group])
                                    .unwrap_or(ev.publisher)
                            });
                            self.router
                                .sparse_multicast_cost(ev.publisher, rp, &group_nodes[group])
                        }
                    };
                }
                Delivery::Unicast => {
                    total += self
                        .router
                        .unicast_cost(ev.publisher, self.interested_nodes[e].iter().copied());
                }
            }
        }
        total / n
    }

    /// Detailed per-event accounting for a grid clustering under
    /// dense-mode multicast: where the cost goes and how much of it is
    /// waste. Complements [`Evaluator::grid_clustering_cost`] (which
    /// reports only the mean) for diagnostics and reports.
    pub fn grid_clustering_breakdown(
        &mut self,
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
    ) -> DeliveryBreakdown {
        let group_nodes: Vec<Vec<NodeId>> = clustering
            .groups()
            .iter()
            .map(|g| {
                let mut nodes: Vec<NodeId> = g
                    .members
                    .iter()
                    .map(|i| self.workload.subscriptions[i].node)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            })
            .collect();
        let matcher = GridMatcher::new(framework, clustering).with_threshold(threshold);
        let mut out = DeliveryBreakdown::default();
        let mut group_node_sum = 0usize;
        let mut interested_sum = 0usize;
        let mut wasted_nodes = 0usize;
        for (e, ev) in self.workload.events.iter().enumerate() {
            out.events += 1;
            interested_sum += self.interested_nodes[e].len();
            match matcher.match_event(&ev.point, &self.interested_subs[e]) {
                Delivery::Multicast { group } => {
                    out.multicast_events += 1;
                    let members = &group_nodes[group];
                    group_node_sum += members.len();
                    // Nodes in the group that have no interested
                    // subscription for this event receive waste.
                    wasted_nodes += members
                        .iter()
                        .filter(|n| self.interested_nodes[e].binary_search(n).is_err())
                        .count();
                    out.multicast_cost +=
                        self.router.group_multicast_cost(ev.publisher, members);
                }
                Delivery::Unicast => {
                    out.unicast_events += 1;
                    out.unicast_cost += self
                        .router
                        .unicast_cost(ev.publisher, self.interested_nodes[e].iter().copied());
                }
            }
        }
        if out.multicast_events > 0 {
            out.mean_group_nodes = group_node_sum as f64 / out.multicast_events as f64;
            out.mean_wasted_nodes = wasted_nodes as f64 / out.multicast_events as f64;
        }
        if out.events > 0 {
            out.mean_interested_nodes = interested_sum as f64 / out.events as f64;
        }
        out
    }

    /// Mean per-event cost of delivering through a No-Loss clustering
    /// (Figure 6 of the paper): multicast to the heaviest matching
    /// region's subscribers, unicast to the remaining interested nodes.
    pub fn noloss_cost(&mut self, clustering: &NoLossClustering, mode: MulticastMode) -> f64 {
        // Static per-region member-node lists.
        let region_nodes: Vec<Vec<NodeId>> = clustering
            .regions()
            .iter()
            .map(|r| {
                let mut nodes: Vec<NodeId> = r
                    .subscribers
                    .iter()
                    .map(|i| self.workload.subscriptions[i].node)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            })
            .collect();
        let n = self.workload.events.len().max(1) as f64;
        // Per-region event-independent state (overlay MST / RP).
        let mut app_tree: Vec<Option<f64>> = vec![None; region_nodes.len()];
        let mut rps: Vec<Option<NodeId>> = vec![None; region_nodes.len()];
        let mut total = 0.0;
        for (e, ev) in self.workload.events.iter().enumerate() {
            match clustering.match_event(&ev.point) {
                Some(region) => {
                    let covered = &region_nodes[region];
                    total += match mode {
                        MulticastMode::NetworkSupported => {
                            self.router.group_multicast_cost(ev.publisher, covered)
                        }
                        MulticastMode::ApplicationLevel => {
                            let tree = *app_tree[region].get_or_insert_with(|| {
                                self.router.overlay_mst_cost(covered)
                            });
                            tree + self.router.entry_cost(ev.publisher, covered)
                        }
                        MulticastMode::SparseMode => {
                            let rp = *rps[region].get_or_insert_with(|| {
                                self.router
                                    .rendezvous_point(covered)
                                    .unwrap_or(ev.publisher)
                            });
                            self.router.sparse_multicast_cost(ev.publisher, rp, covered)
                        }
                    };
                    // Unicast top-up for interested nodes outside the
                    // region.
                    let extra = self.interested_nodes[e]
                        .iter()
                        .copied()
                        .filter(|n| covered.binary_search(n).is_err());
                    total += self.router.unicast_cost(ev.publisher, extra);
                }
                None => {
                    total += self
                        .router
                        .unicast_cost(ev.publisher, self.interested_nodes[e].iter().copied());
                }
            }
        }
        total / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransitStubParams;
    use pubsub_core::{
        CellProbability, ClusteringAlgorithm, KMeans, KMeansVariant, NoLossConfig,
    };
    use rand::prelude::*;
    use workload::{PredicateDist, Section3Model};

    fn scenario() -> (Topology, Workload) {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let model = Section3Model {
            regionalism: 0.4,
            dist: PredicateDist::Uniform,
            num_subscriptions: 200,
            num_events: 60,
        };
        let w = model.generate(&topo, &mut rng);
        (topo, w)
    }

    fn framework(w: &Workload) -> GridFramework {
        let grid = geometry::Grid::new(w.bounds.clone(), w.suggested_bins.clone()).unwrap();
        let rects: Vec<geometry::Rect> =
            w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let sample: Vec<geometry::Point> = w.events.iter().map(|e| e.point.clone()).collect();
        let probs = CellProbability::empirical(&grid, &sample);
        GridFramework::build(grid, &rects, &probs, Some(2000))
    }

    #[test]
    fn baselines_are_ordered() {
        let (topo, w) = scenario();
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        assert!(b.ideal <= b.unicast + 1e-9, "ideal {} > unicast {}", b.ideal, b.unicast);
        assert!(b.ideal <= b.broadcast + 1e-9);
        assert!(b.unicast > 0.0);
    }

    #[test]
    fn improvement_pct_endpoints() {
        let b = BaselineCosts {
            unicast: 100.0,
            broadcast: 80.0,
            ideal: 20.0,
        };
        assert_eq!(b.improvement_pct(100.0), 0.0);
        assert_eq!(b.improvement_pct(20.0), 100.0);
        assert_eq!(b.improvement_pct(60.0), 50.0);
        let degenerate = BaselineCosts {
            unicast: 50.0,
            broadcast: 50.0,
            ideal: 50.0,
        };
        assert_eq!(degenerate.improvement_pct(50.0), 100.0);
    }

    #[test]
    fn clustered_multicast_between_unicast_and_ideal() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let cost = ev.grid_clustering_cost(
            &fw,
            &clustering,
            0.0,
            MulticastMode::NetworkSupported,
        );
        // Clustered delivery can't beat per-event ideal groups.
        assert!(cost >= b.ideal - 1e-9, "cost {cost} < ideal {}", b.ideal);
        // And with a sane clustering it should beat plain unicast here
        // (regional workload on a 100-node net).
        assert!(cost <= b.unicast * 1.5, "cost {cost} vs unicast {}", b.unicast);
    }

    #[test]
    fn app_level_costs_are_sane_and_close_to_network_level() {
        // No strict dominance holds in either direction (the pruned SPT
        // is not a Steiner tree), but on real scenarios the two levels
        // must be in the same ballpark and both above the ideal.
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let net = ev.grid_clustering_cost(
            &fw,
            &clustering,
            0.0,
            MulticastMode::NetworkSupported,
        );
        let app = ev.grid_clustering_cost(
            &fw,
            &clustering,
            0.0,
            MulticastMode::ApplicationLevel,
        );
        assert!(net >= b.ideal - 1e-9);
        assert!(app >= b.ideal - 1e-9);
        assert!(app <= 3.0 * net, "app {app} wildly above net {net}");
    }

    #[test]
    fn threshold_one_reduces_to_unicast_of_interested() {
        // With threshold 1.0, multicast only fires when every group
        // member is interested; costs must be <= pure unicast (it picks
        // the better of the two per event).
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let cost =
            ev.grid_clustering_cost(&fw, &clustering, 1.0, MulticastMode::NetworkSupported);
        assert!(cost <= b.unicast + 1e-9);
    }

    #[test]
    fn breakdown_is_consistent_with_mean_cost() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let mean =
            ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        let bd = ev.grid_clustering_breakdown(&fw, &clustering, 0.0);
        assert_eq!(bd.events, w.events.len());
        assert_eq!(bd.multicast_events + bd.unicast_events, bd.events);
        assert!((bd.mean_cost() - mean).abs() < 1e-9, "{} vs {mean}", bd.mean_cost());
        assert!((0.0..=1.0).contains(&bd.match_rate()));
        // The group is a superset of the interested nodes, so waste is
        // at most the group size.
        assert!(bd.mean_wasted_nodes <= bd.mean_group_nodes);
        // Empty breakdown is well-behaved.
        let empty = DeliveryBreakdown::default();
        assert_eq!(empty.match_rate(), 0.0);
        assert_eq!(empty.mean_cost(), 0.0);
    }

    #[test]
    fn sparse_mode_costs_are_sane() {
        let (topo, w) = scenario();
        let fw = framework(&w);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 30);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let sparse =
            ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::SparseMode);
        assert!(sparse.is_finite());
        assert!(sparse >= b.ideal - 1e-9, "sparse {sparse} < ideal {}", b.ideal);
    }

    #[test]
    fn noloss_cost_is_bounded_by_unicast_factor() {
        let (topo, w) = scenario();
        let rects: Vec<geometry::Rect> =
            w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let sample: Vec<geometry::Point> =
            w.events.iter().map(|e| e.point.clone()).collect();
        let nl = pubsub_core::NoLossClustering::build(
            &rects,
            &sample,
            &NoLossConfig {
                max_rects: 500,
                iterations: 3,
                max_candidates_per_round: 50_000,
            },
            50,
        );
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        let cost = ev.noloss_cost(&nl, MulticastMode::NetworkSupported);
        assert!(cost >= b.ideal - 1e-9);
        // No-loss delivery covers every interested node (group + top-up),
        // so it can't exceed unicast by the multicast detour alone; the
        // group tree shares edges, so it should in fact be cheaper or
        // equal on average.
        assert!(cost <= b.unicast + 1e-9, "cost {cost} vs unicast {}", b.unicast);
    }
}
