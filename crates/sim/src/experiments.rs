//! Drivers that regenerate every table and figure of the paper's
//! evaluation. Each driver returns structured data; the `pubsub-bench`
//! binaries print them in the paper's layout (see `EXPERIMENTS.md`).

use std::time::Instant;

use netsim::TransitStubParams;
use pubsub_core::{
    parallel, ClusteringAlgorithm, KMeans, KMeansVariant, MstClustering, NoLossConfig,
    PairsStrategy, PairwiseGrouping,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{PredicateDist, Section3Model, StockModel};

use crate::delivery::{BaselineCosts, Evaluator, MulticastMode};
use crate::scenario::StockScenario;

// ---------------------------------------------------------------------
// Tables 1 and 2
// ---------------------------------------------------------------------

/// One row specification of Table 1/2: which network, how many
/// subscriptions, which predicate distribution.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Topology parameters.
    pub params: TransitStubParams,
    /// The "Node" column label (the paper's nominal node count).
    pub label_nodes: usize,
    /// Number of subscriptions.
    pub subscriptions: usize,
    /// Predicate distribution (uniform / gaussian).
    pub dist: PredicateDist,
}

/// One computed row of Table 1/2.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Nominal node count.
    pub nodes: usize,
    /// Number of subscriptions.
    pub subscriptions: usize,
    /// Predicate distribution.
    pub dist: PredicateDist,
    /// Mean per-event unicast cost.
    pub unicast: f64,
    /// Mean per-event broadcast cost.
    pub broadcast: f64,
    /// Mean per-event ideal-multicast cost.
    pub ideal: f64,
}

/// The row grid of the paper's Table 1 (degree-0.4 regionalism).
pub fn paper_table1_specs() -> Vec<TableSpec> {
    use PredicateDist::{Gaussian, Uniform};
    let n100 = TransitStubParams::paper_100_nodes;
    let n300 = TransitStubParams::paper_300_nodes;
    let n600 = TransitStubParams::paper_600_nodes;
    vec![
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 5000,
            dist: Uniform,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 5000,
            dist: Gaussian,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 1000,
            dist: Uniform,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 1000,
            dist: Gaussian,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 80,
            dist: Uniform,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 80,
            dist: Gaussian,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 5000,
            dist: Uniform,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 1000,
            dist: Uniform,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 350,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 10000,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 10000,
            dist: Gaussian,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 5000,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 5000,
            dist: Gaussian,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 1000,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 1000,
            dist: Gaussian,
        },
    ]
}

/// The row grid of the paper's Table 2 (no regionalism).
pub fn paper_table2_specs() -> Vec<TableSpec> {
    use PredicateDist::{Gaussian, Uniform};
    let n100 = TransitStubParams::paper_100_nodes;
    let n300 = TransitStubParams::paper_300_nodes;
    let n600 = TransitStubParams::paper_600_nodes;
    vec![
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 5000,
            dist: Uniform,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 5000,
            dist: Gaussian,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 1000,
            dist: Uniform,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 1000,
            dist: Gaussian,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 80,
            dist: Uniform,
        },
        TableSpec {
            params: n100(),
            label_nodes: 100,
            subscriptions: 80,
            dist: Gaussian,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 5000,
            dist: Uniform,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 5000,
            dist: Gaussian,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 1000,
            dist: Uniform,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 1000,
            dist: Gaussian,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 80,
            dist: Uniform,
        },
        TableSpec {
            params: n300(),
            label_nodes: 300,
            subscriptions: 80,
            dist: Gaussian,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 10000,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 10000,
            dist: Gaussian,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 5000,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 5000,
            dist: Gaussian,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 1000,
            dist: Uniform,
        },
        TableSpec {
            params: n600(),
            label_nodes: 600,
            subscriptions: 1000,
            dist: Gaussian,
        },
    ]
}

/// Computes Table 1/2 rows: per spec, generate the network and the
/// Section 3 workload at the given regionalism, then measure the three
/// baseline schemes over `num_events` events.
pub fn table_rows(
    regionalism: f64,
    specs: &[TableSpec],
    num_events: usize,
    seed: u64,
) -> Vec<TableRow> {
    // Rows are fully independent (each seeds its own RNG from the row
    // index), so the whole grid fans out across threads.
    parallel::par_map_indexed(specs.len(), 1, |i| {
        let spec = &specs[i];
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let topo = netsim::Topology::generate(&spec.params, &mut rng);
        let model = Section3Model {
            regionalism,
            dist: spec.dist,
            num_subscriptions: spec.subscriptions,
            num_events,
        };
        let w = model.generate(&topo, &mut rng);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        TableRow {
            nodes: spec.label_nodes,
            subscriptions: spec.subscriptions,
            dist: spec.dist,
            unicast: b.unicast,
            broadcast: b.broadcast,
            ideal: b.ideal,
        }
    })
}

// ---------------------------------------------------------------------
// Figures 7, 9 (improvement vs number of groups)
// ---------------------------------------------------------------------

/// Improvement-percentage series for one algorithm under one multicast
/// mode.
#[derive(Debug, Clone)]
pub struct GroupSweepSeries {
    /// Algorithm name.
    pub algorithm: String,
    /// Multicast substrate.
    pub mode: MulticastMode,
    /// `(K, improvement %)` points.
    pub points: Vec<(usize, f64)>,
}

/// Configuration for the Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Workload model (default: Section 5.1's 1000-subscription stock
    /// model with single-mode publications).
    pub model: StockModel,
    /// Topology parameters (default: the 600-node network).
    pub topo: TransitStubParams,
    /// Events held out for density estimation.
    pub density_events: usize,
    /// The K values to sweep.
    pub ks: Vec<usize>,
    /// Hyper-cells given to K-means / Forgy / MST (paper: 6000).
    pub max_cells: usize,
    /// Hyper-cells given to approximate pairs (paper: 2000).
    pub max_cells_pairs: usize,
    /// No-Loss parameters (paper: 5000 rectangles, 8 iterations).
    pub noloss: NoLossConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Fig7Config {
    /// The paper's configuration (expensive: minutes in release mode).
    pub fn paper() -> Self {
        Fig7Config {
            model: StockModel::default().with_sizes(1000, 500),
            topo: TransitStubParams::paper_section51(),
            density_events: 1000,
            ks: vec![5, 10, 20, 40, 60, 80, 100],
            max_cells: 6000,
            max_cells_pairs: 2000,
            noloss: NoLossConfig::default(),
            seed: 2002,
        }
    }

    /// A scaled-down configuration for tests and quick runs.
    pub fn quick() -> Self {
        Fig7Config {
            model: StockModel::default().with_sizes(200, 120),
            topo: TransitStubParams::paper_100_nodes(),
            density_events: 200,
            ks: vec![4, 8, 16, 32],
            max_cells: 800,
            max_cells_pairs: 400,
            noloss: NoLossConfig {
                max_rects: 400,
                iterations: 3,
                max_candidates_per_round: 50_000,
            },
            seed: 2002,
        }
    }

    /// A mid-size configuration: the full 600-node network with a
    /// reduced sweep, shape-faithful in about a minute in release mode.
    pub fn medium() -> Self {
        Fig7Config {
            model: StockModel::default().with_sizes(1000, 250),
            topo: TransitStubParams::paper_section51(),
            density_events: 500,
            ks: vec![5, 10, 20, 40, 60, 80, 100],
            max_cells: 2000,
            max_cells_pairs: 800,
            noloss: NoLossConfig {
                max_rects: 2000,
                iterations: 4,
                max_candidates_per_round: 1_000_000,
            },
            seed: 2002,
        }
    }
}

/// The result of a Figure 7 run.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Baseline costs of the scenario.
    pub baselines: BaselineCosts,
    /// One series per (algorithm, mode).
    pub series: Vec<GroupSweepSeries>,
}

/// Runs the Figure 7 experiment: improvement percentage as a function
/// of the number of available groups `K`, for every clustering
/// algorithm, under network-supported and application-level multicast.
pub fn fig7(cfg: &Fig7Config) -> Fig7Result {
    let scenario = StockScenario::generate(&cfg.model, &cfg.topo, cfg.density_events, cfg.seed);
    fig7_on_scenario(cfg, &scenario)
}

/// Figure 7 on a pre-generated scenario (Figure 9 reuses this with a
/// different seed).
pub fn fig7_on_scenario(cfg: &Fig7Config, scenario: &StockScenario) -> Fig7Result {
    let fw = scenario.framework(cfg.max_cells);
    let fw_pairs = scenario.framework(cfg.max_cells_pairs);
    let mut ev = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = ev.baseline_costs();

    let grid_algs: Vec<(
        Box<dyn ClusteringAlgorithm + Sync>,
        &pubsub_core::GridFramework,
    )> = vec![
        (
            Box::new(KMeans::new(KMeansVariant::MacQueen)) as Box<dyn ClusteringAlgorithm + Sync>,
            &fw,
        ),
        (Box::new(KMeans::new(KMeansVariant::Forgy)), &fw),
        (Box::new(MstClustering::new()), &fw),
        (
            Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
                seed: cfg.seed,
            })),
            &fw_pairs,
        ),
    ];

    let mut series = Vec::new();
    for (alg, framework) in &grid_algs {
        // The K points of one series are independent clusterings of the
        // same framework: compute them in parallel, then evaluate costs
        // against the shared evaluator in K order.
        let clusterings = parallel::par_map(&cfg.ks, 1, |&k| alg.cluster(framework, k));
        let mut net_points = Vec::with_capacity(cfg.ks.len());
        let mut app_points = Vec::with_capacity(cfg.ks.len());
        for (&k, clustering) in cfg.ks.iter().zip(&clusterings) {
            let net = ev.grid_clustering_cost(
                framework,
                clustering,
                0.0,
                MulticastMode::NetworkSupported,
            );
            let app = ev.grid_clustering_cost(
                framework,
                clustering,
                0.0,
                MulticastMode::ApplicationLevel,
            );
            net_points.push((k, baselines.improvement_pct(net)));
            app_points.push((k, baselines.improvement_pct(app)));
        }
        series.push(GroupSweepSeries {
            algorithm: alg.name().to_string(),
            mode: MulticastMode::NetworkSupported,
            points: net_points,
        });
        series.push(GroupSweepSeries {
            algorithm: alg.name().to_string(),
            mode: MulticastMode::ApplicationLevel,
            points: app_points,
        });
    }

    // No-Loss: the K clusterings are likewise independent builds.
    let noloss_clusterings = parallel::par_map(&cfg.ks, 1, |&k| scenario.noloss(&cfg.noloss, k));
    let mut net_points = Vec::with_capacity(cfg.ks.len());
    let mut app_points = Vec::with_capacity(cfg.ks.len());
    for (&k, nl) in cfg.ks.iter().zip(&noloss_clusterings) {
        let net = ev.noloss_cost(nl, MulticastMode::NetworkSupported);
        let app = ev.noloss_cost(nl, MulticastMode::ApplicationLevel);
        net_points.push((k, baselines.improvement_pct(net)));
        app_points.push((k, baselines.improvement_pct(app)));
    }
    series.push(GroupSweepSeries {
        algorithm: "no-loss".to_string(),
        mode: MulticastMode::NetworkSupported,
        points: net_points,
    });
    series.push(GroupSweepSeries {
        algorithm: "no-loss".to_string(),
        mode: MulticastMode::ApplicationLevel,
        points: app_points,
    });

    Fig7Result { baselines, series }
}

/// Runs the Figure 9 experiment: the Figure 7 sweep repeated on two
/// networks generated with different seeds, demonstrating topology
/// robustness. Returns `(run on seed, run on other_seed)`.
pub fn fig9(cfg: &Fig7Config, other_seed: u64) -> (Fig7Result, Fig7Result) {
    let first = fig7(cfg);
    let mut cfg2 = cfg.clone();
    cfg2.seed = other_seed;
    let second = fig7(&cfg2);
    (first, second)
}

// ---------------------------------------------------------------------
// Extension: regionalism-degree sweep
// ---------------------------------------------------------------------

/// One point of the regionalism sweep.
#[derive(Debug, Clone, Copy)]
pub struct RegionalismPoint {
    /// Degree of regionalism (0 = none, 1 = absolute).
    pub degree: f64,
    /// Mean per-event unicast cost.
    pub unicast: f64,
    /// Mean per-event ideal-multicast cost.
    pub ideal: f64,
    /// Ideal multicast's saving over unicast, in percent.
    pub ideal_saving_pct: f64,
}

/// Sweeps the Section 3 *degree of regionalism* from 0 to 1 on one
/// network — the knob Tables 1–2 sample at only two values. The paper's
/// argument (Section 3): regional concentration of interest is what
/// makes multicast pay; this sweep traces the whole curve.
pub fn regionalism_sweep(
    params: &TransitStubParams,
    subscriptions: usize,
    events: usize,
    degrees: &[f64],
    seed: u64,
) -> Vec<RegionalismPoint> {
    // Each degree regenerates its own topology and workload from the
    // same seed — independent, so the sweep fans out across threads.
    parallel::par_map(degrees, 1, |&degree| {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = netsim::Topology::generate(params, &mut rng);
        let model = Section3Model {
            regionalism: degree,
            dist: PredicateDist::Uniform,
            num_subscriptions: subscriptions,
            num_events: events,
        };
        let w = model.generate(&topo, &mut rng);
        let mut ev = Evaluator::new(&topo, &w);
        let b = ev.baseline_costs();
        RegionalismPoint {
            degree,
            unicast: b.unicast,
            ideal: b.ideal,
            ideal_saving_pct: 100.0 * (1.0 - b.ideal / b.unicast.max(1e-9)),
        }
    })
}

// ---------------------------------------------------------------------
// Extension: multicast-mode comparison (dense vs sparse vs app-level)
// ---------------------------------------------------------------------

/// Runs the Figure 7 scenario with one algorithm (Forgy, the paper's
/// recommendation) under all three multicast substrates — the
/// dense/sparse comparison the paper mentions but does not evaluate.
/// Returns `(baselines, one series per mode)`.
pub fn modes_sweep(cfg: &Fig7Config) -> (BaselineCosts, Vec<GroupSweepSeries>) {
    let scenario = StockScenario::generate(&cfg.model, &cfg.topo, cfg.density_events, cfg.seed);
    let fw = scenario.framework(cfg.max_cells);
    let mut ev = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = ev.baseline_costs();
    let forgy = KMeans::new(KMeansVariant::Forgy);
    // One clustering per K, shared across the three modes (clustering is
    // deterministic, so this matches recomputing it per mode).
    let clusterings = parallel::par_map(&cfg.ks, 1, |&k| forgy.cluster(&fw, k));
    let mut series = Vec::new();
    for mode in [
        MulticastMode::NetworkSupported,
        MulticastMode::SparseMode,
        MulticastMode::ApplicationLevel,
    ] {
        let mut points = Vec::with_capacity(cfg.ks.len());
        for (&k, clustering) in cfg.ks.iter().zip(&clusterings) {
            let cost = ev.grid_clustering_cost(&fw, clustering, 0.0, mode);
            points.push((k, baselines.improvement_pct(cost)));
        }
        series.push(GroupSweepSeries {
            algorithm: "forgy".to_string(),
            mode,
            points,
        });
    }
    (baselines, series)
}

// ---------------------------------------------------------------------
// Figure 8 (No-Loss parameter sweep)
// ---------------------------------------------------------------------

/// Configuration for the Figure 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Workload model.
    pub model: StockModel,
    /// Topology parameters.
    pub topo: TransitStubParams,
    /// Events held out for density estimation.
    pub density_events: usize,
    /// Number of multicast groups K.
    pub k: usize,
    /// Rectangle-budget values to sweep.
    pub rect_counts: Vec<usize>,
    /// Iteration counts to sweep.
    pub iteration_counts: Vec<usize>,
    /// Iterations used during the rectangle sweep.
    pub fixed_iterations: usize,
    /// Rectangle budget used during the iteration sweep.
    pub fixed_rects: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Fig8Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Fig8Config {
            model: StockModel::default().with_sizes(1000, 500),
            topo: TransitStubParams::paper_section51(),
            density_events: 1000,
            k: 100,
            rect_counts: vec![1000, 2000, 3000, 4000, 5000, 6000],
            iteration_counts: vec![1, 2, 4, 6, 8, 10],
            fixed_iterations: 8,
            fixed_rects: 5000,
            seed: 2002,
        }
    }

    /// A scaled-down configuration.
    pub fn quick() -> Self {
        Fig8Config {
            model: StockModel::default().with_sizes(200, 120),
            topo: TransitStubParams::paper_100_nodes(),
            density_events: 200,
            k: 30,
            rect_counts: vec![50, 100, 200, 400],
            iteration_counts: vec![1, 2, 3, 4],
            fixed_iterations: 3,
            fixed_rects: 200,
            seed: 2002,
        }
    }

    /// A mid-size configuration on the full 600-node network.
    pub fn medium() -> Self {
        Fig8Config {
            model: StockModel::default().with_sizes(1000, 250),
            topo: TransitStubParams::paper_section51(),
            density_events: 500,
            k: 100,
            rect_counts: vec![500, 1000, 2000, 3000],
            iteration_counts: vec![1, 2, 4, 6, 8],
            fixed_iterations: 4,
            fixed_rects: 2000,
            seed: 2002,
        }
    }
}

/// The result of a Figure 8 run: improvement as a function of each
/// No-Loss knob.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Baselines of the scenario.
    pub baselines: BaselineCosts,
    /// `(max_rects, improvement %)` with iterations fixed.
    pub by_rects: Vec<(usize, f64)>,
    /// `(iterations, improvement %)` with max_rects fixed.
    pub by_iterations: Vec<(usize, f64)>,
}

/// Runs the Figure 8 experiment: the No-Loss algorithm's improvement as
/// a function of the number of rectangles kept and of the number of
/// intersection iterations.
pub fn fig8(cfg: &Fig8Config) -> Fig8Result {
    let scenario = StockScenario::generate(&cfg.model, &cfg.topo, cfg.density_events, cfg.seed);
    let mut ev = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = ev.baseline_costs();
    // Each knob setting is an independent No-Loss build: fan the builds
    // out, then evaluate costs in sweep order.
    let rect_nls = parallel::par_map(&cfg.rect_counts, 1, |&rects| {
        let nl_cfg = NoLossConfig {
            max_rects: rects,
            iterations: cfg.fixed_iterations,
            ..NoLossConfig::default()
        };
        scenario.noloss(&nl_cfg, cfg.k)
    });
    let mut by_rects = Vec::with_capacity(cfg.rect_counts.len());
    for (&rects, nl) in cfg.rect_counts.iter().zip(&rect_nls) {
        let cost = ev.noloss_cost(nl, MulticastMode::NetworkSupported);
        by_rects.push((rects, baselines.improvement_pct(cost)));
    }
    let iter_nls = parallel::par_map(&cfg.iteration_counts, 1, |&iters| {
        let nl_cfg = NoLossConfig {
            max_rects: cfg.fixed_rects,
            iterations: iters,
            ..NoLossConfig::default()
        };
        scenario.noloss(&nl_cfg, cfg.k)
    });
    let mut by_iterations = Vec::with_capacity(cfg.iteration_counts.len());
    for (&iters, nl) in cfg.iteration_counts.iter().zip(&iter_nls) {
        let cost = ev.noloss_cost(nl, MulticastMode::NetworkSupported);
        by_iterations.push((iters, baselines.improvement_pct(cost)));
    }
    Fig8Result {
        baselines,
        by_rects,
        by_iterations,
    }
}

// ---------------------------------------------------------------------
// Figures 10 and 11 (quality and runtime vs cells / vs time)
// ---------------------------------------------------------------------

/// One measurement of a (cells-budget, quality, wall-clock) triple.
#[derive(Debug, Clone, Copy)]
pub struct CellSweepPoint {
    /// Hyper-cells given to the algorithm.
    pub cells: usize,
    /// Improvement percentage achieved.
    pub improvement: f64,
    /// Clustering wall-clock seconds.
    pub seconds: f64,
}

/// A per-algorithm series of [`CellSweepPoint`]s.
#[derive(Debug, Clone)]
pub struct CellSweepSeries {
    /// Algorithm name.
    pub algorithm: String,
    /// Measurements in increasing cells order.
    pub points: Vec<CellSweepPoint>,
}

/// Configuration for the Figure 10/11 sweep.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Workload model.
    pub model: StockModel,
    /// Topology parameters.
    pub topo: TransitStubParams,
    /// Events held out for density estimation.
    pub density_events: usize,
    /// Number of multicast groups K.
    pub k: usize,
    /// Cells-budget values to sweep.
    pub cell_counts: Vec<usize>,
    /// Include the O(l³) full-scan pairs variant (very slow).
    pub include_fullscan_pairs: bool,
    /// Largest cell budget the Θ(l³) pairs variants (approximate and
    /// full-scan) are run at; larger budgets are skipped for those
    /// series and noted in the output. `None` = no cap.
    pub slow_cell_cap: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Fig10Config {
    /// The paper's configuration (the full-scan pairs variant is left
    /// out by default; enable it to reproduce the paper's extreme
    /// runtime gap).
    pub fn paper() -> Self {
        Fig10Config {
            model: StockModel::default().with_sizes(1000, 500),
            topo: TransitStubParams::paper_section51(),
            density_events: 1000,
            k: 100,
            cell_counts: vec![500, 1000, 2000, 3000, 4000, 6000],
            include_fullscan_pairs: false,
            // The secretary scan is Θ(l³): 6000 cells would take hours.
            slow_cell_cap: Some(2000),
            seed: 2002,
        }
    }

    /// A scaled-down configuration.
    pub fn quick() -> Self {
        Fig10Config {
            model: StockModel::default().with_sizes(200, 120),
            topo: TransitStubParams::paper_100_nodes(),
            density_events: 200,
            k: 20,
            cell_counts: vec![50, 100, 200],
            include_fullscan_pairs: false,
            slow_cell_cap: None,
            seed: 2002,
        }
    }

    /// A mid-size configuration on the full 600-node network, with the
    /// full-scan pairs variant included so the runtime gap the paper
    /// reports is visible.
    pub fn medium() -> Self {
        Fig10Config {
            model: StockModel::default().with_sizes(1000, 250),
            topo: TransitStubParams::paper_section51(),
            density_events: 500,
            k: 50,
            cell_counts: vec![250, 500, 1000, 2000],
            include_fullscan_pairs: true,
            slow_cell_cap: None,
            seed: 2002,
        }
    }
}

/// The result of a Figure 10 run (Figure 11 plots the same data as
/// quality-vs-time).
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Baselines of the scenario.
    pub baselines: BaselineCosts,
    /// One series per algorithm.
    pub series: Vec<CellSweepSeries>,
}

/// Runs the Figure 10 experiment: solution quality and clustering
/// runtime as a function of the number of hyper-cells given to each
/// algorithm. Figure 11 is the same data re-plotted as quality vs time.
pub fn fig10(cfg: &Fig10Config) -> Fig10Result {
    let scenario = StockScenario::generate(&cfg.model, &cfg.topo, cfg.density_events, cfg.seed);
    let mut ev = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = ev.baseline_costs();

    let mut algs: Vec<Box<dyn ClusteringAlgorithm>> = vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: cfg.seed,
        })),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
    ];
    if cfg.include_fullscan_pairs {
        algs.push(Box::new(PairwiseGrouping::new(
            PairsStrategy::ExactFullScan,
        )));
    }

    let mut series: Vec<CellSweepSeries> = algs
        .iter()
        .map(|a| CellSweepSeries {
            algorithm: a.name().to_string(),
            points: Vec::with_capacity(cfg.cell_counts.len()),
        })
        .collect();

    // This sweep stays serial on purpose: each point's wall-clock time
    // is the measurement, and concurrent clusterings would contend for
    // cores and corrupt the timings. The algorithms still parallelize
    // internally, which is exactly what the figure should measure.
    for &cells in &cfg.cell_counts {
        let fw = scenario.framework(cells);
        for (ai, alg) in algs.iter().enumerate() {
            let name = alg.name();
            let is_cubic = name == "approx-pairs" || name == "pairs-fullscan";
            if is_cubic && cfg.slow_cell_cap.is_some_and(|cap| cells > cap) {
                // Explicitly skipped (Θ(l³) at this budget); the series
                // simply has no point here rather than a silent stall.
                continue;
            }
            let start = Instant::now();
            let clustering = alg.cluster(&fw, cfg.k);
            let seconds = start.elapsed().as_secs_f64();
            let cost =
                ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
            series[ai].points.push(CellSweepPoint {
                cells,
                improvement: baselines.improvement_pct(cost),
                seconds,
            });
        }
    }
    Fig10Result { baselines, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_have_sane_costs() {
        let specs = vec![
            TableSpec {
                params: TransitStubParams::paper_100_nodes(),
                label_nodes: 100,
                subscriptions: 300,
                dist: PredicateDist::Uniform,
            },
            TableSpec {
                params: TransitStubParams::paper_100_nodes(),
                label_nodes: 100,
                subscriptions: 30,
                dist: PredicateDist::Uniform,
            },
        ];
        let rows = table_rows(0.4, &specs, 40, 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ideal <= r.unicast + 1e-9);
            assert!(r.ideal <= r.broadcast + 1e-9);
        }
        // With many subscriptions, unicast is far worse than broadcast;
        // with few, unicast is competitive (the paper's core point).
        assert!(rows[0].unicast > rows[0].broadcast);
        assert!(rows[1].unicast < rows[0].unicast);
    }

    #[test]
    fn fig7_quick_produces_all_series() {
        let cfg = Fig7Config::quick();
        let res = fig7(&cfg);
        // 4 grid algorithms + no-loss, × 2 modes.
        assert_eq!(res.series.len(), 10);
        for s in &res.series {
            assert_eq!(s.points.len(), cfg.ks.len());
            for &(_, impr) in &s.points {
                assert!(
                    impr <= 100.0 + 1e-6,
                    "{} improvement {impr} exceeds ideal",
                    s.algorithm
                );
            }
        }
        // Network-supported multicast typically beats application-level
        // for the same algorithm at the same K; neither strictly
        // dominates (the pruned SPT is not a Steiner tree), so allow a
        // modest tolerance.
        for pair in res.series.chunks(2) {
            if pair.len() == 2 && pair[0].algorithm == pair[1].algorithm {
                for (a, b) in pair[0].points.iter().zip(&pair[1].points) {
                    assert!(
                        a.1 >= b.1 - 15.0,
                        "{}: net {} far below app {}",
                        pair[0].algorithm,
                        a.1,
                        b.1
                    );
                }
            }
        }
    }

    #[test]
    fn regionalism_sweep_monotone_in_saving() {
        let pts = regionalism_sweep(
            &TransitStubParams::paper_100_nodes(),
            200,
            60,
            &[0.0, 0.5, 1.0],
            4,
        );
        assert_eq!(pts.len(), 3);
        // Stronger regionalism localizes interest: unicast cost falls.
        assert!(pts[2].unicast < pts[0].unicast);
        for p in &pts {
            assert!(p.ideal <= p.unicast + 1e-9);
            assert!((0.0..=100.0).contains(&p.ideal_saving_pct));
        }
    }

    #[test]
    fn fig9_runs_two_distinct_networks() {
        let cfg = tiny_cfg();
        let (a, b) = fig9(&cfg, cfg.seed + 1);
        assert_eq!(a.series.len(), b.series.len());
        // Different seeds: baselines should differ (different topology).
        assert_ne!(a.baselines.unicast, b.baselines.unicast);
    }

    #[test]
    fn modes_sweep_orders_substrates() {
        let cfg = tiny_cfg();
        let (baselines, series) = modes_sweep(&cfg);
        assert!(baselines.unicast > 0.0);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), cfg.ks.len());
            assert_eq!(s.algorithm, "forgy");
        }
        // Dense-mode improvement is typically >= app-level at the same
        // K; no strict dominance holds, so allow a modest tolerance.
        let dense = &series[0];
        let app = &series[2];
        for (d, a) in dense.points.iter().zip(&app.points) {
            assert!(d.1 >= a.1 - 15.0, "dense {} far below app {}", d.1, a.1);
        }
    }

    fn tiny_cfg() -> Fig7Config {
        Fig7Config {
            model: StockModel::default().with_sizes(80, 40),
            topo: TransitStubParams::paper_100_nodes(),
            density_events: 80,
            ks: vec![4, 8],
            max_cells: 150,
            max_cells_pairs: 100,
            noloss: NoLossConfig {
                max_rects: 100,
                iterations: 2,
                max_candidates_per_round: 10_000,
            },
            seed: 3,
        }
    }

    #[test]
    fn fig8_quick_sweeps_both_knobs() {
        let cfg = Fig8Config::quick();
        let res = fig8(&cfg);
        assert_eq!(res.by_rects.len(), cfg.rect_counts.len());
        assert_eq!(res.by_iterations.len(), cfg.iteration_counts.len());
    }

    #[test]
    fn fig10_quick_reports_time_and_quality() {
        let cfg = Fig10Config::quick();
        let res = fig10(&cfg);
        assert_eq!(res.series.len(), 5);
        for s in &res.series {
            assert_eq!(s.points.len(), cfg.cell_counts.len());
            for p in &s.points {
                assert!(p.seconds >= 0.0);
                assert!(p.improvement.is_finite());
            }
        }
    }
}
