//! Reusable experiment scenarios: a topology plus a generated workload,
//! with the publication-density sample split out from the evaluation
//! event stream.

use geometry::{Grid, Point, Rect};
use netsim::{Topology, TransitStubParams};
use pubsub_core::{CellProbability, GridFramework, NoLossClustering, NoLossConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{PublicationDensity, StockModel, Workload};

/// A fully generated Section 5.1 scenario: the 600-node network, the
/// stock workload, and a held-out density sample used to estimate
/// `p_p` (so the estimate is not fitted on the very events being
/// evaluated).
#[derive(Debug, Clone)]
pub struct StockScenario {
    /// The network.
    pub topo: Topology,
    /// The workload whose `events` are the *evaluation* stream.
    pub workload: Workload,
    /// Held-out publication points (kept for empirical-density
    /// ablations; the default pipeline uses the analytic density).
    pub density_sample: Vec<Point>,
    /// The analytic publication density of the generating model.
    pub density: PublicationDensity,
    /// The subscription rectangles (copied out of the workload for
    /// convenience).
    pub rects: Vec<Rect>,
}

impl StockScenario {
    /// Generates a scenario: `density_events` extra events are drawn
    /// and moved into the density sample; the rest remain for
    /// evaluation.
    pub fn generate(
        model: &StockModel,
        params: &TransitStubParams,
        density_events: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = Topology::generate(params, &mut rng);
        let mut model = model.clone();
        model.num_events += density_events;
        let mut workload = model.generate(&topo, &mut rng);
        let split = workload.events.len() - density_events;
        let density_sample: Vec<Point> = workload.events.drain(split..).map(|e| e.point).collect();
        let rects = workload
            .subscriptions
            .iter()
            .map(|s| s.rect.clone())
            .collect();
        StockScenario {
            topo,
            workload,
            density_sample,
            density: model.publication_density(),
            rects,
        }
    }

    /// Builds the grid framework for this scenario with at most
    /// `max_cells` hyper-cells (the paper's "number of rectangles"),
    /// using the analytic publication density for cell probabilities.
    pub fn framework(&self, max_cells: usize) -> GridFramework {
        let grid = self.grid();
        let probs = CellProbability::from_mass_fn(&grid, |r| self.density.mass(r));
        GridFramework::build(grid, &self.rects, &probs, Some(max_cells))
    }

    /// Like [`StockScenario::framework`], but estimating `p_p`
    /// empirically from the held-out sample — the ablation baseline.
    pub fn framework_empirical(&self, max_cells: usize) -> GridFramework {
        let grid = self.grid();
        let probs = CellProbability::empirical(&grid, &self.density_sample);
        GridFramework::build(grid, &self.rects, &probs, Some(max_cells))
    }

    /// Runs the No-Loss algorithm on this scenario's rectangles with
    /// the analytic publication density.
    pub fn noloss(&self, config: &NoLossConfig, k: usize) -> NoLossClustering {
        NoLossClustering::build_with_density(
            &self.rects,
            |r| self.density.mass(r),
            &self.density_sample,
            config,
            k,
        )
    }

    /// The discretization grid implied by the workload bounds.
    pub fn grid(&self) -> Grid {
        Grid::new(
            self.workload.bounds.clone(),
            self.workload.suggested_bins.clone(),
        )
        .expect("workload bounds are a valid grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_splits_density_sample() {
        let model = StockModel::default().with_sizes(100, 50);
        let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 30, 7);
        assert_eq!(sc.workload.events.len(), 50);
        assert_eq!(sc.density_sample.len(), 30);
        assert_eq!(sc.rects.len(), 100);
    }

    #[test]
    fn framework_respects_max_cells() {
        let model = StockModel::default().with_sizes(150, 20);
        let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 50, 8);
        let big = sc.framework(100_000);
        let small = sc.framework(10);
        assert!(small.hypercells().len() <= 10);
        assert!(big.hypercells().len() >= small.hypercells().len());
    }

    #[test]
    fn same_seed_reproduces_scenario() {
        let model = StockModel::default().with_sizes(50, 20);
        let a = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 10, 9);
        let b = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 10, 9);
        assert_eq!(
            a.workload.subscriptions.len(),
            b.workload.subscriptions.len()
        );
        for (x, y) in a
            .workload
            .subscriptions
            .iter()
            .zip(&b.workload.subscriptions)
        {
            assert_eq!(x, y);
        }
        for (x, y) in a.workload.events.iter().zip(&b.workload.events) {
            assert_eq!(x, y);
        }
    }
}
