//! Chaos driver for the always-on broker: replays a
//! [`ChaosScenario`] — epoch-aligned subscription churn, publication
//! bursts and network faults — through a live
//! [`BrokerService`], wiring each epoch's node crashes into
//! crash-forced unsubscribes exactly as [`failure_churn`] does for the
//! batch pipeline.
//!
//! The driver is the integration point of three robustness mechanisms:
//! the service's bounded-queue backpressure absorbs the event bursts,
//! the watchdog-guarded rebalancer absorbs churn (user plus
//! crash-forced), and aborted swaps degrade gracefully — the previous
//! validated plan keeps serving and the queued churn is retried at the
//! next epoch boundary.
//!
//! [`failure_churn`]: crate::failure_churn

use netsim::{DegradedView, NodeId, Topology};
use pubsub_core::{
    BrokerService, CellProbability, DynamicClustering, KMeans, RebalanceAbort, ServiceConfig,
    ServiceReport, SubscriptionId,
};
use workload::{ChaosScenario, ChurnOp};

/// Outcome of one chaos run ([`run_chaos`]).
#[derive(Debug)]
pub struct ChaosRunReport {
    /// The service-side accounting (delivery, shed, swaps, aborts).
    pub service: ServiceReport,
    /// Epochs replayed.
    pub epochs: usize,
    /// Node crashes observed across the storm.
    pub crashed_nodes: usize,
    /// Subscriptions forcibly removed because their home crashed.
    pub forced_unsubscribes: usize,
    /// Live subscriptions when the storm ended.
    pub final_subscriptions: usize,
    /// Human-readable reasons of every aborted swap, in order.
    pub swap_failures: Vec<String>,
}

/// Replays `scenario` through a [`BrokerService`] built over the given
/// discretization: the initial population is subscribed and rebalanced
/// once (the version-0 plan), then each epoch applies its churn ops,
/// forcibly unsubscribes every subscription homed on a node that
/// crashed in that epoch, requests one rebalance + hot swap, and
/// publishes its event burst. Ingest never stops — an aborted swap
/// leaves the previous plan serving and its churn queued for the next
/// epoch's retry.
///
/// # Errors
///
/// Returns an error only if the *initial* population fails to
/// rebalance or compile into a valid plan; mid-storm failures are
/// absorbed and reported in
/// [`swap_failures`](ChaosRunReport::swap_failures).
pub fn run_chaos(
    topo: &Topology,
    scenario: &ChaosScenario,
    grid: geometry::Grid,
    probs: CellProbability,
    algorithm: KMeans,
    k: usize,
    config: ServiceConfig,
) -> Result<ChaosRunReport, RebalanceAbort> {
    let graph = topo.graph();
    let mut dynamic = DynamicClustering::new(grid, probs, algorithm, k);
    // Birth-ordinal bookkeeping: ordinal -> (service id, home node,
    // live as far as this driver knows). The service itself tolerates
    // (and counts) ops that race a removal.
    let mut homes: Vec<(SubscriptionId, NodeId)> = Vec::with_capacity(scenario.initial.len());
    let mut alive: Vec<bool> = Vec::with_capacity(scenario.initial.len());
    for sub in &scenario.initial {
        homes.push((dynamic.subscribe(sub.rect.clone()), sub.node));
        alive.push(true);
    }
    dynamic.try_rebalance().map_err(RebalanceAbort::Rejected)?;

    let service = BrokerService::start(dynamic, config)?;
    let mut crashed_nodes = 0usize;
    let mut forced_unsubscribes = 0usize;
    let mut swap_failures = Vec::new();
    let mut prev = DegradedView::healthy(graph);

    for (e, epoch) in scenario.epochs.iter().enumerate() {
        for op in &epoch.churn {
            match op {
                ChurnOp::Subscribe { node, rect } => {
                    homes.push((service.subscribe(rect.clone()), *node));
                    alive.push(true);
                }
                // Sent even if a crash already removed the target —
                // that race is exactly what the service's rejected-op
                // accounting is for.
                ChurnOp::Unsubscribe { target } => {
                    service.unsubscribe(homes[*target].0);
                    alive[*target] = false;
                }
                ChurnOp::Resubscribe { target, rect } => {
                    service.resubscribe(homes[*target].0, rect.clone());
                }
            }
        }

        let view = scenario.faults.view_at(graph, e);
        for n in graph.nodes() {
            if prev.node_live(n) && !view.node_live(n) {
                crashed_nodes += 1;
                for (ordinal, &(id, home)) in homes.iter().enumerate() {
                    if home == n && alive[ordinal] {
                        service.unsubscribe(id);
                        alive[ordinal] = false;
                        forced_unsubscribes += 1;
                    }
                }
            }
        }
        prev = view;

        if let Err(abort) = service.rebalance() {
            swap_failures.push(abort.to_string());
        }
        for ev in &epoch.events {
            service.offer(ev.point.clone());
        }
    }

    service.drain();
    let (report, final_dynamic) = service.shutdown();
    Ok(ChaosRunReport {
        service: report,
        epochs: scenario.epochs.len(),
        crashed_nodes,
        forced_unsubscribes,
        final_subscriptions: final_dynamic.num_subscriptions(),
        swap_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FaultModel, TransitStubParams};
    use pubsub_core::KMeansVariant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workload::{ChaosConfig, PredicateDist, Section3Model};

    #[test]
    fn chaos_storm_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(21);
        let topo = netsim::Topology::generate(
            &TransitStubParams {
                transit_blocks: 2,
                transit_nodes_per_block: 2,
                stubs_per_transit: 2,
                nodes_per_stub: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let base = Section3Model {
            regionalism: 0.4,
            dist: PredicateDist::Uniform,
            num_subscriptions: 30,
            num_events: 10,
        }
        .generate(&topo, &mut rng);
        let scenario = ChaosScenario::generate(
            &topo,
            &base,
            &FaultModel {
                node_crash: 0.25,
                node_recover: 0.0,
                ..FaultModel::default()
            },
            &ChaosConfig {
                epochs: 5,
                churn_per_epoch: 8,
                events_per_epoch: 25,
                subscribe_fraction: 0.4,
            },
            42,
        );

        let grid = geometry::Grid::new(base.bounds.clone(), base.suggested_bins.clone())
            .expect("workload grid is valid");
        let probs = CellProbability::uniform(&grid);
        let report = run_chaos(
            &topo,
            &scenario,
            grid,
            probs,
            KMeans::new(KMeansVariant::Forgy),
            4,
            ServiceConfig {
                ingest_threads: 4,
                ..ServiceConfig::default()
            },
        )
        .expect("initial plan compiles");

        assert_eq!(report.epochs, 5);
        assert!(report.service.partitions_offered());
        assert_eq!(report.service.offered, scenario.total_events() as u64);
        // Block policy: nothing shed, everything delivered.
        assert_eq!(report.service.shed, 0);
        assert_eq!(report.service.delivered, report.service.offered);
        // Every epoch's swap succeeded (generous default watchdog).
        assert_eq!(report.service.swaps, 5);
        assert!(
            report.swap_failures.is_empty(),
            "{:?}",
            report.swap_failures
        );
        // Every decision came from a validated, published plan.
        for r in &report.service.records {
            assert!(report.service.published_versions.contains(&r.plan_version));
        }
        // Crash wiring fired (seed chosen to produce crashes) and the
        // books balance: births minus removals equals the survivors.
        assert!(report.crashed_nodes > 0, "seed produced no crashes");
        assert!(report.forced_unsubscribes > 0);
        let births = scenario.initial.len()
            + scenario
                .epochs
                .iter()
                .flat_map(|e| &e.churn)
                .filter(|op| matches!(op, ChurnOp::Subscribe { .. }))
                .count();
        let user_unsubs = scenario
            .epochs
            .iter()
            .flat_map(|e| &e.churn)
            .filter(|op| matches!(op, ChurnOp::Unsubscribe { .. }))
            .count();
        // Every removal is a sent unsubscribe that was not rejected;
        // rejected ops (unsubscribe/resubscribe races with crashes)
        // bound the slack.
        let floor = births - user_unsubs - report.forced_unsubscribes;
        assert!(report.final_subscriptions >= floor);
        assert!(
            report.final_subscriptions <= floor + report.service.rejected_ops as usize,
            "census leak: {} live, floor {floor}, {} rejected",
            report.final_subscriptions,
            report.service.rejected_ops
        );
    }
}
