//! Integration tests of the live `PubSubSystem` façade across modes,
//! thresholds and churn.

use geometry::{Grid, Interval, Point, Rect};
use netsim::{NodeId, Topology, TransitStubParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::{MulticastMode, PubSubSystem};

fn topo() -> Topology {
    Topology::generate(
        &TransitStubParams::paper_100_nodes(),
        &mut StdRng::seed_from_u64(77),
    )
}

fn rect1(lo: f64, hi: f64) -> Rect {
    Rect::new(vec![Interval::new(lo, hi).unwrap()])
}

/// Every delivery mode produces the same receiver sets — only costs
/// differ — and every interested node is always served.
#[test]
fn all_modes_deliver_to_every_interested_node() {
    let t = topo();
    let nodes: Vec<NodeId> = t.stub_nodes().collect();
    let mut rng = StdRng::seed_from_u64(5);
    let subs: Vec<(NodeId, Rect)> = (0..60)
        .map(|_| {
            let n = nodes[rng.gen_range(0..nodes.len())];
            let lo: f64 = rng.gen_range(0.0..15.0);
            (n, rect1(lo, lo + rng.gen_range(1.0..5.0)))
        })
        .collect();
    for mode in [
        MulticastMode::NetworkSupported,
        MulticastMode::SparseMode,
        MulticastMode::ApplicationLevel,
    ] {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut sys = PubSubSystem::new(&t, grid, 6).with_mode(mode);
        for (n, r) in &subs {
            sys.subscribe(*n, r.clone());
        }
        sys.refresh();
        for probe in 0..20 {
            let event = Point::new(vec![probe as f64 + 0.5]);
            let report = sys.publish(nodes[probe % nodes.len()], &event);
            // Receivers ⊇ nodes of interested subscriptions.
            for &i in &report.interested {
                assert!(
                    report.receiver_nodes.contains(&subs[i].0),
                    "{mode:?}: node of interested sub {i} not served"
                );
            }
            assert!(report.cost >= 0.0);
        }
    }
}

/// Raising the threshold can only shift deliveries from multicast to
/// unicast, never lose receivers.
#[test]
fn threshold_shifts_multicast_to_unicast() {
    let t = topo();
    let nodes: Vec<NodeId> = t.stub_nodes().collect();
    let run = |threshold: f64| {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut sys = PubSubSystem::new(&t, grid, 4).with_threshold(threshold);
        for i in 0..40 {
            sys.subscribe(nodes[i % nodes.len()], rect1(0.0, 10.0 + (i % 5) as f64));
        }
        sys.refresh();
        for probe in 0..30 {
            sys.publish(
                nodes[probe % nodes.len()],
                &Point::new(vec![probe as f64 / 2.0]),
            );
        }
        sys.stats()
    };
    let lax = run(0.0);
    let strict = run(1.0);
    assert_eq!(lax.events, strict.events);
    assert!(strict.multicast_events <= lax.multicast_events);
    assert!(strict.unicast_events >= lax.unicast_events);
}

/// Churn in the middle of a publish stream keeps the system coherent.
#[test]
fn interleaved_churn_and_publishing() {
    let t = topo();
    let nodes: Vec<NodeId> = t.stub_nodes().collect();
    let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
    let mut sys = PubSubSystem::new(&t, grid, 5);
    let mut rng = StdRng::seed_from_u64(9);
    let mut live = Vec::new();
    for round in 0..10 {
        // Some joins...
        for _ in 0..5 {
            let n = nodes[rng.gen_range(0..nodes.len())];
            let lo: f64 = rng.gen_range(0.0..15.0);
            live.push(sys.subscribe(n, rect1(lo, lo + 3.0)));
        }
        // ...some leaves...
        if live.len() > 8 {
            for _ in 0..3 {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                sys.unsubscribe(id).unwrap();
            }
        }
        sys.refresh();
        // ...and a publish burst.
        for _ in 0..5 {
            let report = sys.publish(
                nodes[rng.gen_range(0..nodes.len())],
                &Point::new(vec![rng.gen_range(0.0..20.0)]),
            );
            assert!(report.cost.is_finite(), "round {round}");
        }
        assert_eq!(sys.num_subscriptions(), live.len(), "round {round}");
    }
    assert_eq!(sys.stats().events, 50);
}
