//! The broker routing tree: per-link subscription filters and
//! hop-by-hop event forwarding.

use geometry::{Point, Rect};
use netsim::{Graph, NodeId, UnionFind};
use spatial::RTree;

/// One directed link of the broker tree: the neighbor it leads to, the
/// edge cost, and a spatial index over the subscription rectangles
/// registered somewhere behind that neighbor.
#[derive(Debug, Clone)]
struct TreeLink {
    to: NodeId,
    cost: f64,
    /// Index over the behind-set; `None` when no subscription lives
    /// behind this link (the link never forwards).
    filter: Option<RTree<usize>>,
}

/// The result of delivering one event through the broker network.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerDelivery {
    /// Ids of the subscriptions the event matched.
    pub matched_subscriptions: Vec<usize>,
    /// Deduplicated nodes hosting at least one matched subscription.
    pub receivers: Vec<NodeId>,
    /// Sum of the traversed tree-edge costs.
    pub cost: f64,
    /// Number of tree edges the event crossed.
    pub edges_traversed: usize,
}

/// Result of propagating one subscription change through the brokers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Propagation {
    /// How many per-link filters had to be updated — the paper's
    /// Section 6 criticism quantified: "the dynamics of subscriptions
    /// require subscription changes to propagate quickly in the
    /// network, which makes this approach difficult to implement".
    pub filters_touched: usize,
}

/// Router-state summary of a broker network (see
/// [`BrokerNetwork::state_size`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerState {
    /// Filter entries summed over all directed links. Each live
    /// subscription appears once per link whose behind-set contains it
    /// — `O(subscriptions × links)` in the worst case.
    pub total_filter_entries: usize,
    /// The largest single link's filter.
    pub max_link_entries: usize,
}

/// Which spanning tree the brokers form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// The graph's minimum spanning tree (minimizes total link cost —
    /// good when traffic is spread across many publishers).
    Mst,
    /// The shortest-path tree rooted at a *core* broker (a core-based
    /// tree: minimizes the detour for traffic flowing through the
    /// core — what deployed shared-tree protocols build).
    CoreSpt(NodeId),
}

/// A content-based broker network over a spanning tree of the
/// underlying graph.
///
/// # Examples
///
/// ```
/// use broker::BrokerNetwork;
/// use geometry::{Interval, Point, Rect};
/// use netsim::{Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 1.0)?;
/// let subs = vec![(NodeId(2), Rect::new(vec![Interval::new(0.0, 10.0)?]))];
/// let net = BrokerNetwork::build(&g, &subs);
/// let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
/// assert_eq!(d.receivers, vec![NodeId(2)]);
/// assert_eq!(d.cost, 2.0); // two hops along the tree
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BrokerNetwork {
    /// Tree adjacency, indexed by node.
    adj: Vec<Vec<TreeLink>>,
    /// Subscriptions homed at each node.
    at_node: Vec<Vec<usize>>,
    /// All subscription rectangles (id = slice position; tombstoned
    /// entries stay for id stability).
    rects: Vec<Rect>,
    /// Home node per subscription id.
    homes: Vec<NodeId>,
    /// Liveness per subscription id (unsubscribed = false).
    alive: Vec<bool>,
    /// Euler-tour intervals and parents of the rooted tree (used to
    /// route filter updates on subscribe).
    tin: Vec<usize>,
    tout: Vec<usize>,
    parent: Vec<usize>,
    dim: usize,
}

impl BrokerNetwork {
    /// Builds the broker network: computes the graph's minimum spanning
    /// tree, roots it, and installs per-link filters (the union of
    /// subscription rectangles behind each link).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected, a subscription names an
    /// unknown node, or subscriptions disagree on dimension.
    pub fn build(graph: &Graph, subscriptions: &[(NodeId, Rect)]) -> Self {
        Self::build_with_tree(graph, subscriptions, TreeKind::Mst)
    }

    /// Like [`BrokerNetwork::build`], choosing the overlay tree.
    ///
    /// # Panics
    ///
    /// As [`BrokerNetwork::build`]; additionally if a `CoreSpt` core
    /// node is out of range.
    pub fn build_with_tree(
        graph: &Graph,
        subscriptions: &[(NodeId, Rect)],
        kind: TreeKind,
    ) -> Self {
        let n = graph.num_nodes();
        assert!(n > 0, "graph must have nodes");
        assert!(graph.is_connected(), "broker tree needs a connected graph");
        let dim = subscriptions.first().map_or(1, |(_, r)| r.dim());
        for (node, rect) in subscriptions {
            assert!(node.index() < n, "subscription at unknown node {node}");
            assert_eq!(rect.dim(), dim, "subscription dimension mismatch");
        }

        // 1. The overlay tree.
        let mut tree_adj: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        match kind {
            TreeKind::Mst => {
                // Kruskal.
                let mut order: Vec<usize> = (0..graph.num_edges()).collect();
                order.sort_by(|&a, &b| {
                    graph.edges()[a]
                        .cost
                        .partial_cmp(&graph.edges()[b].cost)
                        .expect("edge cost is never NaN")
                });
                let mut uf = UnionFind::new(n);
                for i in order {
                    let e = &graph.edges()[i];
                    if uf.union(e.u.index(), e.v.index()) {
                        tree_adj[e.u.index()].push((e.v, e.cost));
                        tree_adj[e.v.index()].push((e.u, e.cost));
                    }
                }
            }
            TreeKind::CoreSpt(core) => {
                assert!(core.index() < n, "core {core} out of range");
                let spt = netsim::ShortestPathTree::compute(graph, core);
                for v in graph.nodes() {
                    if let Some((p, e)) = spt.parent(v) {
                        let cost = graph.edge(e).cost;
                        tree_adj[p.index()].push((v, cost));
                        tree_adj[v.index()].push((p, cost));
                    }
                }
            }
        }

        // 2. Root the tree at node 0 and compute an Euler tour so
        //    "home is in the subtree of v" is an O(1) interval test.
        let mut tin = vec![0usize; n];
        let mut tout = vec![0usize; n];
        let mut parent = vec![usize::MAX; n];
        let mut timer = 0usize;
        // Iterative DFS (600-node trees can be deep).
        let mut stack = vec![(0usize, false)];
        while let Some((u, processed)) = stack.pop() {
            if processed {
                tout[u] = timer;
                timer += 1;
                continue;
            }
            tin[u] = timer;
            timer += 1;
            stack.push((u, true));
            for &(v, _) in &tree_adj[u] {
                if v.index() != parent[u] {
                    parent[v.index()] = u;
                    stack.push((v.index(), false));
                }
            }
        }
        let in_subtree =
            |root: usize, node: usize| tin[root] <= tin[node] && tout[node] <= tout[root];

        // 3. Per-link behind-sets: the subscriptions reachable through
        //    each directed tree edge.
        let mut at_node: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (node, _)) in subscriptions.iter().enumerate() {
            at_node[node.index()].push(i);
        }
        let adj: Vec<Vec<TreeLink>> = (0..n)
            .map(|u| {
                tree_adj[u]
                    .iter()
                    .map(|&(v, cost)| {
                        // Behind (u → v): if v is u's child, the subs in
                        // v's subtree; if v is u's parent, everything
                        // outside u's subtree.
                        let behind: Vec<(Rect, usize)> = subscriptions
                            .iter()
                            .enumerate()
                            .filter(|(_, (home, _))| {
                                let h = home.index();
                                if parent[v.index()] == u {
                                    in_subtree(v.index(), h)
                                } else {
                                    !in_subtree(u, h)
                                }
                            })
                            .map(|(i, (_, rect))| (rect.clone(), i))
                            .collect();
                        let filter = if behind.is_empty() {
                            None
                        } else {
                            Some(RTree::bulk_load(dim, behind))
                        };
                        TreeLink {
                            to: v,
                            cost,
                            filter,
                        }
                    })
                    .collect()
            })
            .collect();

        BrokerNetwork {
            adj,
            at_node,
            rects: subscriptions.iter().map(|(_, r)| r.clone()).collect(),
            homes: subscriptions.iter().map(|(n, _)| *n).collect(),
            alive: vec![true; subscriptions.len()],
            tin,
            tout,
            parent,
            dim,
        }
    }

    fn in_subtree(&self, root: usize, node: usize) -> bool {
        self.tin[root] <= self.tin[node] && self.tout[node] <= self.tout[root]
    }

    /// Registers a new subscription at runtime, inserting it into every
    /// per-link filter whose behind-set now contains it. Returns the
    /// new subscription id and the propagation cost: in a tree of `n`
    /// brokers every one of the `n-1` links has exactly one direction
    /// pointing toward the new subscriber, so the change touches the
    /// whole network — the paper's Section 6 argument against this
    /// architecture under churn.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown or the rectangle dimension differs.
    pub fn subscribe(&mut self, node: NodeId, rect: Rect) -> (usize, Propagation) {
        assert!(node.index() < self.adj.len(), "unknown node {node}");
        assert_eq!(rect.dim(), self.dim, "subscription dimension mismatch");
        let id = self.rects.len();
        self.rects.push(rect.clone());
        self.homes.push(node);
        self.alive.push(true);
        self.at_node[node.index()].push(id);
        let h = node.index();
        let mut touched = 0usize;
        for u in 0..self.adj.len() {
            // Split borrow: compute membership before mutating links.
            let decisions: Vec<bool> = self.adj[u]
                .iter()
                .map(|link| {
                    let v = link.to.index();
                    if self.parent[v] == u {
                        self.in_subtree(v, h)
                    } else {
                        !self.in_subtree(u, h)
                    }
                })
                .collect();
            for (link, behind) in self.adj[u].iter_mut().zip(decisions) {
                if behind {
                    link.filter
                        .get_or_insert_with(|| RTree::new(rect.dim()))
                        .insert(rect.clone(), id);
                    touched += 1;
                }
            }
        }
        (
            id,
            Propagation {
                filters_touched: touched,
            },
        )
    }

    /// Removes a subscription. The per-link filters keep the (now
    /// tombstoned) entry — forwarding checks liveness — so removal
    /// itself propagates nothing; the entry is garbage until the next
    /// full rebuild, mirroring real systems' lazy unsubscription.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or already removed.
    pub fn unsubscribe(&mut self, id: usize) -> Propagation {
        assert!(
            id < self.alive.len() && self.alive[id],
            "subscription {id} is not live"
        );
        self.alive[id] = false;
        self.at_node[self.homes[id].index()].retain(|&s| s != id);
        Propagation { filters_touched: 0 }
    }

    /// Number of brokers (graph nodes).
    pub fn num_brokers(&self) -> usize {
        self.adj.len()
    }

    /// Number of registered subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.rects.len()
    }

    /// Delivers an event published at `publisher`: forwards across
    /// exactly the tree links whose behind-set matches the event, and
    /// collects matching subscriptions node by node.
    ///
    /// # Panics
    ///
    /// Panics if `publisher` is out of range or the event dimension
    /// differs from the subscriptions'.
    pub fn deliver(&self, publisher: NodeId, event: &Point) -> BrokerDelivery {
        assert!(publisher.index() < self.adj.len(), "unknown publisher");
        let mut matched = Vec::new();
        let mut receivers = Vec::new();
        let mut cost = 0.0;
        let mut edges = 0usize;
        // DFS from the publisher; `from` prevents back-traversal.
        let mut stack: Vec<(usize, usize)> = vec![(publisher.index(), usize::MAX)];
        while let Some((u, from)) = stack.pop() {
            // Local matches at this broker (live subscriptions only).
            let local: Vec<usize> = self.at_node[u]
                .iter()
                .copied()
                .filter(|&i| self.alive[i] && self.rects[i].contains(event))
                .collect();
            if !local.is_empty() {
                receivers.push(NodeId(u));
                matched.extend(local);
            }
            for link in &self.adj[u] {
                if link.to.index() == from {
                    continue;
                }
                let forwards = link
                    .filter
                    .as_ref()
                    .is_some_and(|f| f.stab(event).into_iter().any(|&i| self.alive[i]));
                if forwards {
                    cost += link.cost;
                    edges += 1;
                    stack.push((link.to.index(), u));
                }
            }
        }
        matched.sort_unstable();
        receivers.sort_unstable();
        BrokerDelivery {
            matched_subscriptions: matched,
            receivers,
            cost,
            edges_traversed: edges,
        }
    }

    /// Router-state accounting: the total number of (rect, id) filter
    /// entries installed across all directed links, and the largest
    /// single link's filter — the per-hop matching state this
    /// architecture pays that precomputed multicast groups avoid.
    pub fn state_size(&self) -> BrokerState {
        let mut total = 0usize;
        let mut max_link = 0usize;
        for links in &self.adj {
            for link in links {
                let n = link.filter.as_ref().map_or(0, |f| f.len());
                total += n;
                max_link = max_link.max(n);
            }
        }
        BrokerState {
            total_filter_entries: total,
            max_link_entries: max_link,
        }
    }

    /// The cost of flooding the whole broker tree (the upper bound any
    /// delivery can reach).
    pub fn tree_cost(&self) -> f64 {
        self.adj
            .iter()
            .flat_map(|links| links.iter().map(|l| l.cost))
            .sum::<f64>()
            / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use netsim::{Topology, TransitStubParams};
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    /// Path graph 0-1-2-3 with unit costs.
    fn path4() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g
    }

    #[test]
    fn forwards_only_toward_interest() {
        let g = path4();
        let subs = vec![
            (NodeId(3), rect1(0.0, 10.0)),
            (NodeId(0), rect1(20.0, 30.0)),
        ];
        let net = BrokerNetwork::build(&g, &subs);
        // Event matching only the far subscription travels the whole
        // path.
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.matched_subscriptions, vec![0]);
        assert_eq!(d.receivers, vec![NodeId(3)]);
        assert_eq!(d.cost, 3.0);
        assert_eq!(d.edges_traversed, 3);
        // Event matching only the local subscription never leaves.
        let d = net.deliver(NodeId(0), &Point::new(vec![25.0]));
        assert_eq!(d.receivers, vec![NodeId(0)]);
        assert_eq!(d.cost, 0.0);
        // Event matching nothing costs nothing.
        let d = net.deliver(NodeId(1), &Point::new(vec![15.0]));
        assert!(d.receivers.is_empty());
        assert_eq!(d.cost, 0.0);
    }

    #[test]
    fn publisher_in_the_middle_forks_both_ways() {
        let g = path4();
        let subs = vec![(NodeId(0), rect1(0.0, 10.0)), (NodeId(3), rect1(0.0, 10.0))];
        let net = BrokerNetwork::build(&g, &subs);
        let d = net.deliver(NodeId(1), &Point::new(vec![5.0]));
        assert_eq!(d.receivers, vec![NodeId(0), NodeId(3)]);
        assert_eq!(d.cost, 3.0); // 1 left + 2 right
    }

    #[test]
    fn matches_are_complete_and_exact_on_random_workloads() {
        let mut rng = StdRng::seed_from_u64(7);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let subs: Vec<(NodeId, Rect)> = (0..200)
            .map(|_| {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                (node, rect1(a.min(b), a.max(b)))
            })
            .collect();
        let net = BrokerNetwork::build(topo.graph(), &subs);
        for _ in 0..50 {
            let publisher = nodes[rng.gen_range(0..nodes.len())];
            let event = Point::new(vec![rng.gen_range(0.0..20.0)]);
            let d = net.deliver(publisher, &event);
            // Completeness + exactness against brute force.
            let expect: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, (_, r))| r.contains(&event))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(d.matched_subscriptions, expect);
            let mut expect_nodes: Vec<NodeId> = expect.iter().map(|&i| subs[i].0).collect();
            expect_nodes.sort_unstable();
            expect_nodes.dedup();
            assert_eq!(d.receivers, expect_nodes);
            // Cost bounded by flooding the tree.
            assert!(d.cost <= net.tree_cost() + 1e-9);
        }
    }

    #[test]
    fn subscribe_touches_every_link_and_delivers() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[]);
        let (id, prop) = net.subscribe(NodeId(3), rect1(0.0, 10.0));
        // A tree of 4 brokers has 3 links; each has one direction
        // pointing toward node 3.
        assert_eq!(prop.filters_touched, 3);
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.matched_subscriptions, vec![id]);
        assert_eq!(d.receivers, vec![NodeId(3)]);
        assert_eq!(d.cost, 3.0);
    }

    #[test]
    fn unsubscribe_stops_forwarding() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.cost, 3.0);
        let prop = net.unsubscribe(0);
        assert_eq!(prop.filters_touched, 0); // lazy tombstoning
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert!(d.matched_subscriptions.is_empty());
        // Forwarding is suppressed by the liveness check even though
        // the filters still contain the tombstoned entry.
        assert_eq!(d.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_unsubscribe_panics() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[(NodeId(0), rect1(0.0, 1.0))]);
        net.unsubscribe(0);
        net.unsubscribe(0);
    }

    #[test]
    fn churn_preserves_exact_matching() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(13);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        // Start with a population, then churn: remove some, add some.
        let initial: Vec<(NodeId, Rect)> = (0..80)
            .map(|_| {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                (node, rect1(a.min(b), a.max(b)))
            })
            .collect();
        let mut net = BrokerNetwork::build(topo.graph(), &initial);
        let mut live: Vec<Option<(NodeId, Rect)>> = initial.iter().cloned().map(Some).collect();
        for _ in 0..30 {
            if rng.gen_bool(0.5) {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                let rect = rect1(a.min(b), a.max(b));
                let (id, _) = net.subscribe(node, rect.clone());
                assert_eq!(id, live.len());
                live.push(Some((node, rect)));
            } else {
                let candidates: Vec<usize> = live
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&id) = candidates.choose(&mut rng) {
                    net.unsubscribe(id);
                    live[id] = None;
                }
            }
        }
        // Exact matching against the live brute-force set.
        for _ in 0..30 {
            let publisher = nodes[rng.gen_range(0..nodes.len())];
            let event = Point::new(vec![rng.gen_range(0.0..20.0)]);
            let d = net.deliver(publisher, &event);
            let expect: Vec<usize> = live
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
                .filter(|(_, (_, r))| r.contains(&event))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(d.matched_subscriptions, expect);
        }
    }

    #[test]
    fn core_spt_tree_matches_identically_to_mst() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(19);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let subs: Vec<(NodeId, Rect)> = (0..60)
            .map(|_| {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                (node, rect1(a.min(b), a.max(b)))
            })
            .collect();
        let core = topo.transit_nodes(0)[0];
        let mst = BrokerNetwork::build_with_tree(topo.graph(), &subs, TreeKind::Mst);
        let cbt = BrokerNetwork::build_with_tree(topo.graph(), &subs, TreeKind::CoreSpt(core));
        for trial in 0..20 {
            let publisher = nodes[(trial * 7) % nodes.len()];
            let event = Point::new(vec![rng.gen_range(0.0..20.0)]);
            let a = mst.deliver(publisher, &event);
            let b = cbt.deliver(publisher, &event);
            // Identical matching semantics; possibly different costs
            // (different trees).
            assert_eq!(a.matched_subscriptions, b.matched_subscriptions);
            assert_eq!(a.receivers, b.receivers);
        }
        // The core-rooted tree is a shortest-path tree: its total cost
        // is at least the MST's by minimality of the MST.
        assert!(cbt.tree_cost() >= mst.tree_cost() - 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_out_of_range_panics() {
        let g = path4();
        let _ = BrokerNetwork::build_with_tree(&g, &[], TreeKind::CoreSpt(NodeId(99)));
    }

    #[test]
    fn state_size_counts_filter_entries() {
        let g = path4();
        // One subscription at node 3: behind-sets of the three directed
        // links pointing toward 3 contain it → 3 entries.
        let net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        let st = net.state_size();
        assert_eq!(st.total_filter_entries, 3);
        assert_eq!(st.max_link_entries, 1);
        // Empty network: zero state.
        let empty = BrokerNetwork::build(&g, &[]);
        assert_eq!(empty.state_size().total_filter_entries, 0);
    }

    #[test]
    fn empty_subscription_set() {
        let g = path4();
        let net = BrokerNetwork::build(&g, &[]);
        assert_eq!(net.num_subscriptions(), 0);
        let d = net.deliver(NodeId(2), &Point::new(vec![1.0]));
        assert!(d.matched_subscriptions.is_empty());
        assert_eq!(d.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let g = Graph::with_nodes(2);
        let _ = BrokerNetwork::build(&g, &[]);
    }
}
