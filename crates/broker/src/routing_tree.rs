//! The broker routing tree: per-link subscription filters and
//! hop-by-hop event forwarding.

use geometry::{Point, Rect};
use netsim::{DegradedView, EdgeId, Graph, NodeId, UnionFind};
use spatial::RTree;

/// One directed link of the broker tree: the neighbor it leads to, the
/// edge cost, and a spatial index over the subscription rectangles
/// registered somewhere behind that neighbor.
#[derive(Debug, Clone)]
struct TreeLink {
    to: NodeId,
    cost: f64,
    /// The underlying graph edge this link rides on — how fault
    /// injection decides whether the link survived.
    edge: EdgeId,
    /// Index over the behind-set; `None` when no subscription lives
    /// behind this link (the link never forwards).
    filter: Option<RTree<usize>>,
}

/// The outcome of repairing the broker tree after failures (see
/// [`BrokerNetwork::repair`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairReport {
    /// Tree links that failed (link down or an endpoint crashed).
    pub tree_edges_lost: usize,
    /// Orphaned subtrees grafted back onto the primary component.
    pub reattached_components: usize,
    /// New links added while grafting.
    pub grafted_edges: usize,
    /// Sum of the (degraded) costs of the grafted links — the control
    /// traffic the repair itself pays.
    pub repair_cost: f64,
    /// Live brokers left unreachable from the primary component — no
    /// surviving path exists, so their subscribers silently miss events
    /// published elsewhere until the partition heals.
    pub stranded_brokers: usize,
    /// Subscriptions tombstoned because their home broker crashed.
    pub dropped_subscriptions: usize,
}

/// The result of delivering one event through the broker network.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerDelivery {
    /// Ids of the subscriptions the event matched.
    pub matched_subscriptions: Vec<usize>,
    /// Deduplicated nodes hosting at least one matched subscription.
    pub receivers: Vec<NodeId>,
    /// Sum of the traversed tree-edge costs.
    pub cost: f64,
    /// Number of tree edges the event crossed.
    pub edges_traversed: usize,
}

/// Result of propagating one subscription change through the brokers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Propagation {
    /// How many per-link filters had to be updated — the paper's
    /// Section 6 criticism quantified: "the dynamics of subscriptions
    /// require subscription changes to propagate quickly in the
    /// network, which makes this approach difficult to implement".
    pub filters_touched: usize,
}

/// Router-state summary of a broker network (see
/// [`BrokerNetwork::state_size`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerState {
    /// Filter entries summed over all directed links. Each live
    /// subscription appears once per link whose behind-set contains it
    /// — `O(subscriptions × links)` in the worst case.
    pub total_filter_entries: usize,
    /// The largest single link's filter.
    pub max_link_entries: usize,
}

/// Which spanning tree the brokers form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// The graph's minimum spanning tree (minimizes total link cost —
    /// good when traffic is spread across many publishers).
    Mst,
    /// The shortest-path tree rooted at a *core* broker (a core-based
    /// tree: minimizes the detour for traffic flowing through the
    /// core — what deployed shared-tree protocols build).
    CoreSpt(NodeId),
}

/// A content-based broker network over a spanning tree of the
/// underlying graph.
///
/// # Examples
///
/// ```
/// use broker::BrokerNetwork;
/// use geometry::{Interval, Point, Rect};
/// use netsim::{Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 1.0)?;
/// let subs = vec![(NodeId(2), Rect::new(vec![Interval::new(0.0, 10.0)?]))];
/// let net = BrokerNetwork::build(&g, &subs);
/// let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
/// assert_eq!(d.receivers, vec![NodeId(2)]);
/// assert_eq!(d.cost, 2.0); // two hops along the tree
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BrokerNetwork {
    /// Tree adjacency, indexed by node.
    adj: Vec<Vec<TreeLink>>,
    /// Subscriptions homed at each node.
    at_node: Vec<Vec<usize>>,
    /// All subscription rectangles (id = slice position; tombstoned
    /// entries stay for id stability).
    rects: Vec<Rect>,
    /// Home node per subscription id.
    homes: Vec<NodeId>,
    /// Liveness per subscription id (unsubscribed = false).
    alive: Vec<bool>,
    /// Euler-tour intervals and parents of the rooted tree (used to
    /// route filter updates on subscribe).
    tin: Vec<usize>,
    tout: Vec<usize>,
    parent: Vec<usize>,
    /// The DFS root of each node's tree. A freshly built network is one
    /// tree rooted at 0; after a partition-inducing failure the
    /// structure is a forest and behind-sets must not leak across trees.
    root: Vec<usize>,
    dim: usize,
}

impl BrokerNetwork {
    /// Builds the broker network: computes the graph's minimum spanning
    /// tree, roots it, and installs per-link filters (the union of
    /// subscription rectangles behind each link).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected, a subscription names an
    /// unknown node, or subscriptions disagree on dimension.
    pub fn build(graph: &Graph, subscriptions: &[(NodeId, Rect)]) -> Self {
        Self::build_with_tree(graph, subscriptions, TreeKind::Mst)
    }

    /// Like [`BrokerNetwork::build`], choosing the overlay tree.
    ///
    /// # Panics
    ///
    /// As [`BrokerNetwork::build`]; additionally if a `CoreSpt` core
    /// node is out of range.
    pub fn build_with_tree(
        graph: &Graph,
        subscriptions: &[(NodeId, Rect)],
        kind: TreeKind,
    ) -> Self {
        let n = graph.num_nodes();
        assert!(n > 0, "graph must have nodes");
        assert!(graph.is_connected(), "broker tree needs a connected graph");
        let dim = subscriptions.first().map_or(1, |(_, r)| r.dim());
        for (node, rect) in subscriptions {
            assert!(node.index() < n, "subscription at unknown node {node}");
            assert_eq!(rect.dim(), dim, "subscription dimension mismatch");
        }

        // 1. The overlay tree (each undirected link remembers the graph
        //    edge it rides on, so fault injection can kill it later).
        let mut tree_adj: Vec<Vec<(NodeId, f64, EdgeId)>> = vec![Vec::new(); n];
        match kind {
            TreeKind::Mst => {
                // Kruskal.
                let mut order: Vec<usize> = (0..graph.num_edges()).collect();
                order.sort_by(|&a, &b| {
                    graph.edges()[a]
                        .cost
                        .partial_cmp(&graph.edges()[b].cost)
                        .expect("edge cost is never NaN")
                });
                let mut uf = UnionFind::new(n);
                for i in order {
                    let e = &graph.edges()[i];
                    if uf.union(e.u.index(), e.v.index()) {
                        tree_adj[e.u.index()].push((e.v, e.cost, EdgeId(i)));
                        tree_adj[e.v.index()].push((e.u, e.cost, EdgeId(i)));
                    }
                }
            }
            TreeKind::CoreSpt(core) => {
                assert!(core.index() < n, "core {core} out of range");
                let spt = netsim::ShortestPathTree::compute(graph, core);
                for v in graph.nodes() {
                    if let Some((p, e)) = spt.parent(v) {
                        let cost = graph.edge(e).cost;
                        tree_adj[p.index()].push((v, cost, e));
                        tree_adj[v.index()].push((p, cost, e));
                    }
                }
            }
        }

        let mut at_node: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (node, _)) in subscriptions.iter().enumerate() {
            at_node[node.index()].push(i);
        }
        let mut net = BrokerNetwork {
            adj: Vec::new(),
            at_node,
            rects: subscriptions.iter().map(|(_, r)| r.clone()).collect(),
            homes: subscriptions.iter().map(|(n, _)| *n).collect(),
            alive: vec![true; subscriptions.len()],
            tin: Vec::new(),
            tout: Vec::new(),
            parent: Vec::new(),
            root: Vec::new(),
            dim,
        };
        net.install_tree(&tree_adj);
        net
    }

    /// (Re)roots the given tree (or forest), recomputes the Euler tour,
    /// and rebuilds every per-link filter from the live subscriptions.
    fn install_tree(&mut self, tree_adj: &[Vec<(NodeId, f64, EdgeId)>]) {
        let n = tree_adj.len();
        // Root each component at its lowest-id node and compute an
        // Euler tour so "home is in the subtree of v" is an O(1)
        // interval test. A connected tree yields the single root 0.
        self.tin = vec![0usize; n];
        self.tout = vec![0usize; n];
        self.parent = vec![usize::MAX; n];
        self.root = vec![usize::MAX; n];
        let mut timer = 0usize;
        for r in 0..n {
            if self.root[r] != usize::MAX {
                continue;
            }
            self.root[r] = r;
            // Iterative DFS (600-node trees can be deep).
            let mut stack = vec![(r, false)];
            while let Some((u, processed)) = stack.pop() {
                if processed {
                    self.tout[u] = timer;
                    timer += 1;
                    continue;
                }
                self.tin[u] = timer;
                timer += 1;
                stack.push((u, true));
                for &(v, _, _) in &tree_adj[u] {
                    if v.index() != self.parent[u] {
                        self.parent[v.index()] = u;
                        self.root[v.index()] = r;
                        stack.push((v.index(), false));
                    }
                }
            }
        }

        // Per-link behind-sets: the live subscriptions reachable
        // through each directed tree edge.
        self.adj = (0..n)
            .map(|u| {
                tree_adj[u]
                    .iter()
                    .map(|&(v, cost, edge)| {
                        let behind: Vec<(Rect, usize)> = (0..self.rects.len())
                            .filter(|&i| {
                                self.alive[i]
                                    && self.behind_link(u, v.index(), self.homes[i].index())
                            })
                            .map(|i| (self.rects[i].clone(), i))
                            .collect();
                        let filter = if behind.is_empty() {
                            None
                        } else {
                            Some(RTree::bulk_load(self.dim, behind))
                        };
                        TreeLink {
                            to: v,
                            cost,
                            edge,
                            filter,
                        }
                    })
                    .collect()
            })
            .collect();
    }

    fn in_subtree(&self, root: usize, node: usize) -> bool {
        self.tin[root] <= self.tin[node] && self.tout[node] <= self.tout[root]
    }

    /// Whether a subscription homed at `h` lies behind the directed
    /// link `u → v`: in v's subtree when v is u's child, otherwise
    /// outside u's subtree *within the same tree of the forest* (homes
    /// in a different component are unreachable, not "behind").
    fn behind_link(&self, u: usize, v: usize, h: usize) -> bool {
        if self.parent[v] == u {
            self.in_subtree(v, h)
        } else {
            self.root[h] == self.root[u] && !self.in_subtree(u, h)
        }
    }

    /// Registers a new subscription at runtime, inserting it into every
    /// per-link filter whose behind-set now contains it. Returns the
    /// new subscription id and the propagation cost: in a tree of `n`
    /// brokers every one of the `n-1` links has exactly one direction
    /// pointing toward the new subscriber, so the change touches the
    /// whole network — the paper's Section 6 argument against this
    /// architecture under churn.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown or the rectangle dimension differs.
    pub fn subscribe(&mut self, node: NodeId, rect: Rect) -> (usize, Propagation) {
        assert!(node.index() < self.adj.len(), "unknown node {node}");
        assert_eq!(rect.dim(), self.dim, "subscription dimension mismatch");
        let id = self.rects.len();
        self.rects.push(rect.clone());
        self.homes.push(node);
        self.alive.push(true);
        self.at_node[node.index()].push(id);
        let h = node.index();
        let mut touched = 0usize;
        for u in 0..self.adj.len() {
            // Split borrow: compute membership before mutating links.
            let decisions: Vec<bool> = self.adj[u]
                .iter()
                .map(|link| self.behind_link(u, link.to.index(), h))
                .collect();
            for (link, behind) in self.adj[u].iter_mut().zip(decisions) {
                if behind {
                    link.filter
                        .get_or_insert_with(|| RTree::new(rect.dim()))
                        .insert(rect.clone(), id);
                    touched += 1;
                }
            }
        }
        (
            id,
            Propagation {
                filters_touched: touched,
            },
        )
    }

    /// Removes a subscription. The per-link filters keep the (now
    /// tombstoned) entry — forwarding checks liveness — so removal
    /// itself propagates nothing; the entry is garbage until the next
    /// full rebuild, mirroring real systems' lazy unsubscription.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or already removed.
    pub fn unsubscribe(&mut self, id: usize) -> Propagation {
        assert!(
            id < self.alive.len() && self.alive[id],
            "subscription {id} is not live"
        );
        self.alive[id] = false;
        self.at_node[self.homes[id].index()].retain(|&s| s != id);
        Propagation { filters_touched: 0 }
    }

    /// Repairs the broker tree after failures: drops dead links (link
    /// down or endpoint crashed), tombstones subscriptions homed on
    /// crashed brokers, and grafts each orphaned subtree back onto the
    /// primary component along the cheapest surviving path (repeated
    /// multi-source Dijkstra over the degraded graph). Components with
    /// no surviving path stay stranded as their own trees; every filter
    /// is rebuilt (which also compacts tombstoned entries away).
    ///
    /// Surviving link costs are refreshed to their degraded values, so
    /// subsequent [`BrokerNetwork::deliver`] calls pay inflated costs on
    /// congested links.
    ///
    /// Deterministic: ties in the Dijkstra and in component choice break
    /// on node id, never on iteration order of a hash map.
    ///
    /// # Panics
    ///
    /// Panics if `graph`/`view` do not describe the graph this network
    /// was built from (node or edge counts differ).
    pub fn repair(&mut self, graph: &Graph, view: &DegradedView) -> RepairReport {
        let n = self.adj.len();
        assert_eq!(n, graph.num_nodes(), "graph mismatch");

        // 1. Surviving tree links, with refreshed (degraded) costs.
        let mut tree_adj: Vec<Vec<(NodeId, f64, EdgeId)>> = vec![Vec::new(); n];
        let mut tree_edge: Vec<bool> = vec![false; graph.num_edges()];
        let mut lost = 0usize;
        for u in 0..n {
            for link in &self.adj[u] {
                let v = link.to.index();
                if u < v {
                    if view.edge_live(graph, link.edge) {
                        let cost = view.edge_cost(graph, link.edge);
                        tree_adj[u].push((link.to, cost, link.edge));
                        tree_adj[v].push((NodeId(u), cost, link.edge));
                        tree_edge[link.edge.index()] = true;
                    } else {
                        lost += 1;
                    }
                }
            }
        }

        // 2. Crashed brokers lose their subscriptions (the churn the
        //    clustering layer sees as forced unsubscribes).
        let mut dropped = 0usize;
        for i in 0..self.rects.len() {
            if self.alive[i] && !view.node_live(self.homes[i]) {
                self.alive[i] = false;
                self.at_node[self.homes[i].index()].retain(|&s| s != i);
                dropped += 1;
            }
        }

        // 3. Components of the surviving tree; the primary component is
        //    the one holding the lowest-id live broker.
        let mut uf = UnionFind::new(n);
        for (u, links) in tree_adj.iter().enumerate() {
            for &(v, _, _) in links {
                uf.union(u, v.index());
            }
        }
        let live: Vec<bool> = (0..n).map(|u| view.node_live(NodeId(u))).collect();
        let primary_seed = match (0..n).find(|&u| live[u]) {
            Some(u) => u,
            None => {
                // Everyone crashed: nothing to graft, nothing reachable.
                self.install_tree(&tree_adj);
                return RepairReport {
                    tree_edges_lost: lost,
                    reattached_components: 0,
                    grafted_edges: 0,
                    repair_cost: 0.0,
                    stranded_brokers: 0,
                    dropped_subscriptions: dropped,
                };
            }
        };

        // 4. Greedy grafting: repeatedly find the orphan broker closest
        //    to the primary component over live edges (degraded costs)
        //    and splice its path in; the path may pull whole other
        //    components along with it.
        let mut reattached = 0usize;
        let mut grafted = 0usize;
        let mut repair_cost = 0.0f64;
        loop {
            let root = uf.find(primary_seed);
            // O(V²) multi-source Dijkstra — deterministic, and plenty
            // for the ≤600-broker topologies this models.
            let mut dist = vec![f64::INFINITY; n];
            let mut from: Vec<Option<(usize, EdgeId)>> = vec![None; n];
            let mut done = vec![false; n];
            for u in 0..n {
                if live[u] && uf.find(u) == root {
                    dist[u] = 0.0;
                }
            }
            loop {
                let mut best: Option<usize> = None;
                for u in 0..n {
                    if !done[u] && dist[u].is_finite() {
                        let better = match best {
                            None => true,
                            Some(b) => dist[u] < dist[b],
                        };
                        if better {
                            best = Some(u);
                        }
                    }
                }
                let Some(u) = best else { break };
                done[u] = true;
                for &(v, e) in graph.neighbors(NodeId(u)) {
                    if !view.edge_live(graph, e) {
                        continue;
                    }
                    let nd = dist[u] + view.edge_cost(graph, e);
                    if nd < dist[v.index()] {
                        dist[v.index()] = nd;
                        from[v.index()] = Some((u, e));
                    }
                }
            }
            // The nearest live broker outside the primary component.
            let mut target: Option<usize> = None;
            for u in 0..n {
                if live[u] && uf.find(u) != root && dist[u].is_finite() {
                    let better = match target {
                        None => true,
                        Some(t) => dist[u] < dist[t],
                    };
                    if better {
                        target = Some(u);
                    }
                }
            }
            let Some(t) = target else { break };
            // Splice the path in, skipping segments that are already
            // tree links (the path can cut through other components).
            let mut cur = t;
            while let Some((p, e)) = from[cur] {
                if !tree_edge[e.index()] {
                    let cost = view.edge_cost(graph, e);
                    tree_adj[p].push((NodeId(cur), cost, e));
                    tree_adj[cur].push((NodeId(p), cost, e));
                    tree_edge[e.index()] = true;
                    grafted += 1;
                    repair_cost += cost;
                }
                uf.union(p, cur);
                cur = p;
            }
            reattached += 1;
        }
        let root = uf.find(primary_seed);
        let stranded = (0..n).filter(|&u| live[u] && uf.find(u) != root).count();

        // 5. Re-root, re-tour, rebuild every filter.
        self.install_tree(&tree_adj);
        RepairReport {
            tree_edges_lost: lost,
            reattached_components: reattached,
            grafted_edges: grafted,
            repair_cost,
            stranded_brokers: stranded,
            dropped_subscriptions: dropped,
        }
    }

    /// Number of brokers (graph nodes).
    pub fn num_brokers(&self) -> usize {
        self.adj.len()
    }

    /// Number of registered subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.rects.len()
    }

    /// Delivers an event published at `publisher`: forwards across
    /// exactly the tree links whose behind-set matches the event, and
    /// collects matching subscriptions node by node.
    ///
    /// # Panics
    ///
    /// Panics if `publisher` is out of range or the event dimension
    /// differs from the subscriptions'.
    pub fn deliver(&self, publisher: NodeId, event: &Point) -> BrokerDelivery {
        assert!(publisher.index() < self.adj.len(), "unknown publisher");
        let mut matched = Vec::new();
        let mut receivers = Vec::new();
        let mut cost = 0.0;
        let mut edges = 0usize;
        // DFS from the publisher; `from` prevents back-traversal.
        let mut stack: Vec<(usize, usize)> = vec![(publisher.index(), usize::MAX)];
        while let Some((u, from)) = stack.pop() {
            // Local matches at this broker (live subscriptions only).
            let local: Vec<usize> = self.at_node[u]
                .iter()
                .copied()
                .filter(|&i| self.alive[i] && self.rects[i].contains(event))
                .collect();
            if !local.is_empty() {
                receivers.push(NodeId(u));
                matched.extend(local);
            }
            for link in &self.adj[u] {
                if link.to.index() == from {
                    continue;
                }
                let forwards = link
                    .filter
                    .as_ref()
                    .is_some_and(|f| f.stab(event).into_iter().any(|&i| self.alive[i]));
                if forwards {
                    cost += link.cost;
                    edges += 1;
                    stack.push((link.to.index(), u));
                }
            }
        }
        matched.sort_unstable();
        receivers.sort_unstable();
        BrokerDelivery {
            matched_subscriptions: matched,
            receivers,
            cost,
            edges_traversed: edges,
        }
    }

    /// Router-state accounting: the total number of (rect, id) filter
    /// entries installed across all directed links, and the largest
    /// single link's filter — the per-hop matching state this
    /// architecture pays that precomputed multicast groups avoid.
    pub fn state_size(&self) -> BrokerState {
        let mut total = 0usize;
        let mut max_link = 0usize;
        for links in &self.adj {
            for link in links {
                let n = link.filter.as_ref().map_or(0, |f| f.len());
                total += n;
                max_link = max_link.max(n);
            }
        }
        BrokerState {
            total_filter_entries: total,
            max_link_entries: max_link,
        }
    }

    /// The cost of flooding the whole broker tree (the upper bound any
    /// delivery can reach).
    pub fn tree_cost(&self) -> f64 {
        self.adj
            .iter()
            .flat_map(|links| links.iter().map(|l| l.cost))
            .sum::<f64>()
            / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use netsim::{Topology, TransitStubParams};
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    /// Path graph 0-1-2-3 with unit costs.
    fn path4() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g
    }

    #[test]
    fn forwards_only_toward_interest() {
        let g = path4();
        let subs = vec![
            (NodeId(3), rect1(0.0, 10.0)),
            (NodeId(0), rect1(20.0, 30.0)),
        ];
        let net = BrokerNetwork::build(&g, &subs);
        // Event matching only the far subscription travels the whole
        // path.
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.matched_subscriptions, vec![0]);
        assert_eq!(d.receivers, vec![NodeId(3)]);
        assert_eq!(d.cost, 3.0);
        assert_eq!(d.edges_traversed, 3);
        // Event matching only the local subscription never leaves.
        let d = net.deliver(NodeId(0), &Point::new(vec![25.0]));
        assert_eq!(d.receivers, vec![NodeId(0)]);
        assert_eq!(d.cost, 0.0);
        // Event matching nothing costs nothing.
        let d = net.deliver(NodeId(1), &Point::new(vec![15.0]));
        assert!(d.receivers.is_empty());
        assert_eq!(d.cost, 0.0);
    }

    #[test]
    fn publisher_in_the_middle_forks_both_ways() {
        let g = path4();
        let subs = vec![(NodeId(0), rect1(0.0, 10.0)), (NodeId(3), rect1(0.0, 10.0))];
        let net = BrokerNetwork::build(&g, &subs);
        let d = net.deliver(NodeId(1), &Point::new(vec![5.0]));
        assert_eq!(d.receivers, vec![NodeId(0), NodeId(3)]);
        assert_eq!(d.cost, 3.0); // 1 left + 2 right
    }

    #[test]
    fn matches_are_complete_and_exact_on_random_workloads() {
        let mut rng = StdRng::seed_from_u64(7);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let subs: Vec<(NodeId, Rect)> = (0..200)
            .map(|_| {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                (node, rect1(a.min(b), a.max(b)))
            })
            .collect();
        let net = BrokerNetwork::build(topo.graph(), &subs);
        for _ in 0..50 {
            let publisher = nodes[rng.gen_range(0..nodes.len())];
            let event = Point::new(vec![rng.gen_range(0.0..20.0)]);
            let d = net.deliver(publisher, &event);
            // Completeness + exactness against brute force.
            let expect: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, (_, r))| r.contains(&event))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(d.matched_subscriptions, expect);
            let mut expect_nodes: Vec<NodeId> = expect.iter().map(|&i| subs[i].0).collect();
            expect_nodes.sort_unstable();
            expect_nodes.dedup();
            assert_eq!(d.receivers, expect_nodes);
            // Cost bounded by flooding the tree.
            assert!(d.cost <= net.tree_cost() + 1e-9);
        }
    }

    #[test]
    fn subscribe_touches_every_link_and_delivers() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[]);
        let (id, prop) = net.subscribe(NodeId(3), rect1(0.0, 10.0));
        // A tree of 4 brokers has 3 links; each has one direction
        // pointing toward node 3.
        assert_eq!(prop.filters_touched, 3);
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.matched_subscriptions, vec![id]);
        assert_eq!(d.receivers, vec![NodeId(3)]);
        assert_eq!(d.cost, 3.0);
    }

    #[test]
    fn unsubscribe_stops_forwarding() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.cost, 3.0);
        let prop = net.unsubscribe(0);
        assert_eq!(prop.filters_touched, 0); // lazy tombstoning
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert!(d.matched_subscriptions.is_empty());
        // Forwarding is suppressed by the liveness check even though
        // the filters still contain the tombstoned entry.
        assert_eq!(d.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_unsubscribe_panics() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[(NodeId(0), rect1(0.0, 1.0))]);
        net.unsubscribe(0);
        net.unsubscribe(0);
    }

    #[test]
    fn churn_preserves_exact_matching() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(13);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        // Start with a population, then churn: remove some, add some.
        let initial: Vec<(NodeId, Rect)> = (0..80)
            .map(|_| {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                (node, rect1(a.min(b), a.max(b)))
            })
            .collect();
        let mut net = BrokerNetwork::build(topo.graph(), &initial);
        let mut live: Vec<Option<(NodeId, Rect)>> = initial.iter().cloned().map(Some).collect();
        for _ in 0..30 {
            if rng.gen_bool(0.5) {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                let rect = rect1(a.min(b), a.max(b));
                let (id, _) = net.subscribe(node, rect.clone());
                assert_eq!(id, live.len());
                live.push(Some((node, rect)));
            } else {
                let candidates: Vec<usize> = live
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&id) = candidates.choose(&mut rng) {
                    net.unsubscribe(id);
                    live[id] = None;
                }
            }
        }
        // Exact matching against the live brute-force set.
        for _ in 0..30 {
            let publisher = nodes[rng.gen_range(0..nodes.len())];
            let event = Point::new(vec![rng.gen_range(0.0..20.0)]);
            let d = net.deliver(publisher, &event);
            let expect: Vec<usize> = live
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
                .filter(|(_, (_, r))| r.contains(&event))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(d.matched_subscriptions, expect);
        }
    }

    #[test]
    fn core_spt_tree_matches_identically_to_mst() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(19);
        let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let subs: Vec<(NodeId, Rect)> = (0..60)
            .map(|_| {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let a: f64 = rng.gen_range(0.0..20.0);
                let b: f64 = rng.gen_range(0.0..20.0);
                (node, rect1(a.min(b), a.max(b)))
            })
            .collect();
        let core = topo.transit_nodes(0)[0];
        let mst = BrokerNetwork::build_with_tree(topo.graph(), &subs, TreeKind::Mst);
        let cbt = BrokerNetwork::build_with_tree(topo.graph(), &subs, TreeKind::CoreSpt(core));
        for trial in 0..20 {
            let publisher = nodes[(trial * 7) % nodes.len()];
            let event = Point::new(vec![rng.gen_range(0.0..20.0)]);
            let a = mst.deliver(publisher, &event);
            let b = cbt.deliver(publisher, &event);
            // Identical matching semantics; possibly different costs
            // (different trees).
            assert_eq!(a.matched_subscriptions, b.matched_subscriptions);
            assert_eq!(a.receivers, b.receivers);
        }
        // The core-rooted tree is a shortest-path tree: its total cost
        // is at least the MST's by minimality of the MST.
        assert!(cbt.tree_cost() >= mst.tree_cost() - 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_out_of_range_panics() {
        let g = path4();
        let _ = BrokerNetwork::build_with_tree(&g, &[], TreeKind::CoreSpt(NodeId(99)));
    }

    #[test]
    fn state_size_counts_filter_entries() {
        let g = path4();
        // One subscription at node 3: behind-sets of the three directed
        // links pointing toward 3 contain it → 3 entries.
        let net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        let st = net.state_size();
        assert_eq!(st.total_filter_entries, 3);
        assert_eq!(st.max_link_entries, 1);
        // Empty network: zero state.
        let empty = BrokerNetwork::build(&g, &[]);
        assert_eq!(empty.state_size().total_filter_entries, 0);
    }

    #[test]
    fn empty_subscription_set() {
        let g = path4();
        let net = BrokerNetwork::build(&g, &[]);
        assert_eq!(net.num_subscriptions(), 0);
        let d = net.deliver(NodeId(2), &Point::new(vec![1.0]));
        assert!(d.matched_subscriptions.is_empty());
        assert_eq!(d.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let g = Graph::with_nodes(2);
        let _ = BrokerNetwork::build(&g, &[]);
    }

    use netsim::{DegradedView, EdgeId, Fault, FaultSchedule};

    /// Ring 0-1-2-3-0 with a costly chord 1-3.
    fn ring_with_chord() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap(); // e0
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap(); // e1
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap(); // e2
        g.add_edge(NodeId(3), NodeId(0), 4.0).unwrap(); // e3
        g.add_edge(NodeId(1), NodeId(3), 2.5).unwrap(); // e4
        g
    }

    #[test]
    fn repair_grafts_orphans_back() {
        let g = ring_with_chord();
        // MST = {e0, e1, e2}; subscription at node 3.
        let mut net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        assert_eq!(net.deliver(NodeId(0), &Point::new(vec![5.0])).cost, 3.0);
        // Kill tree edge e2 (2-3): node 3 is orphaned; the cheapest
        // surviving path back is the chord 1-3 (2.5) vs 0-3 (4.0).
        let view = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(2)))
            .view_at(&g, 0);
        let report = net.repair(&g, &view);
        assert_eq!(report.tree_edges_lost, 1);
        assert_eq!(report.reattached_components, 1);
        assert_eq!(report.grafted_edges, 1);
        assert!((report.repair_cost - 2.5).abs() < 1e-9);
        assert_eq!(report.stranded_brokers, 0);
        assert_eq!(report.dropped_subscriptions, 0);
        // Delivery flows over the repaired tree: 0→1 (1.0) + 1→3 (2.5).
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.receivers, vec![NodeId(3)]);
        assert!((d.cost - 3.5).abs() < 1e-9);
    }

    #[test]
    fn repair_strands_partitioned_brokers() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        // The path has no redundancy: killing 1-2 partitions {0,1} from
        // {2,3} and no repair is possible.
        let view = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(1)))
            .view_at(&g, 0);
        let report = net.repair(&g, &view);
        assert_eq!(report.tree_edges_lost, 1);
        assert_eq!(report.reattached_components, 0);
        assert_eq!(report.stranded_brokers, 2);
        // The subscriber is unreachable from the far side but still
        // reachable within its own fragment.
        assert!(net
            .deliver(NodeId(0), &Point::new(vec![5.0]))
            .receivers
            .is_empty());
        let d = net.deliver(NodeId(2), &Point::new(vec![5.0]));
        assert_eq!(d.receivers, vec![NodeId(3)]);
        assert_eq!(d.cost, 1.0);
    }

    #[test]
    fn repair_drops_subscriptions_of_crashed_brokers() {
        let g = ring_with_chord();
        let mut net = BrokerNetwork::build(
            &g,
            &[(NodeId(2), rect1(0.0, 10.0)), (NodeId(3), rect1(0.0, 10.0))],
        );
        let view = FaultSchedule::new(1)
            .with(0, Fault::NodeCrash(NodeId(2)))
            .view_at(&g, 0);
        let report = net.repair(&g, &view);
        // Node 2's crash kills tree edges e1 (1-2) and e2 (2-3) and its
        // subscription; node 3 grafts back over the chord.
        assert_eq!(report.tree_edges_lost, 2);
        assert_eq!(report.dropped_subscriptions, 1);
        assert_eq!(report.reattached_components, 1);
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert_eq!(d.matched_subscriptions, vec![1]);
        assert_eq!(d.receivers, vec![NodeId(3)]);
    }

    #[test]
    fn repair_refreshes_degraded_link_costs() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[(NodeId(3), rect1(0.0, 10.0))]);
        let view = FaultSchedule::new(1)
            .with(
                0,
                Fault::LinkDegrade {
                    edge: EdgeId(0),
                    factor: 3.0,
                },
            )
            .view_at(&g, 0);
        let report = net.repair(&g, &view);
        assert_eq!(report.tree_edges_lost, 0);
        assert_eq!(report.grafted_edges, 0);
        // Delivery now pays the inflated cost on the congested hop.
        let d = net.deliver(NodeId(0), &Point::new(vec![5.0]));
        assert!((d.cost - (3.0 + 1.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn repair_under_healthy_view_is_a_no_op() {
        let g = ring_with_chord();
        let subs = vec![(NodeId(2), rect1(0.0, 10.0)), (NodeId(0), rect1(5.0, 15.0))];
        let mut net = BrokerNetwork::build(&g, &subs);
        let before = net.deliver(NodeId(1), &Point::new(vec![7.0]));
        let report = net.repair(&g, &DegradedView::healthy(&g));
        assert_eq!(report.tree_edges_lost, 0);
        assert_eq!(report.grafted_edges, 0);
        assert_eq!(report.repair_cost, 0.0);
        let after = net.deliver(NodeId(1), &Point::new(vec![7.0]));
        assert_eq!(before, after);
    }

    #[test]
    fn subscribe_after_repair_respects_the_forest() {
        let g = path4();
        let mut net = BrokerNetwork::build(&g, &[]);
        let view = FaultSchedule::new(1)
            .with(0, Fault::LinkDown(EdgeId(1)))
            .view_at(&g, 0);
        net.repair(&g, &view);
        // Subscribing on the far fragment touches only that fragment's
        // single link, and events do not cross the partition.
        let (id, prop) = net.subscribe(NodeId(3), rect1(0.0, 10.0));
        assert_eq!(prop.filters_touched, 1);
        assert!(net
            .deliver(NodeId(0), &Point::new(vec![5.0]))
            .matched_subscriptions
            .is_empty());
        let d = net.deliver(NodeId(2), &Point::new(vec![5.0]));
        assert_eq!(d.matched_subscriptions, vec![id]);
    }
}
