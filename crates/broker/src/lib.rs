//! Hop-by-hop content-based routing over a broker tree.
//!
//! Section 6 (item 6) of the paper describes the alternative to
//! centralized matching used by several Gryphon papers: "each
//! intermediate node knows about the preferences of its neighbors, and
//! matches each event against its specific data structures to find
//! those neighbors to which the event must be forwarded next."
//!
//! This crate implements that mechanism so the two architectures can
//! be compared on the same workloads:
//!
//! * brokers are the nodes of a spanning tree of the network (the
//!   minimum spanning tree by default — any tree works);
//! * each broker stores, per tree neighbor, a spatial index over the
//!   subscription rectangles registered *behind* that neighbor;
//! * a published event starts at its publisher and is forwarded across
//!   exactly those tree edges whose behind-set matches the event.
//!
//! Delivery cost is the sum of traversed edge costs — directly
//! comparable with the unicast / multicast numbers of the main
//! evaluation. The paper notes the operational drawback this crate
//! also exhibits: subscription changes must propagate along the whole
//! tree (`BrokerNetwork::build` is a global operation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod routing_tree;

pub use routing_tree::{
    BrokerDelivery, BrokerNetwork, BrokerState, Propagation, RepairReport, TreeKind,
};
