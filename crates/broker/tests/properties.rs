//! Property tests of the broker overlay: exact matching and sane cost
//! bounds on arbitrary topologies, subscription placements and trees.

use broker::{BrokerNetwork, TreeKind};
use geometry::{Interval, Point, Rect};
use netsim::{FaultModel, FaultSchedule, NodeId, Topology, TransitStubParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_params() -> TransitStubParams {
    TransitStubParams {
        transit_blocks: 2,
        transit_nodes_per_block: 2,
        stubs_per_transit: 2,
        nodes_per_stub: 3,
        ..Default::default()
    }
}

/// Deterministically derive a topology + subscriptions from a seed.
fn scenario(seed: u64, subs: usize) -> (Topology, Vec<(NodeId, Rect)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = Topology::generate(&small_params(), &mut rng);
    let nodes: Vec<NodeId> = topo.stub_nodes().collect();
    let subs: Vec<(NodeId, Rect)> = (0..subs)
        .map(|_| {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let a: f64 = rng.gen_range(0.0..20.0);
            let b: f64 = rng.gen_range(0.0..20.0);
            (node, Rect::new(vec![Interval::from_unordered(a, b)]))
        })
        .collect();
    (topo, subs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn delivery_is_exact_on_both_tree_kinds(
        seed in 0u64..300,
        nsubs in 1usize..30,
        x in 0.0..20.0f64,
        pub_pick in 0usize..100,
    ) {
        let (topo, subs) = scenario(seed, nsubs);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        let publisher = nodes[pub_pick % nodes.len()];
        let event = Point::new(vec![x]);
        let expect: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, (_, r))| r.contains(&event))
            .map(|(i, _)| i)
            .collect();
        for kind in [TreeKind::Mst, TreeKind::CoreSpt(topo.transit_nodes(0)[0])] {
            let net = BrokerNetwork::build_with_tree(topo.graph(), &subs, kind);
            let d = net.deliver(publisher, &event);
            prop_assert_eq!(&d.matched_subscriptions, &expect, "{:?}", kind);
            // Cost bounded by flooding the whole tree; zero when no
            // remote receiver exists.
            prop_assert!(d.cost <= net.tree_cost() + 1e-9);
            let all_local = expect.iter().all(|&i| subs[i].0 == publisher);
            if expect.is_empty() || all_local {
                prop_assert_eq!(d.cost, 0.0, "{:?}", kind);
            }
        }
    }

    #[test]
    fn subscribe_then_deliver_equals_build_from_scratch(
        seed in 0u64..300,
        nsubs in 1usize..20,
        x in 0.0..20.0f64,
    ) {
        let (topo, subs) = scenario(seed, nsubs);
        let nodes: Vec<NodeId> = topo.stub_nodes().collect();
        // Build with all-but-one, then subscribe the last dynamically.
        let (last, rest) = subs.split_last().unwrap();
        let mut incremental = BrokerNetwork::build(topo.graph(), rest);
        let (id, prop_cost) = incremental.subscribe(last.0, last.1.clone());
        prop_assert_eq!(id, rest.len());
        // A tree over n brokers has n-1 links; each has exactly one
        // direction pointing toward the new home.
        prop_assert_eq!(prop_cost.filters_touched, topo.num_nodes() - 1);
        let from_scratch = BrokerNetwork::build(topo.graph(), &subs);
        let event = Point::new(vec![x]);
        let publisher = nodes[0];
        prop_assert_eq!(
            incremental.deliver(publisher, &event),
            from_scratch.deliver(publisher, &event)
        );
    }

    #[test]
    fn repaired_tree_delivers_to_everyone_reachable(
        seed in 0u64..200,
        nsubs in 1usize..25,
        epochs in 1usize..4,
        x in 0.0..20.0f64,
        pub_pick in 0usize..100,
    ) {
        let (topo, subs) = scenario(seed, nsubs);
        let g = topo.graph();
        let model = FaultModel {
            epochs,
            link_fail: 0.15,
            node_crash: 0.1,
            degrade: 0.1,
            ..FaultModel::default()
        };
        let schedule = FaultSchedule::random(g, &model, seed ^ 0xb40c);
        let view = schedule.view_at(g, schedule.num_epochs() - 1);
        let mut net = BrokerNetwork::build(g, &subs);
        let report = net.repair(g, &view);
        prop_assert!(report.repair_cost >= 0.0);
        prop_assert!(report.repair_cost.is_finite());

        // Live-graph connectivity from the primary seed (the lowest-id
        // live broker) — everything in this set was grafted into the
        // primary tree.
        let live_graph = view.live_graph(g);
        let primary_seed = match g.nodes().find(|&u| view.node_live(u)) {
            Some(u) => u,
            None => return Ok(()),
        };
        let mut in_primary = vec![false; g.num_nodes()];
        let mut stack = vec![primary_seed];
        in_primary[primary_seed.index()] = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in live_graph.neighbors(u) {
                if !in_primary[v.index()] {
                    in_primary[v.index()] = true;
                    stack.push(v);
                }
            }
        }

        let publisher = nodes_of(&topo)[pub_pick % topo.num_nodes()];
        let event = Point::new(vec![x]);
        let d = net.deliver(publisher, &event);
        // Soundness: only live, matching subscriptions on live brokers.
        for &i in &d.matched_subscriptions {
            prop_assert!(subs[i].1.contains(&event));
            prop_assert!(view.node_live(subs[i].0), "delivered to crashed broker");
        }
        for &r in &d.receivers {
            prop_assert!(view.node_live(r));
        }
        // Completeness within the primary component: a live matching
        // subscription whose home shares the primary component with the
        // publisher must be delivered.
        if view.node_live(publisher) && in_primary[publisher.index()] {
            for (i, (home, rect)) in subs.iter().enumerate() {
                if view.node_live(*home) && in_primary[home.index()] && rect.contains(&event) {
                    prop_assert!(
                        d.matched_subscriptions.contains(&i),
                        "missed reachable subscription {i}"
                    );
                }
            }
        }
        // Costs stay finite and bounded by flooding the repaired forest.
        prop_assert!(d.cost.is_finite());
        prop_assert!(d.cost <= net.tree_cost() + 1e-9);
    }
}

fn nodes_of(topo: &Topology) -> Vec<NodeId> {
    topo.graph().nodes().collect()
}
