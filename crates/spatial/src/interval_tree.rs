//! A static centered interval tree: one-dimensional stabbing queries.
//!
//! The building block of the counting matcher (the per-attribute
//! predicate index used by the counting algorithms of the matching
//! literature the paper builds on — Aguilera et al. [2], Fabret et
//! al. [7]). Given a point `x`, returns every interval `(lo, hi]`
//! with `lo < x <= hi` in `O(log n + hits)`.

use geometry::Interval;

/// One node of the centered tree.
#[derive(Debug, Clone)]
struct Node<T> {
    center: f64,
    /// Intervals containing `center`, sorted by increasing `lo`.
    by_lo: Vec<(Interval, T)>,
    /// The same intervals, as indexes into `by_lo` sorted by
    /// decreasing `hi`.
    by_hi_desc: Vec<usize>,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

/// A static interval tree over half-open intervals.
///
/// # Examples
///
/// ```
/// use geometry::Interval;
/// use spatial::IntervalTree;
///
/// let tree = IntervalTree::build(vec![
///     (Interval::new(0.0, 10.0)?, 'a'),
///     (Interval::new(5.0, 15.0)?, 'b'),
///     (Interval::greater_than(12.0), 'c'),
/// ]);
/// let mut hits: Vec<char> = tree.stab(7.0).into_iter().copied().collect();
/// hits.sort();
/// assert_eq!(hits, vec!['a', 'b']);
/// assert_eq!(tree.stab(20.0), vec![&'c']);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IntervalTree<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
}

const BIG: f64 = 1e18;

fn finite(x: f64) -> f64 {
    x.clamp(-BIG, BIG)
}

impl<T> IntervalTree<T> {
    /// Builds the tree; empty intervals are dropped.
    pub fn build(items: Vec<(Interval, T)>) -> Self {
        let items: Vec<(Interval, T)> =
            items.into_iter().filter(|(iv, _)| !iv.is_empty()).collect();
        let len = items.len();
        IntervalTree {
            root: build_node(items),
            len,
        }
    }

    /// Number of stored (non-empty) intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All values whose interval contains `x` (`lo < x <= hi`).
    pub fn stab(&self, x: f64) -> Vec<&T> {
        let mut out = Vec::new();
        self.stab_with(x, |v| out.push(v));
        out
    }

    /// Visitor-style stabbing: calls `visit` on every value whose
    /// interval contains `x`, in the same order [`stab`](Self::stab)
    /// returns them, without allocating a result vector.
    pub fn stab_with<'a>(&'a self, x: f64, mut visit: impl FnMut(&'a T)) {
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if x <= n.center {
                // Containing intervals here must have lo < x; walk the
                // lo-ascending list until lo >= x.
                for (iv, v) in &n.by_lo {
                    if iv.lo() >= x {
                        break;
                    }
                    // lo < x <= center <= hi ⇒ contained (hi >= center
                    // by construction), except x == center needs the
                    // usual check for hi.
                    if iv.contains(x) {
                        visit(v);
                    }
                }
                node = n.left.as_deref();
            } else {
                // x > center: containing intervals here must have
                // hi >= x; walk the hi-descending list until hi < x.
                for &i in &n.by_hi_desc {
                    let (iv, v) = &n.by_lo[i];
                    if iv.hi() < x {
                        break;
                    }
                    if iv.contains(x) {
                        visit(v);
                    }
                }
                node = n.right.as_deref();
            }
        }
    }
}

fn build_node<T>(items: Vec<(Interval, T)>) -> Option<Box<Node<T>>> {
    if items.is_empty() {
        return None;
    }
    // Center: median of clamped midpoints.
    let mut mids: Vec<f64> = items
        .iter()
        .map(|(iv, _)| (finite(iv.lo()) + finite(iv.hi())) / 2.0)
        .collect();
    mids.sort_by(|a, b| a.partial_cmp(b).expect("clamped midpoints are never NaN"));
    let center = mids[mids.len() / 2];

    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (iv, v) in items {
        if iv.hi() < center {
            left.push((iv, v));
        } else if iv.lo() >= center {
            right.push((iv, v));
        } else {
            // lo < center <= hi: contains the center point.
            here.push((iv, v));
        }
    }
    // Degenerate split: everything identical / centered — keep all here
    // as a flat list (stab degrades to a scan of this node only).
    if here.is_empty() && (left.is_empty() || right.is_empty()) {
        here = if left.is_empty() {
            std::mem::take(&mut right)
        } else {
            std::mem::take(&mut left)
        };
    }
    here.sort_by(|a, b| {
        a.0.lo()
            .partial_cmp(&b.0.lo())
            .expect("interval bounds are never NaN")
    });
    let mut by_hi_desc: Vec<usize> = (0..here.len()).collect();
    by_hi_desc.sort_by(|&a, &b| {
        here[b]
            .0
            .hi()
            .partial_cmp(&here[a].0.hi())
            .expect("interval bounds are never NaN")
    });
    Some(Box::new(Node {
        center,
        by_lo: here,
        by_hi_desc,
        left: build_node(left),
        right: build_node(right),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn empty_tree() {
        let tree: IntervalTree<u8> = IntervalTree::build(vec![]);
        assert!(tree.is_empty());
        assert!(tree.stab(0.0).is_empty());
    }

    #[test]
    fn half_open_boundaries() {
        let tree = IntervalTree::build(vec![(Interval::new(0.0, 10.0).unwrap(), 'a')]);
        assert!(tree.stab(0.0).is_empty()); // open left
        assert_eq!(tree.stab(10.0), vec![&'a']); // closed right
        assert!(tree.stab(10.5).is_empty());
    }

    #[test]
    fn unbounded_intervals() {
        let tree = IntervalTree::build(vec![
            (Interval::all(), 0),
            (Interval::greater_than(5.0), 1),
            (Interval::at_most(3.0), 2),
        ]);
        let mut hits: Vec<i32> = tree.stab(1.0).into_iter().copied().collect();
        hits.sort();
        assert_eq!(hits, vec![0, 2]);
        let mut hits: Vec<i32> = tree.stab(100.0).into_iter().copied().collect();
        hits.sort();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn empty_intervals_are_dropped() {
        let tree = IntervalTree::build(vec![
            (Interval::new(2.0, 2.0).unwrap(), 'x'),
            (Interval::new(0.0, 5.0).unwrap(), 'y'),
        ]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.stab(2.0), vec![&'y']);
    }

    #[test]
    fn identical_intervals() {
        let items: Vec<(Interval, usize)> = (0..50)
            .map(|i| (Interval::new(0.0, 1.0).unwrap(), i))
            .collect();
        let tree = IntervalTree::build(items);
        assert_eq!(tree.stab(0.5).len(), 50);
        assert!(tree.stab(1.5).is_empty());
    }

    #[test]
    fn agrees_with_brute_force_on_random_intervals() {
        let mut rng = StdRng::seed_from_u64(31);
        let intervals: Vec<Interval> = (0..500)
            .map(|_| {
                let choice: f64 = rng.gen();
                if choice < 0.1 {
                    Interval::all()
                } else if choice < 0.2 {
                    Interval::greater_than(rng.gen_range(0.0..50.0))
                } else if choice < 0.3 {
                    Interval::at_most(rng.gen_range(0.0..50.0))
                } else {
                    let a = rng.gen_range(0.0..50.0);
                    let b = rng.gen_range(0.0..50.0);
                    Interval::from_unordered(a, b)
                }
            })
            .collect();
        let tree = IntervalTree::build(intervals.iter().copied().zip(0..).collect());
        for _ in 0..500 {
            let x: f64 = rng.gen_range(-5.0..55.0);
            let mut got: Vec<usize> = tree.stab(x).into_iter().copied().collect();
            got.sort();
            let expect: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains(x))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expect, "x = {x}");
        }
    }

    #[test]
    fn stab_with_visits_exactly_the_stab_results_in_order() {
        let mut rng = StdRng::seed_from_u64(77);
        let items: Vec<(Interval, usize)> = (0..300)
            .map(|i| {
                let a = rng.gen_range(0.0..40.0);
                let b = rng.gen_range(0.0..40.0);
                (Interval::from_unordered(a, b), i)
            })
            .collect();
        let tree = IntervalTree::build(items);
        for _ in 0..300 {
            let x: f64 = rng.gen_range(-2.0..42.0);
            let mut visited: Vec<usize> = Vec::new();
            tree.stab_with(x, |&v| visited.push(v));
            let listed: Vec<usize> = tree.stab(x).into_iter().copied().collect();
            assert_eq!(visited, listed, "x = {x}");
        }
    }
}
