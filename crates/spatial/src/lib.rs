//! Spatial indexing for event matching: an R-tree over (possibly
//! unbounded) axis-aligned rectangles answering point-stabbing queries —
//! the data structure behind the No-Loss matcher (the paper names the
//! R*-tree and S-tree for this role; see `DESIGN.md` for the
//! substitution notes).
//!
//! # Example
//!
//! ```
//! use geometry::{Interval, Point, Rect};
//! use spatial::RTree;
//!
//! let subs = vec![
//!     (Rect::new(vec![Interval::new(0.0, 10.0)?]), "cheap stocks"),
//!     (Rect::new(vec![Interval::greater_than(9.0)]), "expensive stocks"),
//! ];
//! let tree = RTree::bulk_load(1, subs);
//! let hits = tree.stab(&Point::new(vec![9.5]));
//! assert_eq!(hits.len(), 2);
//! # Ok::<(), geometry::IntervalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval_tree;
mod rtree;
mod stree;

pub use interval_tree::IntervalTree;
pub use rtree::RTree;
pub use stree::STree;
