//! A dynamic R-tree over axis-aligned (possibly unbounded) rectangles.
//!
//! The paper's matching stage searches "among aligned rectangles in event
//! space Ω for the rectangles that contain a given point ω", naming the
//! R*-tree [5] and S-tree [1] as suitable indexes. This module is the
//! repo's substitute: a classic R-tree with quadratic node splits and an
//! STR-style bulk loader. Query semantics are identical to an R*-tree;
//! only the balancing constants differ (see `DESIGN.md`).
//!
//! Unbounded rectangle extents (don't-care predicates) are supported: all
//! geometric *predicates* use exact interval arithmetic, while the
//! *heuristics* (area enlargement) clamp infinities to a large finite
//! sentinel so arithmetic never produces NaN.

use geometry::{Point, Rect};

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries assigned to each side of a split.
const MIN_ENTRIES: usize = 3;
/// Finite sentinel used in place of ±∞ in area computations.
const BIG: f64 = 1e18;

fn finite(x: f64) -> f64 {
    x.clamp(-BIG, BIG)
}

/// Area of the rectangle with infinities clamped; monotone in extent, so
/// usable as a split / subtree-choice heuristic even for unbounded rects.
fn clamped_area(r: &Rect) -> f64 {
    r.intervals()
        .iter()
        .map(|iv| finite(iv.hi()) - finite(iv.lo()))
        .fold(1.0, |acc, len| acc * len.clamp(0.0, BIG))
}

/// Growth of `clamped_area` when `r` is enlarged to also cover `add`.
fn enlargement(r: &Rect, add: &Rect) -> f64 {
    clamped_area(&r.hull(add)) - clamped_area(r)
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Rect, T)>),
    Inner(Vec<(Rect, Node<T>)>),
}

impl<T> Node<T> {
    fn mbr(&self) -> Option<Rect> {
        let hull = |mut it: Box<dyn Iterator<Item = &Rect> + '_>| -> Option<Rect> {
            let first = it.next()?.clone();
            Some(it.fold(first, |acc, r| acc.hull(r)))
        };
        match self {
            Node::Leaf(es) => hull(Box::new(es.iter().map(|(r, _)| r))),
            Node::Inner(es) => hull(Box::new(es.iter().map(|(r, _)| r))),
        }
    }
}

/// An R-tree mapping rectangles to values, answering point-stabbing and
/// rectangle-intersection queries.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
/// use spatial::RTree;
///
/// let mut tree = RTree::new(2);
/// tree.insert(
///     Rect::new(vec![Interval::new(0.0, 5.0)?, Interval::all()]),
///     "low-x",
/// );
/// tree.insert(
///     Rect::new(vec![Interval::new(4.0, 9.0)?, Interval::all()]),
///     "mid-x",
/// );
/// let hits = tree.stab(&Point::new(vec![4.5, 100.0]));
/// assert_eq!(hits.len(), 2);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T> {
    dim: usize,
    root: Node<T>,
    len: usize,
}

impl<T> RTree<T> {
    /// Creates an empty tree over `dim`-dimensional rectangles.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        RTree {
            dim,
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing: entries are
    /// sorted by their (clamped) center along dimension 0, tiled into
    /// vertical slabs, each slab sorted along dimension 1, and so on.
    ///
    /// Much better node overlap than repeated insertion for static data
    /// (the clustering pipeline builds its index once).
    ///
    /// # Panics
    ///
    /// Panics if any rectangle's dimension differs from `dim` or
    /// `dim == 0`.
    pub fn bulk_load(dim: usize, items: Vec<(Rect, T)>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        for (r, _) in &items {
            assert_eq!(r.dim(), dim, "rectangle dimension mismatch");
        }
        let len = items.len();
        if len == 0 {
            return RTree::new(dim);
        }
        let leaves = str_pack_leaves(dim, items);
        let mut level: Vec<Node<T>> = leaves;
        while level.len() > 1 {
            level = pack_inner_level(level);
        }
        RTree {
            dim,
            root: level.pop().expect("non-empty level"),
            len,
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts a rectangle/value pair.
    ///
    /// # Panics
    ///
    /// Panics if `rect.dim() != self.dim()`.
    pub fn insert(&mut self, rect: Rect, value: T) {
        assert_eq!(rect.dim(), self.dim, "rectangle dimension mismatch");
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = insert_rec(&mut self.root, rect, value) {
            // Root split: grow the tree by one level.
            self.root = Node::Inner(vec![(r1, n1), (r2, n2)]);
        }
    }

    /// All values whose rectangle contains the point, in insertion-
    /// independent (tree) order.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.dim()`.
    pub fn stab(&self, p: &Point) -> Vec<&T> {
        let mut out = Vec::new();
        self.stab_with(p, |v| out.push(v));
        out
    }

    /// Visits every value whose rectangle contains the point, in the
    /// same order as [`RTree::stab`], without allocating — the hot-loop
    /// variant for callers that reuse their own buffer.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.dim()`.
    pub fn stab_with<'a>(&'a self, p: &Point, mut visit: impl FnMut(&'a T)) {
        assert_eq!(p.dim(), self.dim, "point dimension mismatch");
        stab_visit(&self.root, p, &mut visit);
    }

    /// All `(rect, value)` pairs intersecting the query rectangle.
    ///
    /// # Panics
    ///
    /// Panics if `q.dim() != self.dim()`.
    pub fn query_intersecting(&self, q: &Rect) -> Vec<(&Rect, &T)> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let mut out = Vec::new();
        query_rec(&self.root, q, &mut out);
        out
    }
}

/// Recursive insert; returns `Some((mbr1, n1, mbr2, n2))` when the child
/// split and the caller must replace it by two nodes.
#[allow(clippy::type_complexity)]
fn insert_rec<T>(
    node: &mut Node<T>,
    rect: Rect,
    value: T,
) -> Option<(Rect, Node<T>, Rect, Node<T>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((rect, value));
            if entries.len() <= MAX_ENTRIES {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(entries));
            let (ra, rb) = (mbr_of(&a), mbr_of(&b));
            Some((ra, Node::Leaf(a), rb, Node::Leaf(b)))
        }
        Node::Inner(entries) => {
            // Choose the child needing least enlargement (ties: smaller
            // area).
            let mut best = 0usize;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, (r, _)) in entries.iter().enumerate() {
                let enl = enlargement(r, &rect);
                let area = clamped_area(r);
                if enl < best_enl || (enl == best_enl && area < best_area) {
                    best = i;
                    best_enl = enl;
                    best_area = area;
                }
            }
            let split = {
                let (r, child) = &mut entries[best];
                *r = r.hull(&rect);
                insert_rec(child, rect, value)
            };
            if let Some((r1, n1, r2, n2)) = split {
                entries.remove(best);
                entries.push((r1, n1));
                entries.push((r2, n2));
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split(std::mem::take(entries));
                    let (ra, rb) = (mbr_of(&a), mbr_of(&b));
                    return Some((ra, Node::Inner(a), rb, Node::Inner(b)));
                }
            }
            None
        }
    }
}

fn mbr_of<E>(entries: &[(Rect, E)]) -> Rect {
    let mut it = entries.iter().map(|(r, _)| r);
    let first = it.next().expect("split sides are non-empty").clone();
    it.fold(first, |acc, r| acc.hull(r))
}

/// The two sides produced by a node split.
type SplitSides<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then greedily assign remaining entries to the side preferring them
/// most, honoring the minimum fill.
fn quadratic_split<E>(mut entries: Vec<(Rect, E)>) -> SplitSides<E> {
    debug_assert!(entries.len() > MAX_ENTRIES);
    // Pick seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = clamped_area(&entries[i].0.hull(&entries[j].0))
                - clamped_area(&entries[i].0)
                - clamped_area(&entries[j].0);
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove seeds (larger index first to keep the other valid).
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let e_hi = entries.swap_remove(hi);
    let e_lo = entries.swap_remove(lo);
    let mut side_a = vec![e_lo];
    let mut side_b = vec![e_hi];
    // lint: allow(no-literal-index): both sides seeded with one entry above
    let mut mbr_a = side_a[0].0.clone();
    // lint: allow(no-literal-index): both sides seeded with one entry above
    let mut mbr_b = side_b[0].0.clone();
    while let Some(e) = entries.pop() {
        let remaining = entries.len();
        // Honor minimum fill.
        if side_a.len() + remaining + 1 == MIN_ENTRIES {
            mbr_a = mbr_a.hull(&e.0);
            side_a.push(e);
            continue;
        }
        if side_b.len() + remaining + 1 == MIN_ENTRIES {
            mbr_b = mbr_b.hull(&e.0);
            side_b.push(e);
            continue;
        }
        let grow_a = enlargement(&mbr_a, &e.0);
        let grow_b = enlargement(&mbr_b, &e.0);
        if grow_a < grow_b || (grow_a == grow_b && side_a.len() <= side_b.len()) {
            mbr_a = mbr_a.hull(&e.0);
            side_a.push(e);
        } else {
            mbr_b = mbr_b.hull(&e.0);
            side_b.push(e);
        }
    }
    (side_a, side_b)
}

fn stab_visit<'a, T>(node: &'a Node<T>, p: &Point, visit: &mut impl FnMut(&'a T)) {
    match node {
        Node::Leaf(entries) => {
            for (r, v) in entries {
                if r.contains(p) {
                    visit(v);
                }
            }
        }
        Node::Inner(entries) => {
            for (r, child) in entries {
                if r.contains(p) {
                    stab_visit(child, p, visit);
                }
            }
        }
    }
}

fn query_rec<'a, T>(node: &'a Node<T>, q: &Rect, out: &mut Vec<(&'a Rect, &'a T)>) {
    match node {
        Node::Leaf(entries) => {
            for (r, v) in entries {
                if r.intersects(q) {
                    out.push((r, v));
                }
            }
        }
        Node::Inner(entries) => {
            for (r, child) in entries {
                if r.intersects(q) {
                    query_rec(child, q, out);
                }
            }
        }
    }
}

/// Clamped center of a rectangle along dimension `d` (sort key for STR).
fn center_key(r: &Rect, d: usize) -> f64 {
    let iv = r.interval(d);
    (finite(iv.lo()) + finite(iv.hi())) / 2.0
}

/// STR leaf packing: recursively sort-and-tile along each dimension.
fn str_pack_leaves<T>(dim: usize, items: Vec<(Rect, T)>) -> Vec<Node<T>> {
    // Number of leaves needed.
    let n = items.len();
    let leaves = n.div_ceil(MAX_ENTRIES);
    let mut groups = vec![items];
    // Tile one dimension at a time.
    for d in 0..dim {
        if groups.len() >= leaves {
            break;
        }
        let remaining_dims = dim - d;
        let target_slabs_per_group = ((leaves as f64 / groups.len() as f64)
            .powf(1.0 / remaining_dims as f64))
        .ceil() as usize;
        let mut next = Vec::new();
        for mut g in groups {
            g.sort_by(|a, b| {
                center_key(&a.0, d)
                    .partial_cmp(&center_key(&b.0, d))
                    .expect("clamped keys are never NaN")
            });
            let slab = g.len().div_ceil(target_slabs_per_group.max(1)).max(1);
            while !g.is_empty() {
                let rest = g.split_off(slab.min(g.len()));
                next.push(g);
                g = rest;
            }
        }
        groups = next;
    }
    // Chop each final group into leaves of MAX_ENTRIES.
    let mut out = Vec::with_capacity(leaves);
    for mut g in groups {
        while !g.is_empty() {
            let rest = g.split_off(MAX_ENTRIES.min(g.len()));
            out.push(Node::Leaf(g));
            g = rest;
        }
    }
    out
}

/// Packs a level of nodes into parent nodes of `MAX_ENTRIES` fan-out.
fn pack_inner_level<T>(level: Vec<Node<T>>) -> Vec<Node<T>> {
    let mut out = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
    let mut batch: Vec<(Rect, Node<T>)> = Vec::with_capacity(MAX_ENTRIES);
    for node in level {
        let mbr = node.mbr().expect("packed nodes are non-empty");
        batch.push((mbr, node));
        if batch.len() == MAX_ENTRIES {
            out.push(Node::Inner(std::mem::take(&mut batch)));
        }
    }
    if !batch.is_empty() {
        out.push(Node::Inner(batch));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn rect2(a: (f64, f64), b: (f64, f64)) -> Rect {
        Rect::new(vec![
            Interval::new(a.0, a.1).unwrap(),
            Interval::new(b.0, b.1).unwrap(),
        ])
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new(2);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.stab(&Point::new(vec![0.0, 0.0])).is_empty());
    }

    #[test]
    fn stab_small() {
        let mut tree = RTree::new(1);
        tree.insert(rect1(0.0, 5.0), 'a');
        tree.insert(rect1(4.0, 9.0), 'b');
        tree.insert(rect1(10.0, 12.0), 'c');
        let mut hits: Vec<char> = tree
            .stab(&Point::new(vec![4.5]))
            .into_iter()
            .copied()
            .collect();
        hits.sort();
        assert_eq!(hits, vec!['a', 'b']);
        assert!(tree.stab(&Point::new(vec![9.5])).is_empty());
    }

    #[test]
    fn unbounded_rectangles() {
        let mut tree = RTree::new(2);
        tree.insert(
            Rect::new(vec![Interval::greater_than(5.0), Interval::all()]),
            1,
        );
        tree.insert(Rect::all(2), 2);
        let hits = tree.stab(&Point::new(vec![10.0, -1e6]));
        assert_eq!(hits.len(), 2);
        let hits = tree.stab(&Point::new(vec![3.0, 0.0]));
        assert_eq!(hits, vec![&2]);
    }

    #[test]
    fn many_inserts_trigger_splits_and_stay_correct() {
        let mut tree = RTree::new(2);
        let mut rects = Vec::new();
        for i in 0..100 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            let r = rect2((x, x + 1.5), (y, y + 1.5));
            rects.push(r.clone());
            tree.insert(r, i);
        }
        assert_eq!(tree.len(), 100);
        // Compare stabbing against brute force on a grid of probes.
        for px in 0..12 {
            for py in 0..12 {
                let p = Point::new(vec![px as f64 + 0.25, py as f64 + 0.25]);
                let mut expect: Vec<usize> = rects
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                let mut got: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
                expect.sort();
                got.sort();
                assert_eq!(got, expect, "probe ({px}, {py})");
            }
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1);
        let items: Vec<(Rect, usize)> = (0..500)
            .map(|i| {
                let cx = rng.gen_range(0.0..100.0);
                let cy = rng.gen_range(0.0..100.0);
                let w = rng.gen_range(0.5..10.0);
                let h = rng.gen_range(0.5..10.0);
                (rect2((cx, cx + w), (cy, cy + h)), i)
            })
            .collect();
        let rects: Vec<Rect> = items.iter().map(|(r, _)| r.clone()).collect();
        let tree = RTree::bulk_load(2, items);
        assert_eq!(tree.len(), 500);
        for _ in 0..200 {
            let p = Point::new(vec![rng.gen_range(0.0..110.0), rng.gen_range(0.0..110.0)]);
            let mut expect: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i)
                .collect();
            let mut got: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
            expect.sort();
            got.sort();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn query_intersecting_matches_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<(Rect, usize)> = (0..200)
            .map(|i| {
                let cx = rng.gen_range(0.0..50.0);
                let cy = rng.gen_range(0.0..50.0);
                (rect2((cx, cx + 3.0), (cy, cy + 3.0)), i)
            })
            .collect();
        let rects: Vec<Rect> = items.iter().map(|(r, _)| r.clone()).collect();
        let mut tree = RTree::new(2);
        for (r, v) in items {
            tree.insert(r, v);
        }
        for _ in 0..50 {
            let qx = rng.gen_range(0.0..50.0);
            let qy = rng.gen_range(0.0..50.0);
            let q = rect2((qx, qx + 5.0), (qy, qy + 5.0));
            let mut expect: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i)
                .collect();
            let mut got: Vec<usize> = tree
                .query_intersecting(&q)
                .into_iter()
                .map(|(_, v)| *v)
                .collect();
            expect.sort();
            got.sort();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let tree: RTree<u8> = RTree::bulk_load(3, vec![]);
        assert!(tree.is_empty());
        let tree = RTree::bulk_load(1, vec![(rect1(0.0, 1.0), 7u8)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.stab(&Point::new(vec![0.5])), vec![&7]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_wrong_dim_panics() {
        let mut tree = RTree::new(2);
        tree.insert(rect1(0.0, 1.0), 0);
    }
}
