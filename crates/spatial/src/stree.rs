//! An unbalanced binary partition tree over rectangles — the S-tree
//! alternative the paper cites ("the S-tree algorithm described in [1]
//! can be used instead" of the R*-tree).
//!
//! Each internal node splits the space by a hyperplane on one
//! dimension. Rectangles entirely on one side descend into the
//! corresponding child; rectangles *straddling* the hyperplane are
//! stored at the node itself. A point-stabbing query tests the node's
//! straddlers and recurses into exactly one child, giving logarithmic
//! descent on well-separated data. Unlike an R-tree there is no
//! overlap between sibling regions, at the cost of unbalanced
//! structure on skewed data (hence the name of the original paper:
//! *Using Unbalanced Trees for Indexing Multidimensional Objects*).

use geometry::{Point, Rect};

/// Straddler threshold: nodes with this many or fewer entries become
/// plain leaf lists.
const LEAF_SIZE: usize = 8;
/// Finite sentinel replacing ±∞ in split-value computation.
const BIG: f64 = 1e18;

fn finite(x: f64) -> f64 {
    x.clamp(-BIG, BIG)
}

#[derive(Debug, Clone)]
enum Node<T> {
    /// A small unsplit bucket.
    Leaf(Vec<(Rect, T)>),
    /// A split node: straddlers stored here, the rest partitioned.
    Split {
        dim: usize,
        at: f64,
        straddlers: Vec<(Rect, T)>,
        left: Box<Node<T>>,
        right: Box<Node<T>>,
    },
}

/// An S-tree: point-stabbing index over (possibly unbounded) aligned
/// rectangles with non-overlapping sibling regions.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
/// use spatial::STree;
///
/// let subs = vec![
///     (Rect::new(vec![Interval::new(0.0, 5.0)?]), 'a'),
///     (Rect::new(vec![Interval::new(4.0, 9.0)?]), 'b'),
/// ];
/// let tree = STree::build(1, subs);
/// let mut hits: Vec<char> = tree.stab(&Point::new(vec![4.5])).into_iter().copied().collect();
/// hits.sort();
/// assert_eq!(hits, vec!['a', 'b']);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct STree<T> {
    dim: usize,
    root: Node<T>,
    len: usize,
}

impl<T> STree<T> {
    /// Builds the tree from rectangle/value pairs.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or any rectangle's dimension differs.
    pub fn build(dim: usize, items: Vec<(Rect, T)>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        for (r, _) in &items {
            assert_eq!(r.dim(), dim, "rectangle dimension mismatch");
        }
        let len = items.len();
        let root = build_node(dim, items, 0, 0);
        STree { dim, root, len }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// All values whose rectangle contains `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.dim()`.
    pub fn stab(&self, p: &Point) -> Vec<&T> {
        let mut out = Vec::new();
        self.stab_with(p, |v| out.push(v));
        out
    }

    /// Visitor-style stabbing: calls `visit` on every value whose
    /// rectangle contains `p`, in the same order [`stab`](Self::stab)
    /// returns them, without allocating a result vector.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.dim()`.
    pub fn stab_with<'a>(&'a self, p: &Point, mut visit: impl FnMut(&'a T)) {
        assert_eq!(p.dim(), self.dim, "point dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(entries) => {
                    for (r, v) in entries {
                        if r.contains(p) {
                            visit(v);
                        }
                    }
                    return;
                }
                Node::Split {
                    dim,
                    at,
                    straddlers,
                    left,
                    right,
                } => {
                    for (r, v) in straddlers {
                        if r.contains(p) {
                            visit(v);
                        }
                    }
                    // Half-open semantics: the left side holds rects
                    // with hi <= at, which can only contain points with
                    // coordinate <= at.
                    node = if p[*dim] <= *at { left } else { right };
                }
            }
        }
    }

    /// Maximum depth (diagnostic: the tree is intentionally
    /// unbalanced on skewed data).
    pub fn depth(&self) -> usize {
        fn depth_of<T>(n: &Node<T>) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }
}

fn build_node<T>(dim: usize, items: Vec<(Rect, T)>, split_dim: usize, depth: usize) -> Node<T> {
    // Depth cap prevents pathological recursion when everything
    // straddles every candidate plane.
    if items.len() <= LEAF_SIZE || depth > 40 {
        return Node::Leaf(items);
    }
    // Split at the median center along the cycling dimension.
    let mut centers: Vec<f64> = items
        .iter()
        .map(|(r, _)| {
            let iv = r.interval(split_dim);
            (finite(iv.lo()) + finite(iv.hi())) / 2.0
        })
        .collect();
    centers.sort_by(|a, b| a.partial_cmp(b).expect("clamped centers are never NaN"));
    let at = centers[centers.len() / 2];

    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut straddlers = Vec::new();
    for (r, v) in items {
        let iv = r.interval(split_dim);
        if iv.hi() <= at {
            left.push((r, v));
        } else if iv.lo() >= at {
            right.push((r, v));
        } else {
            straddlers.push((r, v));
        }
    }
    // Degenerate split (everything straddles or lands on one side):
    // try the next dimension; give up into a leaf after a full cycle.
    if left.is_empty() && right.is_empty() {
        let next = (split_dim + 1) % dim;
        if next == 0 {
            let mut all = straddlers;
            all.extend(left);
            all.extend(right);
            return Node::Leaf(all);
        }
        return build_node(dim, straddlers, next, depth + 1);
    }
    let next = (split_dim + 1) % dim;
    Node::Split {
        dim: split_dim,
        at,
        straddlers,
        left: Box::new(build_node(dim, left, next, depth + 1)),
        right: Box::new(build_node(dim, right, next, depth + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    #[test]
    fn empty_and_small() {
        let tree: STree<u8> = STree::build(2, vec![]);
        assert!(tree.is_empty());
        assert!(tree.stab(&Point::new(vec![0.0, 0.0])).is_empty());
        let tree = STree::build(1, vec![(rect1(0.0, 1.0), 9u8)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.stab(&Point::new(vec![0.5])), vec![&9]);
    }

    #[test]
    fn boundary_points_respect_half_open_split() {
        // Many rects so the tree actually splits; probe exactly at a
        // likely split plane.
        let items: Vec<(Rect, usize)> = (0..40)
            .map(|i| (rect1(i as f64, i as f64 + 1.0), i))
            .collect();
        let tree = STree::build(1, items);
        for probe in 0..41 {
            let x = probe as f64 + 0.0; // integer boundaries
            let p = Point::new(vec![x]);
            let expect: Vec<usize> = (0..40)
                .filter(|&i| rect1(i as f64, i as f64 + 1.0).contains(&p))
                .collect();
            let mut got: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
            got.sort();
            assert_eq!(got, expect, "x = {x}");
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_rectangles() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<(Rect, usize)> = (0..400)
            .map(|i| {
                let r = Rect::new(
                    (0..3)
                        .map(|_| {
                            if rng.gen_bool(0.15) {
                                Interval::all()
                            } else {
                                let a = rng.gen_range(0.0..50.0);
                                let b = rng.gen_range(0.0..50.0);
                                Interval::from_unordered(a, b)
                            }
                        })
                        .collect(),
                );
                (r, i)
            })
            .collect();
        let rects: Vec<Rect> = items.iter().map(|(r, _)| r.clone()).collect();
        let tree = STree::build(3, items);
        for _ in 0..300 {
            let p = Point::new((0..3).map(|_| rng.gen_range(0.0..55.0)).collect());
            let expect: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i)
                .collect();
            let mut got: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
            got.sort();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn identical_rectangles_degenerate_gracefully() {
        let items: Vec<(Rect, usize)> = (0..100).map(|i| (rect1(0.0, 10.0), i)).collect();
        let tree = STree::build(1, items);
        assert_eq!(tree.stab(&Point::new(vec![5.0])).len(), 100);
        assert!(tree.stab(&Point::new(vec![15.0])).is_empty());
    }

    #[test]
    fn depth_grows_sublinearly_on_spread_data() {
        let items: Vec<(Rect, usize)> = (0..1000)
            .map(|i| (rect1(i as f64, i as f64 + 0.5), i))
            .collect();
        let tree = STree::build(1, items);
        assert!(tree.depth() < 40, "depth {}", tree.depth());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let tree = STree::build(2, vec![(Rect::all(2), 0u8)]);
        let _ = tree.stab(&Point::new(vec![0.0]));
    }

    #[test]
    fn stab_with_visits_exactly_the_stab_results_in_order() {
        let mut rng = StdRng::seed_from_u64(91);
        let items: Vec<(Rect, usize)> = (0..200)
            .map(|i| {
                let a = rng.gen_range(0.0..30.0);
                let b = rng.gen_range(0.0..30.0);
                (Rect::new(vec![Interval::from_unordered(a, b)]), i)
            })
            .collect();
        let tree = STree::build(1, items);
        for _ in 0..200 {
            let p = Point::new(vec![rng.gen_range(-1.0..31.0)]);
            let mut visited: Vec<usize> = Vec::new();
            tree.stab_with(&p, |&v| visited.push(v));
            let listed: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
            assert_eq!(visited, listed);
        }
    }
}
