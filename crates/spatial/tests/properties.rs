//! Property tests: both spatial indexes agree with brute force (and
//! hence with each other) on arbitrary rectangle populations.

use geometry::{Interval, Point, Rect};
use proptest::prelude::*;
use spatial::{RTree, STree};

fn interval_strategy() -> impl Strategy<Value = Interval> {
    prop_oneof![
        4 => (0.0..30.0f64, 0.0..30.0f64).prop_map(|(a, b)| Interval::from_unordered(a, b)),
        1 => (0.0..30.0f64).prop_map(Interval::greater_than),
        1 => (0.0..30.0f64).prop_map(Interval::at_most),
        1 => Just(Interval::all()),
    ]
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), 2).prop_map(Rect::new)
}

proptest! {
    #[test]
    fn rtree_stab_matches_brute_force(
        rects in prop::collection::vec(rect_strategy(), 0..40),
        probe in prop::collection::vec(0.0..32.0f64, 2),
    ) {
        let p = Point::new(probe);
        let items: Vec<(Rect, usize)> =
            rects.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load(2, items);
        let mut got: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
        got.sort();
        let expect: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn stree_stab_matches_brute_force(
        rects in prop::collection::vec(rect_strategy(), 0..40),
        probe in prop::collection::vec(0.0..32.0f64, 2),
    ) {
        let p = Point::new(probe);
        let items: Vec<(Rect, usize)> =
            rects.iter().cloned().zip(0..).collect();
        let tree = STree::build(2, items);
        let mut got: Vec<usize> = tree.stab(&p).into_iter().copied().collect();
        got.sort();
        let expect: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn incremental_rtree_equals_bulk_loaded(
        rects in prop::collection::vec(rect_strategy(), 0..40),
        probe in prop::collection::vec(0.0..32.0f64, 2),
    ) {
        let p = Point::new(probe);
        let bulk = RTree::bulk_load(2, rects.iter().cloned().zip(0..).collect());
        let mut incr = RTree::new(2);
        for (i, r) in rects.iter().enumerate() {
            incr.insert(r.clone(), i);
        }
        let mut a: Vec<usize> = bulk.stab(&p).into_iter().copied().collect();
        let mut b: Vec<usize> = incr.stab(&p).into_iter().copied().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn query_intersecting_is_symmetric_with_contains(
        rects in prop::collection::vec(rect_strategy(), 1..30),
        q in rect_strategy(),
    ) {
        let tree = RTree::bulk_load(2, rects.iter().cloned().zip(0..).collect());
        let got: Vec<usize> = tree
            .query_intersecting(&q)
            .into_iter()
            .map(|(_, &v)| v)
            .collect();
        for (i, r) in rects.iter().enumerate() {
            prop_assert_eq!(got.contains(&i), r.intersects(&q), "rect {}", i);
        }
    }
}
