//! Edge-case coverage for the spatial indexes.

use geometry::{Interval, Point, Rect};
use spatial::{IntervalTree, RTree, STree};

fn rect1(lo: f64, hi: f64) -> Rect {
    Rect::new(vec![Interval::new(lo, hi).unwrap()])
}

#[test]
fn rtree_all_unbounded_entries() {
    // Every entry is the whole space: heuristics must not NaN out.
    let items: Vec<(Rect, usize)> = (0..30).map(|i| (Rect::all(3), i)).collect();
    let tree = RTree::bulk_load(3, items.clone());
    assert_eq!(tree.stab(&Point::new(vec![0.0, 0.0, 0.0])).len(), 30);
    let mut incr = RTree::new(3);
    for (r, v) in items {
        incr.insert(r, v);
    }
    assert_eq!(incr.stab(&Point::new(vec![1e9, -1e9, 0.0])).len(), 30);
}

#[test]
fn rtree_query_on_empty_tree() {
    let tree: RTree<u8> = RTree::new(2);
    assert!(tree.query_intersecting(&Rect::all(2)).is_empty());
    assert!(tree.stab(&Point::new(vec![0.0, 0.0])).is_empty());
}

#[test]
fn rtree_point_like_rectangles() {
    // Degenerate-width (but non-empty) rectangles.
    let items: Vec<(Rect, usize)> = (0..50)
        .map(|i| {
            let x = i as f64;
            (rect1(x, x + 1e-9), i)
        })
        .collect();
    let tree = RTree::bulk_load(1, items);
    assert_eq!(tree.stab(&Point::new(vec![7.0 + 5e-10])), vec![&7]);
    assert!(tree.stab(&Point::new(vec![7.5])).is_empty());
}

#[test]
fn stree_all_identical_then_one_different() {
    let mut items: Vec<(Rect, usize)> = (0..40).map(|i| (rect1(0.0, 1.0), i)).collect();
    items.push((rect1(5.0, 6.0), 40));
    let tree = STree::build(1, items);
    assert_eq!(tree.stab(&Point::new(vec![0.5])).len(), 40);
    assert_eq!(tree.stab(&Point::new(vec![5.5])), vec![&40]);
}

#[test]
fn stree_unbounded_mixed_with_bounded() {
    let items = vec![
        (Rect::new(vec![Interval::all(), Interval::all()]), 0usize),
        (
            Rect::new(vec![Interval::greater_than(10.0), Interval::all()]),
            1,
        ),
        (
            Rect::new(vec![
                Interval::new(0.0, 5.0).unwrap(),
                Interval::at_most(3.0),
            ]),
            2,
        ),
    ];
    let tree = STree::build(2, items);
    let mut hits: Vec<usize> = tree
        .stab(&Point::new(vec![2.0, 1.0]))
        .into_iter()
        .copied()
        .collect();
    hits.sort();
    assert_eq!(hits, vec![0, 2]);
    let mut hits: Vec<usize> = tree
        .stab(&Point::new(vec![20.0, 100.0]))
        .into_iter()
        .copied()
        .collect();
    hits.sort();
    assert_eq!(hits, vec![0, 1]);
}

#[test]
fn interval_tree_nested_intervals() {
    // Russian-doll nesting: stabbing the core hits every layer.
    let items: Vec<(Interval, usize)> = (0..20)
        .map(|i| {
            let pad = i as f64;
            (Interval::new(0.0 - pad, 40.0 + pad).unwrap(), i)
        })
        .collect();
    let tree = IntervalTree::build(items);
    assert_eq!(tree.stab(20.0).len(), 20);
    // A point only the widest layers cover.
    assert_eq!(tree.stab(-10.0).len(), 9); // pads 11..=19 reach -10? (0-pad < -10 ⇔ pad > 10)
}

#[test]
fn interval_tree_disjoint_runs() {
    let items: Vec<(Interval, usize)> = (0..100)
        .map(|i| {
            (
                Interval::new(i as f64 * 2.0, i as f64 * 2.0 + 1.0).unwrap(),
                i,
            )
        })
        .collect();
    let tree = IntervalTree::build(items);
    // In a gap.
    assert!(tree.stab(1.5).is_empty());
    // Inside run 3: (6, 7].
    assert_eq!(tree.stab(6.5), vec![&3]);
    // Exactly on a closed upper bound.
    assert_eq!(tree.stab(7.0), vec![&3]);
    // Exactly on an open lower bound.
    assert!(tree.stab(6.0).is_empty());
}
