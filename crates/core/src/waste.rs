//! The expected-waste distance function (Section 4.1 of the paper).
//!
//! When two cells (or cell sets) `a` and `b` are combined into one
//! multicast group, every event published in `a` is also delivered to
//! the subscribers interested only in `b`, and vice versa. The expected
//! number of such unwanted deliveries is the clustering distance:
//!
//! `d(a, b) = p_p(a)·|s(b) \ s(a)| + p_p(b)·|s(a) \ s(b)|`
//!
//! (Members the two sides share cost nothing; only disagreement is
//! waste, weighted by how often each side's events fire.)
//!
//! Note: the paper's formula as printed pairs `p_p(a)` with
//! `|s(a) \ s(b)|`; the prose defines `d` as "the expected number of
//! messages sent to subscribers who are not interested in them", which
//! pairs each side's publication probability with the *other* side's
//! exclusive members — an event in `a` wastes deliveries on subscribers
//! who are only in `s(b)`. We implement the semantics (both variants are
//! symmetric and coincide when `p_p(a) = p_p(b)`).

use crate::membership::BitSet;

/// Expected waste of merging member sets `a` (publication mass `pa`)
/// and `b` (mass `pb`) into one multicast group.
///
/// # Panics
///
/// Panics if the two sets have different universes.
///
/// # Examples
///
/// ```
/// use pubsub_core::{expected_waste, BitSet};
///
/// let a = BitSet::from_members(10, [0, 1]);
/// let b = BitSet::from_members(10, [1, 2, 3]);
/// // Events in a (mass 0.5) waste on {2, 3}; events in b (mass 0.25)
/// // waste on {0}.
/// assert_eq!(expected_waste(0.5, &a, 0.25, &b), 0.5 * 2.0 + 0.25 * 1.0);
/// ```
pub fn expected_waste(pa: f64, a: &BitSet, pb: f64, b: &BitSet) -> f64 {
    let (only_a, only_b) = a.waste_counts(b);
    pa * only_b as f64 + pb * only_a as f64
}

/// Weighted expected waste: each member `i` of the exclusive sets
/// counts `weights[i]` deliveries. The aggregation layer clusters over
/// canonical classes, where class `i` stands for `weights[i]` concrete
/// subscribers; the weighted integer counts then equal the concrete
/// counts exactly, so this produces bit-for-bit the same `f64` as
/// [`expected_waste`] over the expanded memberships.
pub(crate) fn expected_waste_weighted(
    pa: f64,
    a: &BitSet,
    pb: f64,
    b: &BitSet,
    weights: &[u64],
) -> f64 {
    let (only_a, only_b) = a.weighted_waste_counts(b, weights);
    pa * only_b as f64 + pb * only_a as f64
}

/// Weighted expected waste over compressed mirrors: identical formula
/// and identical integer counts as [`expected_waste_weighted`] (pinned
/// by the `CompressedSet` oracle tests), evaluated on whichever
/// representation each side currently holds. The weighted distance
/// matrix streams the pool's compressed layout through this instead of
/// touching the dense words.
pub(crate) fn expected_waste_compressed_weighted(
    pa: f64,
    a: &crate::compressed::CompressedSet,
    pb: f64,
    b: &crate::compressed::CompressedSet,
    weights: &[u64],
) -> f64 {
    let (only_a, only_b) = a.weighted_waste_counts(b, weights);
    pa * only_b as f64 + pb * only_a as f64
}

/// The popularity rating `r(a) = p_p(a) · |s(a)|` used to rank
/// hyper-cells before truncation (Section 4.1, "Implementation Notes").
pub fn popularity(prob: f64, members: &BitSet) -> f64 {
    prob * members.count() as f64
}

/// Weighted popularity: `p_p(a) · Σ weights[i]` over the members —
/// equal to [`popularity`] over the expanded concrete membership.
pub(crate) fn popularity_weighted(prob: f64, members: &BitSet, weights: &[u64]) -> f64 {
    prob * members.weighted_count(weights) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_for_identical_membership() {
        let a = BitSet::from_members(20, [1, 5, 9]);
        let b = a.clone();
        assert_eq!(expected_waste(0.3, &a, 0.7, &b), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = BitSet::from_members(20, [1, 2]);
        let b = BitSet::from_members(20, [2, 3, 4]);
        assert_eq!(
            expected_waste(0.3, &a, 0.7, &b),
            expected_waste(0.7, &b, 0.3, &a)
        );
    }

    #[test]
    fn non_negative_and_grows_with_disagreement() {
        let a = BitSet::from_members(20, [1, 2]);
        let b = BitSet::from_members(20, [3]);
        let c = BitSet::from_members(20, [3, 4, 5]);
        let d_ab = expected_waste(0.5, &a, 0.5, &b);
        let d_ac = expected_waste(0.5, &a, 0.5, &c);
        assert!(d_ab >= 0.0);
        assert!(d_ac > d_ab);
    }

    #[test]
    fn weighted_by_publication_mass() {
        let a = BitSet::from_members(10, [0]);
        let b = BitSet::from_members(10, [1]);
        // All the waste of events-in-a lands on b's member and vice
        // versa: d = pa·1 + pb·1.
        assert_eq!(expected_waste(0.9, &a, 0.1, &b), 1.0);
        assert_eq!(expected_waste(0.0, &a, 0.0, &b), 0.0);
    }

    #[test]
    fn popularity_is_mass_times_size() {
        let s = BitSet::from_members(10, [0, 1, 2, 3]);
        assert_eq!(popularity(0.25, &s), 1.0);
        assert_eq!(popularity(0.0, &s), 0.0);
    }
}
