//! Environment-knob parsing with loud misconfiguration reports.
//!
//! Every `PUBSUB_*` tuning variable in the workspace is read through
//! [`env_knob`]. An *unset* variable silently yields the default — that
//! is the normal case — but a variable that is set to something the
//! knob cannot use (`PUBSUB_THREADS=abc`, `PUBSUB_THREADS=0`) is a
//! misconfiguration: silently falling back to the default turns a typo
//! into hours of "why is my override ignored". Each malformed knob is
//! reported **once per process** to stderr, then the default applies.
//!
//! The knob registry is cross-checked statically by `pubsub-lint`:
//! every `PUBSUB_*` name read in code must be documented in
//! `docs/BENCHMARK.md`, and vice versa.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Knob names already reported as malformed (once-per-process gate).
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Records that `name` was malformed; returns `true` the first time a
/// given knob is recorded, `false` on every repeat.
fn note_malformed(name: &'static str) -> bool {
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    warned.insert(name)
}

/// Reads the environment knob `name`, parsing it with `parse`.
///
/// * unset → `default`, silently (the normal case);
/// * set and `parse` accepts the trimmed value → that value;
/// * set but unusable (non-UTF-8, or `parse` returns `None`) →
///   `default`, with a one-time report on stderr.
///
/// `parse` should return `None` for any value the knob cannot honor —
/// including out-of-range ones — so that rejected overrides are
/// reported instead of silently dropped.
///
/// # Examples
///
/// ```
/// let threads = pubsub_core::env_knob("PUBSUB_THREADS", 4usize, |s| {
///     s.parse().ok().filter(|&n| n > 0)
/// });
/// assert!(threads > 0);
/// ```
pub fn env_knob<T>(name: &'static str, default: T, parse: impl FnOnce(&str) -> Option<T>) -> T {
    let raw = match std::env::var(name) {
        Ok(raw) => raw,
        Err(std::env::VarError::NotPresent) => return default,
        Err(std::env::VarError::NotUnicode(_)) => {
            if note_malformed(name) {
                eprintln!(
                    "pubsub: {name} is set to a non-UTF-8 value; \
                     using the default (see docs/BENCHMARK.md)"
                );
            }
            return default;
        }
    };
    match parse(raw.trim()) {
        Some(v) => v,
        None => {
            if note_malformed(name) {
                eprintln!(
                    "pubsub: ignoring malformed {name}={raw:?}; \
                     using the default (see docs/BENCHMARK.md)"
                );
            }
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_silent_default() {
        std::env::remove_var("PUBSUB_TEST_KNOB_UNSET");
        let v = env_knob("PUBSUB_TEST_KNOB_UNSET", 7usize, |s| s.parse().ok());
        assert_eq!(v, 7);
    }

    #[test]
    fn set_and_valid_overrides() {
        std::env::set_var("PUBSUB_TEST_KNOB_VALID", " 42 ");
        let v = env_knob("PUBSUB_TEST_KNOB_VALID", 7usize, |s| s.parse().ok());
        assert_eq!(v, 42, "trimmed value parses");
    }

    #[test]
    fn malformed_falls_back_and_rejected_range_counts_as_malformed() {
        std::env::set_var("PUBSUB_TEST_KNOB_BAD", "abc");
        let v = env_knob("PUBSUB_TEST_KNOB_BAD", 7usize, |s| s.parse().ok());
        assert_eq!(v, 7);
        // A parseable but out-of-range value is also rejected.
        std::env::set_var("PUBSUB_TEST_KNOB_RANGE", "0");
        let v = env_knob("PUBSUB_TEST_KNOB_RANGE", 7usize, |s| {
            s.parse().ok().filter(|&n| n > 0)
        });
        assert_eq!(v, 7);
    }

    #[test]
    fn reports_once_per_knob() {
        assert!(note_malformed("PUBSUB_TEST_KNOB_ONCE"));
        assert!(!note_malformed("PUBSUB_TEST_KNOB_ONCE"));
        assert!(note_malformed("PUBSUB_TEST_KNOB_TWICE"));
    }
}
