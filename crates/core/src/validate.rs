//! Structural invariant validation for the clustering artifacts.
//!
//! The paper's guarantees are *structural*: hyper-cells partition the
//! set of live grid cells, every kept cell maps to exactly one group,
//! the compiled dispatch table reproduces `Grid::cell_of` bit-for-bit,
//! and No-Loss never lists a subscriber whose rectangle does not
//! contain the region. After several layers of performance work
//! (parallel fan-out, incremental deltas, compiled dispatch) those
//! guarantees are easy to erode silently. [`Validator`] audits the
//! artifacts directly:
//!
//! * [`Validator::check_framework`] — hyper-cells partition the cell
//!   space, the cell→hyper index is exact, popularity ranking is
//!   monotone, interned membership ids resolve to the stored bitsets,
//!   and the pairwise distance cache agrees with freshly recomputed
//!   [`expected_waste`] values bit-for-bit;
//! * [`Validator::check_clustering`] — groups partition the hyper-cells
//!   and their member/probability aggregates match a recompute;
//! * [`Validator::check_dispatch_plan`] — the compiled tables agree
//!   entry-for-entry with the framework and clustering they were
//!   compiled from, and point location agrees with
//!   [`GridFramework::hyper_of_point`] on a deterministic point sample;
//! * [`Validator::check_noloss`] — the containment guarantee and the
//!   precomputed per-region counts.
//!
//! Checks are wired as debug assertions at the
//! [`DynamicClustering`](crate::DynamicClustering) rebalance
//! boundaries and as explicit steps in the churn/dispatch bench
//! binaries; the mutation tests below corrupt each artifact field and
//! assert the validator flags every corruption.

use std::sync::Arc;

use geometry::{Point, Rect};

use crate::clustering::Clustering;
use crate::dispatch::{CellTable, DispatchPlan, NO_SLOT};
use crate::distance::DistanceMatrix;
use crate::framework::GridFramework;
use crate::membership::BitSet;
use crate::noloss::NoLossClustering;
use crate::waste::{expected_waste, expected_waste_weighted, popularity_weighted};

/// Pairs per distance-matrix audit: small matrices are checked in
/// full, larger ones on a deterministic strided sample of this size.
const DISTANCE_SAMPLE_PAIRS: usize = 4096;

/// Points thrown at [`DispatchPlan::locate`] per audit.
const LOCATE_SAMPLE_POINTS: usize = 256;

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable name of the invariant (e.g. `framework.cell-partition`).
    pub invariant: &'static str,
    /// What disagreed, with enough indices to reproduce.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Error carrying every violation a [`Validator`] collected.
#[derive(Debug, Clone)]
pub struct ValidationError {
    /// The violations, in check order.
    pub violations: Vec<Violation>,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} structural invariant(s) violated:",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// Audits clustering artifacts for structural invariants, collecting
/// every violation instead of stopping at the first.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{
///     CellProbability, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant, Validator,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![Rect::new(vec![Interval::new(0.0, 5.0)?])];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 2);
/// let mut v = Validator::new();
/// v.check_framework(&fw).check_clustering(&fw, &clustering);
/// assert!(v.is_clean());
/// v.finish()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Validator {
    violations: Vec<Violation>,
}

impl Validator {
    /// Creates a validator with no recorded violations.
    pub fn new() -> Self {
        Validator::default()
    }

    fn fail(&mut self, invariant: &'static str, detail: String) {
        self.violations.push(Violation { invariant, detail });
    }

    /// The violations recorded so far, in check order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no check so far found a violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Consumes the validator: `Ok(())` when clean, otherwise the full
    /// violation report.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError`] listing every recorded violation.
    pub fn finish(self) -> Result<(), ValidationError> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(ValidationError {
                violations: self.violations,
            })
        }
    }

    /// Panics with the full report if any check failed; `context` names
    /// the call site in the panic message.
    ///
    /// # Panics
    ///
    /// Panics when at least one violation was recorded.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.violations.is_empty(),
            "structural audit failed at {context}:\n{}",
            ValidationError {
                violations: self.violations.clone()
            }
        );
    }

    /// Audits a [`GridFramework`]: cell partition, index exactness,
    /// popularity ranking, interned membership resolution, and the
    /// distance cache (when materialized).
    pub fn check_framework(&mut self, fw: &GridFramework) -> &mut Self {
        let hcs = &fw.hypercells;
        let num_cells = fw.grid.num_cells();

        // Hyper-cells partition the live cell space and the
        // cell→hyper index is exactly their union.
        let mut mapped_cells = 0usize;
        for (h, hc) in hcs.iter().enumerate() {
            if hc.cells.is_empty() {
                self.fail(
                    "framework.cell-partition",
                    format!("hyper-cell {h} holds no cells"),
                );
            }
            mapped_cells += hc.cells.len();
            for &cell in &hc.cells {
                if cell.index() >= num_cells {
                    self.fail(
                        "framework.cell-partition",
                        format!("hyper-cell {h} holds out-of-range cell {cell:?}"),
                    );
                }
                match fw.cell_to_hyper.get(&cell) {
                    Some(&mapped) if mapped == h => {}
                    Some(&mapped) => self.fail(
                        "framework.cell-partition",
                        format!("cell {cell:?} sits in hyper-cell {h} but maps to {mapped}"),
                    ),
                    None => self.fail(
                        "framework.cell-partition",
                        format!("cell {cell:?} of hyper-cell {h} is missing from the index"),
                    ),
                }
            }
            if hc.members.universe() != fw.num_subscribers {
                self.fail(
                    "framework.member-universe",
                    format!(
                        "hyper-cell {h} members cover universe {} != {} subscribers",
                        hc.members.universe(),
                        fw.num_subscribers
                    ),
                );
            }
            if !hc.prob.is_finite() || hc.prob < 0.0 {
                self.fail(
                    "framework.cell-probability",
                    format!("hyper-cell {h} has probability {}", hc.prob),
                );
            }
        }
        if fw.cell_to_hyper.len() != mapped_cells {
            self.fail(
                "framework.cell-partition",
                format!(
                    "index maps {} cells but hyper-cells hold {mapped_cells} \
                     (a cell is shared or dangling)",
                    fw.cell_to_hyper.len()
                ),
            );
        }
        for (&cell, &h) in &fw.cell_to_hyper {
            if h >= hcs.len() {
                self.fail(
                    "framework.cell-partition",
                    format!(
                        "cell {cell:?} maps to dropped hyper-cell {h} of {}",
                        hcs.len()
                    ),
                );
            }
        }

        // Popularity ranking is non-increasing (build and apply_delta
        // both sort by descending popularity — weighted, for an
        // aggregated class framework).
        let pop = |h: usize| match fw.weights.as_deref() {
            Some(weights) => popularity_weighted(hcs[h].prob, &hcs[h].members, weights),
            None => hcs[h].popularity(),
        };
        for w in 1..hcs.len() {
            if pop(w - 1) < pop(w) {
                self.fail(
                    "framework.popularity-order",
                    format!(
                        "hyper-cell {} (popularity {}) ranked above {} (popularity {})",
                        w - 1,
                        pop(w - 1),
                        w,
                        pop(w)
                    ),
                );
            }
        }

        // Interned membership ids resolve to the stored bitsets.
        if let Some(inc) = &fw.incremental {
            if inc.hyper_ids.len() != hcs.len() {
                self.fail(
                    "framework.intern-resolution",
                    format!(
                        "{} interned ids for {} hyper-cells",
                        inc.hyper_ids.len(),
                        hcs.len()
                    ),
                );
            }
            if inc.pool.universe() != fw.num_subscribers {
                self.fail(
                    "framework.intern-resolution",
                    format!(
                        "pool universe {} != {} subscribers",
                        inc.pool.universe(),
                        fw.num_subscribers
                    ),
                );
            }
            for (h, (&id, hc)) in inc.hyper_ids.iter().zip(hcs).enumerate() {
                if inc.pool.get(id) != &hc.members {
                    self.fail(
                        "framework.intern-resolution",
                        format!(
                            "hyper-cell {h}: interned id {} resolves to a different bitset",
                            id.index()
                        ),
                    );
                }
            }
        }

        // Distance cache (when materialized): symmetry is structural
        // (one stored entry per unordered pair), so audit shape and
        // row/cell agreement with freshly recomputed expected waste.
        if let Some(Some(m)) = fw.distances.get() {
            self.check_distance_matrix(fw, m);
        }
        self
    }

    fn check_distance_matrix(&mut self, fw: &GridFramework, m: &Arc<DistanceMatrix>) {
        let hcs = &fw.hypercells;
        let n = m.n;
        if n != hcs.len() {
            self.fail(
                "framework.distance-shape",
                format!(
                    "matrix covers {n} hyper-cells, framework holds {}",
                    hcs.len()
                ),
            );
            return;
        }
        if m.data.len() != n * n.saturating_sub(1) / 2 {
            self.fail(
                "framework.distance-shape",
                format!(
                    "matrix stores {} entries for {n} hyper-cells (want {})",
                    m.data.len(),
                    n * n.saturating_sub(1) / 2
                ),
            );
            return;
        }
        // Deterministic strided pair sample; complete for small l. The
        // recomputation is the very expression DistanceMatrix::build
        // (or build_weighted, for an aggregated class framework) uses,
        // so agreement must be bit-for-bit — this is what catches a
        // row desynced by apply_delta's cache reuse.
        let weights = fw.weights.as_deref();
        let total_pairs = m.data.len();
        let stride = (total_pairs / DISTANCE_SAMPLE_PAIRS).max(1);
        let mut flat = 0usize;
        while flat < total_pairs {
            let (i, j) = triangle_coords(flat);
            let direct = match weights {
                Some(w) => expected_waste_weighted(
                    hcs[i].prob,
                    &hcs[i].members,
                    hcs[j].prob,
                    &hcs[j].members,
                    w,
                ),
                None => expected_waste(hcs[i].prob, &hcs[i].members, hcs[j].prob, &hcs[j].members),
            };
            if m.data[flat].to_bits() != direct.to_bits() {
                self.fail(
                    "framework.distance-agreement",
                    format!(
                        "d({i},{j}) cached as {} but recomputes to {direct}",
                        m.data[flat]
                    ),
                );
            }
            flat += stride;
        }
    }

    /// Audits a [`Clustering`] against the framework it was built over:
    /// dense group indices, a one-to-one hyper-cell partition, and
    /// member/probability aggregates matching a recompute.
    pub fn check_clustering(&mut self, fw: &GridFramework, c: &Clustering) -> &mut Self {
        let hcs = &fw.hypercells;
        if c.hyper_to_group.len() != hcs.len() {
            self.fail(
                "clustering.assignment-shape",
                format!(
                    "{} assignments for {} hyper-cells",
                    c.hyper_to_group.len(),
                    hcs.len()
                ),
            );
            return self;
        }
        for (h, &g) in c.hyper_to_group.iter().enumerate() {
            if g >= c.groups.len() {
                self.fail(
                    "clustering.assignment-shape",
                    format!("hyper-cell {h} assigned to group {g} of {}", c.groups.len()),
                );
            }
        }

        // Groups partition the hyper-cells, consistently with the
        // assignment vector.
        let mut seen = vec![false; hcs.len()];
        for (g, group) in c.groups.iter().enumerate() {
            if group.hypercells.is_empty() {
                self.fail(
                    "clustering.hyper-partition",
                    format!("group {g} is empty (empty groups must be dropped)"),
                );
            }
            for &h in &group.hypercells {
                if h >= hcs.len() {
                    self.fail(
                        "clustering.hyper-partition",
                        format!("group {g} holds out-of-range hyper-cell {h}"),
                    );
                    continue;
                }
                if seen[h] {
                    self.fail(
                        "clustering.hyper-partition",
                        format!("hyper-cell {h} appears in more than one group"),
                    );
                }
                seen[h] = true;
                if c.hyper_to_group.get(h) != Some(&g) {
                    self.fail(
                        "clustering.hyper-partition",
                        format!(
                            "group {g} holds hyper-cell {h} but the assignment says {:?}",
                            c.hyper_to_group.get(h)
                        ),
                    );
                }
            }

            // Member and probability aggregates match a recompute.
            let mut members = BitSet::new(fw.num_subscribers);
            let mut prob = 0.0f64;
            for &h in &group.hypercells {
                if let Some(hc) = hcs.get(h) {
                    members.union_with(&hc.members);
                    prob += hc.prob;
                }
            }
            if group.members != members {
                self.fail(
                    "clustering.group-members",
                    format!(
                        "group {g} stores {} members but its hyper-cells union to {}",
                        group.members.count(),
                        members.count()
                    ),
                );
            }
            // The iterative algorithms accumulate probability in move
            // order, so compare with a tolerance instead of bit-for-bit.
            let scale = prob.abs().max(1.0);
            if !group.prob.is_finite() || (group.prob - prob).abs() > 1e-9 * scale {
                self.fail(
                    "clustering.group-probability",
                    format!(
                        "group {g} stores probability {} but its hyper-cells sum to {prob}",
                        group.prob
                    ),
                );
            }
        }
        for (h, &covered) in seen.iter().enumerate() {
            if !covered {
                self.fail(
                    "clustering.hyper-partition",
                    format!("hyper-cell {h} belongs to no group"),
                );
            }
        }
        self
    }

    /// Audits a [`DispatchPlan`] against the framework and clustering it
    /// was compiled from: table exactness, flattened group state, and
    /// point-location agreement on a deterministic sample.
    pub fn check_dispatch_plan(
        &mut self,
        fw: &GridFramework,
        c: &Clustering,
        plan: &DispatchPlan,
    ) -> &mut Self {
        let hcs = &fw.hypercells;
        if !(0.0..=1.0).contains(&plan.threshold) {
            self.fail(
                "dispatch.threshold-range",
                format!("threshold {} outside [0, 1]", plan.threshold),
            );
        }
        if plan.num_subscribers != fw.num_subscribers
            || plan.words != fw.num_subscribers.div_ceil(64)
        {
            self.fail(
                "dispatch.subscriber-shape",
                format!(
                    "plan compiled for {} subscribers / {} words, framework has {}",
                    plan.num_subscribers, plan.words, fw.num_subscribers
                ),
            );
            return self;
        }

        // The cell table is exactly the framework's cell→hyper index.
        let mut table_entries = 0usize;
        match &plan.table {
            CellTable::Dense(t) => {
                if t.len() != fw.grid.num_cells() {
                    self.fail(
                        "dispatch.cell-table",
                        format!(
                            "dense table covers {} cells, grid has {}",
                            t.len(),
                            fw.grid.num_cells()
                        ),
                    );
                }
                for (idx, &slot) in t.iter().enumerate() {
                    if slot == NO_SLOT {
                        continue;
                    }
                    table_entries += 1;
                    if slot as usize >= hcs.len() {
                        self.fail(
                            "dispatch.cell-table",
                            format!("cell {idx} points at hyper-cell {slot} of {}", hcs.len()),
                        );
                    }
                }
            }
            CellTable::Sparse(map) => {
                table_entries = map.len();
                for (&idx, &slot) in map {
                    if slot as usize >= hcs.len() {
                        self.fail(
                            "dispatch.cell-table",
                            format!("cell {idx} points at hyper-cell {slot} of {}", hcs.len()),
                        );
                    }
                }
            }
        }
        if table_entries != fw.cell_to_hyper.len() {
            self.fail(
                "dispatch.cell-table",
                format!(
                    "table keeps {table_entries} cells, framework keeps {}",
                    fw.cell_to_hyper.len()
                ),
            );
        }
        for (&cell, &h) in &fw.cell_to_hyper {
            let slot = match &plan.table {
                CellTable::Dense(t) => t.get(cell.index()).copied(),
                CellTable::Sparse(map) => map.get(&cell.index()).copied(),
            };
            if slot != Some(h as u32) {
                self.fail(
                    "dispatch.cell-table",
                    format!("cell {cell:?} maps to {h} in the framework but {slot:?} in the plan"),
                );
            }
        }

        // Per-hyper-cell state: group assignment and flattened members.
        if plan.hyper_group.len() != hcs.len() {
            self.fail(
                "dispatch.hyper-state",
                format!(
                    "plan compiled for {} hyper-cells, framework holds {}",
                    plan.hyper_group.len(),
                    hcs.len()
                ),
            );
            return self;
        }
        if c.hyper_to_group.len() == hcs.len() {
            for (h, &g) in plan.hyper_group.iter().enumerate() {
                if g as usize != c.hyper_to_group[h] {
                    self.fail(
                        "dispatch.hyper-state",
                        format!(
                            "hyper-cell {h} compiled into group {g}, clustering says {}",
                            c.hyper_to_group[h]
                        ),
                    );
                }
            }
        }
        self.check_flattened(
            "dispatch.hyper-state",
            &plan.hyper_offsets,
            &plan.hyper_members,
            hcs.len(),
            |h| hcs.get(h).map(|hc| &hc.members),
        );

        // Per-group state: sizes, packed words and flattened members.
        if plan.group_size.len() != c.groups.len()
            || plan.group_words.len() != c.groups.len() * plan.words
        {
            self.fail(
                "dispatch.group-state",
                format!(
                    "plan compiled {} groups / {} packed words, clustering has {}",
                    plan.group_size.len(),
                    plan.group_words.len(),
                    c.groups.len()
                ),
            );
            return self;
        }
        for (g, group) in c.groups.iter().enumerate() {
            if plan.group_size[g] as usize != group.members.count() {
                self.fail(
                    "dispatch.group-state",
                    format!(
                        "group {g} compiled size {} but has {} members",
                        plan.group_size[g],
                        group.members.count()
                    ),
                );
            }
            let words = &plan.group_words[g * plan.words..(g + 1) * plan.words];
            if words != group.members.words() {
                self.fail(
                    "dispatch.group-state",
                    format!("group {g}'s packed membership words disagree with the clustering"),
                );
            }
        }
        self.check_flattened(
            "dispatch.group-state",
            &plan.group_offsets,
            &plan.group_members,
            c.groups.len(),
            |g| c.groups.get(g).map(|group| &group.members),
        );

        // Point location agrees with the framework on a deterministic
        // sample (in-bounds, boundary and out-of-bounds points).
        for p in sample_points(fw, LOCATE_SAMPLE_POINTS) {
            let from_plan = plan.locate(&p).map(|s| s as usize);
            let from_grid = fw.hyper_of_point(&p);
            if from_plan != from_grid {
                self.fail(
                    "dispatch.locate-agreement",
                    format!(
                        "point {:?} locates to {from_plan:?} in the plan, {from_grid:?} \
                         via Grid::cell_of",
                        p.coords()
                    ),
                );
            }
        }
        self
    }

    /// Checks one flattened member-list encoding (monotone offsets
    /// delimiting concatenated ascending member ids) against the source
    /// bitsets.
    fn check_flattened<'a>(
        &mut self,
        invariant: &'static str,
        offsets: &[u32],
        flat: &[u32],
        items: usize,
        members_of: impl Fn(usize) -> Option<&'a BitSet>,
    ) {
        if offsets.len() != items + 1
            || offsets.first() != Some(&0)
            || offsets.last().copied() != Some(flat.len() as u32)
        {
            self.fail(
                invariant,
                format!(
                    "offset table of {} entries does not delimit {items} member lists \
                     over {} flattened ids",
                    offsets.len(),
                    flat.len()
                ),
            );
            return;
        }
        for i in 0..items {
            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
            if lo > hi || hi > flat.len() {
                self.fail(
                    invariant,
                    format!("item {i}'s offsets {lo}..{hi} are not monotone"),
                );
                continue;
            }
            let Some(members) = members_of(i) else {
                continue;
            };
            let stored = &flat[lo..hi];
            let mut expected = members.iter();
            let mut mismatch = stored.len() != members.count();
            if !mismatch {
                mismatch = stored.iter().any(|&s| expected.next() != Some(s as usize));
            }
            if mismatch {
                self.fail(
                    invariant,
                    format!("item {i}'s flattened member list disagrees with its bitset"),
                );
            }
        }
    }

    /// Audits a [`NoLossClustering`] against the subscription
    /// rectangles: the containment guarantee (every listed subscriber's
    /// rectangle contains the region — delivering to it can never be a
    /// loss) and the precomputed count cache.
    pub fn check_noloss(&mut self, subscriptions: &[Rect], nl: &NoLossClustering) -> &mut Self {
        if nl.counts.len() != nl.regions.len() {
            self.fail(
                "noloss.count-cache",
                format!(
                    "{} cached counts for {} regions",
                    nl.counts.len(),
                    nl.regions.len()
                ),
            );
        }
        for (i, region) in nl.regions.iter().enumerate() {
            if !region.weight.is_finite() || region.weight < 0.0 {
                self.fail(
                    "noloss.region-weight",
                    format!("region {i} has weight {}", region.weight),
                );
            }
            if region.subscribers.universe() != subscriptions.len() {
                self.fail(
                    "noloss.containment",
                    format!(
                        "region {i} members cover universe {} != {} subscriptions",
                        region.subscribers.universe(),
                        subscriptions.len()
                    ),
                );
                continue;
            }
            if let Some(&cached) = nl.counts.get(i) {
                if cached as usize != region.subscribers.count() {
                    self.fail(
                        "noloss.count-cache",
                        format!(
                            "region {i} caches count {cached} but holds {} subscribers",
                            region.subscribers.count()
                        ),
                    );
                }
            }
            for s in region.subscribers.iter() {
                if !subscriptions[s].contains_rect(&region.rect) {
                    self.fail(
                        "noloss.containment",
                        format!(
                            "region {i} lists subscriber {s}, whose rectangle does not \
                                 contain it"
                        ),
                    );
                }
            }
        }
        self
    }
}

/// Maps a flat lower-triangle offset back to its `(i, j)` pair
/// (`i > j`), inverting `offset = i·(i−1)/2 + j`.
fn triangle_coords(flat: usize) -> (usize, usize) {
    let mut i = 1usize;
    // Row i starts at i(i-1)/2; advance to the row containing `flat`.
    while (i + 1) * i / 2 <= flat {
        i += 1;
    }
    (i, flat - i * (i - 1) / 2)
}

/// Deterministic sample of points for locate-agreement audits: `n`
/// quasi-random in-bounds points plus the corners just inside and
/// outside the grid bounds. No RNG dependency — a fixed-seed LCG keeps
/// the audit reproducible run to run.
fn sample_points(fw: &GridFramework, n: usize) -> Vec<Point> {
    let bounds = fw.grid.bounds();
    let dim = fw.grid.dim();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next_unit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // (0, 1]: cells are lo-exclusive, hi-inclusive.
        ((state >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    };
    let mut points = Vec::with_capacity(n + 2);
    for _ in 0..n {
        let coords = (0..dim)
            .map(|d| {
                let iv = bounds.interval(d);
                iv.lo() + next_unit() * iv.length()
            })
            .collect();
        points.push(Point::new(coords));
    }
    // Boundary probes: the exact upper corner (in-bounds, the ceil
    // expression's worst case) and a point past it (out-of-bounds).
    points.push(Point::new(
        (0..dim).map(|d| bounds.interval(d).hi()).collect(),
    ));
    points.push(Point::new(
        (0..dim)
            .map(|d| bounds.interval(d).hi() + bounds.interval(d).length())
            .collect(),
    ));
    points
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;
    use crate::framework::CellProbability;
    use crate::kmeans::{KMeans, KMeansVariant};
    use crate::noloss::{NoLossClustering, NoLossConfig};
    use crate::ClusteringAlgorithm;
    use geometry::{Grid, Interval};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    struct Scenario {
        subs: Vec<Rect>,
        probs: CellProbability,
        fw: GridFramework,
        clustering: Clustering,
        plan: DispatchPlan,
    }

    /// A bench-shaped scenario with every auditable artifact armed:
    /// materialized distance cache, initialized interning state, a
    /// compiled plan with a dense table and at least two groups.
    fn scenario() -> Scenario {
        let mut rng = StdRng::seed_from_u64(2002);
        let subs: Vec<Rect> = (0..30)
            .map(|_| {
                let lo = rng.gen_range(0.0..8.0);
                rect1(lo, lo + rng.gen_range(0.5..2.0))
            })
            .collect();
        let grid = Grid::cube(0.0, 10.0, 1, 40).unwrap();
        let probs = CellProbability::uniform(&grid);
        let mut fw = GridFramework::build(grid, &subs, &probs, None);
        // Arm the incremental interning state and the distance cache.
        fw.apply_delta(&[], &[], &probs, subs.len());
        assert!(fw.distance_matrix().is_some(), "cache must materialize");
        assert!(fw.hypercells.len() >= 4, "scenario too small to corrupt");
        let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 4);
        assert!(clustering.num_groups() >= 2, "need two groups to flip");
        let plan = DispatchPlan::compile(&fw, &clustering).with_threshold(0.3);
        Scenario {
            subs,
            probs,
            fw,
            clustering,
            plan,
        }
    }

    fn noloss_scenario() -> (Vec<Rect>, NoLossClustering) {
        // Two separated communities: subscribers of one never contain
        // regions of the other, so a cross-planted member is always a
        // containment violation.
        let subs = vec![
            rect1(0.0, 4.0),
            rect1(1.0, 4.5),
            rect1(0.5, 3.5),
            rect1(6.0, 10.0),
            rect1(6.5, 9.5),
        ];
        let sample: Vec<Point> = (0..40)
            .map(|i| Point::new(vec![0.25 * i as f64 + 0.1]))
            .collect();
        let nl = NoLossClustering::build(&subs, &sample, &NoLossConfig::default(), 4);
        assert!(nl.num_groups() > 0);
        (subs, nl)
    }

    fn audit(s: &Scenario) -> Validator {
        let mut v = Validator::new();
        v.check_framework(&s.fw)
            .check_clustering(&s.fw, &s.clustering)
            .check_dispatch_plan(&s.fw, &s.clustering, &s.plan);
        v
    }

    /// Number of grid-artifact corruptions [`corrupt`] knows.
    const GRID_CORRUPTIONS: usize = 12;

    /// Applies corruption `kind` (entry selection varied by `salt`) and
    /// returns its name for diagnostics.
    fn corrupt(s: &mut Scenario, kind: usize, salt: usize) -> &'static str {
        match kind {
            0 => {
                // Flip a dense cell-table entry.
                let CellTable::Dense(t) = &mut s.plan.table else {
                    panic!("scenario compiles a dense table");
                };
                let kept: Vec<usize> = (0..t.len()).filter(|&i| t[i] != NO_SLOT).collect();
                let idx = kept[salt % kept.len()];
                t[idx] = if t[idx] == 0 { 1 } else { t[idx] - 1 };
                "table-entry-flip"
            }
            1 => {
                // Drop a hyper-cell: its cells now dangle in the index.
                s.fw.hypercells.pop();
                "hypercell-drop"
            }
            2 => {
                // Desync one distance-matrix entry.
                let m = s.fw.distance_matrix().expect("cache armed");
                let mut data = m.data.clone();
                let n = m.n;
                let idx = salt % data.len();
                data[idx] += 1.0;
                let cell = OnceLock::new();
                cell.set(Some(Arc::new(DistanceMatrix { n, data }))).ok();
                s.fw.distances = cell;
                "distance-row-desync"
            }
            3 => {
                // Reassign a hyper-cell behind the groups' back.
                let h = salt % s.clustering.hyper_to_group.len();
                let g = s.clustering.hyper_to_group[h];
                s.clustering.hyper_to_group[h] = (g + 1) % s.clustering.groups.len();
                "assignment-flip"
            }
            4 => {
                // Drop a member from a group's stored union.
                let g = salt % s.clustering.groups.len();
                let m = s.clustering.groups[g]
                    .members
                    .iter()
                    .next()
                    .expect("groups are non-empty");
                s.clustering.groups[g].members.remove(m);
                "group-member-drop"
            }
            5 => {
                // Point a kept cell at the wrong hyper-cell.
                let l = s.fw.hypercells.len();
                let cells: Vec<_> = s.fw.hypercells[salt % l].cells.clone();
                let cell = cells[salt % cells.len()];
                let wrong = (s.fw.cell_to_hyper[&cell] + 1) % l;
                s.fw.cell_to_hyper.insert(cell, wrong);
                "cell-index-remap"
            }
            6 => {
                let g = salt % s.clustering.groups.len();
                s.clustering.groups[g].prob += 1.0;
                "group-probability-drift"
            }
            7 => {
                // Swap two interned ids (distinct by hash-consing).
                let inc = s.fw.incremental.as_mut().expect("interning armed");
                inc.hyper_ids.swap(0, 1);
                "intern-id-desync"
            }
            8 => {
                s.plan.threshold = 2.0;
                "threshold-out-of-range"
            }
            9 => {
                let g = salt % s.plan.group_size.len();
                s.plan.group_size[g] += 1;
                "plan-group-size-drift"
            }
            10 => {
                let h = salt % s.fw.hypercells.len();
                s.fw.hypercells[h].prob = -1.0;
                "negative-probability"
            }
            11 => {
                let h = salt % s.plan.hyper_group.len();
                let g = s.plan.hyper_group[h];
                s.plan.hyper_group[h] = (g + 1) % s.plan.group_size.len() as u32;
                "plan-group-flip"
            }
            _ => unreachable!("unknown corruption kind"),
        }
    }

    #[test]
    fn pristine_artifacts_are_clean() {
        let s = scenario();
        let v = audit(&s);
        assert!(v.is_clean(), "false positives: {:?}", v.violations());
        v.finish().unwrap();

        let (subs, nl) = noloss_scenario();
        let mut v = Validator::new();
        v.check_noloss(&subs, &nl);
        assert!(v.is_clean(), "false positives: {:?}", v.violations());
    }

    #[test]
    fn rebalanced_dynamic_artifacts_are_clean() {
        // The debug assertions inside rebalance()/rebuild() run the
        // audit at every boundary; corruption of any invariant would
        // panic here.
        let grid = Grid::cube(0.0, 10.0, 1, 20).unwrap();
        let probs = CellProbability::uniform(&grid);
        let mut dynamic =
            crate::DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), 3);
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(dynamic.subscribe(rect1(i as f64, (i as f64 + 4.0).min(20.0))));
        }
        dynamic.rebalance();
        dynamic.unsubscribe(ids[3]).unwrap();
        dynamic.resubscribe(ids[5], rect1(0.5, 2.5)).unwrap();
        dynamic.rebalance();
        dynamic.rebuild();
    }

    #[test]
    fn validator_flags_every_grid_corruption() {
        for kind in 0..GRID_CORRUPTIONS {
            let mut s = scenario();
            let name = corrupt(&mut s, kind, 7);
            let v = audit(&s);
            assert!(!v.is_clean(), "corruption {kind} ({name}) went undetected");
        }
    }

    #[test]
    fn validator_flags_noloss_corruptions() {
        // Plant a member whose rectangle cannot contain the region.
        let (subs, mut nl) = noloss_scenario();
        let i = (0..nl.regions.len())
            .find(|&i| {
                let r = &nl.regions[i];
                (0..subs.len()).any(|s| !r.subscribers.contains(s))
            })
            .expect("some region excludes some subscriber");
        let outsider = (0..subs.len())
            .find(|&s| !nl.regions[i].subscribers.contains(s))
            .unwrap();
        nl.regions[i].subscribers.insert(outsider);
        let mut v = Validator::new();
        v.check_noloss(&subs, &nl);
        assert!(!v.is_clean(), "planted member went undetected");

        // Desync the precomputed count cache.
        let (subs, mut nl) = noloss_scenario();
        nl.counts[0] += 1;
        let mut v = Validator::new();
        v.check_noloss(&subs, &nl);
        assert!(!v.is_clean(), "count desync went undetected");

        // Corrupt a region weight.
        let (subs, mut nl) = noloss_scenario();
        nl.regions[0].weight = f64::NAN;
        let mut v = Validator::new();
        v.check_noloss(&subs, &nl);
        assert!(!v.is_clean(), "NaN weight went undetected");
    }

    #[test]
    fn error_report_lists_every_violation() {
        let mut s = scenario();
        corrupt(&mut s, 8, 0);
        corrupt(&mut s, 9, 0);
        let err = audit(&s).finish().unwrap_err();
        assert!(err.violations.len() >= 2);
        let text = err.to_string();
        assert!(text.contains("dispatch.threshold-range"), "{text}");
        assert!(text.contains("dispatch.group-state"), "{text}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mutation-style sweep: every corruption kind, at an
        /// arbitrary entry, must be flagged — 100% mutation kill.
        #[test]
        fn mutation_sweep_kills_every_corruption(
            kind in 0usize..GRID_CORRUPTIONS,
            salt in 0usize..1_000_000,
        ) {
            let mut s = scenario();
            let name = corrupt(&mut s, kind, salt);
            let v = audit(&s);
            prop_assert!(
                !v.is_clean(),
                "corruption {} ({}) with salt {} went undetected",
                kind, name, salt
            );
        }

        /// The audit itself must never report a false positive on a
        /// freshly built (delta-updated) framework.
        #[test]
        fn no_false_positives_after_delta(seed in 0u64..500) {
            let mut s = scenario();
            let mut rng = StdRng::seed_from_u64(seed);
            let id = s.subs.len();
            let lo = rng.gen_range(0.0..8.0);
            let added = vec![(id, rect1(lo, lo + 1.0))];
            let removed = vec![(0usize, s.subs[0].clone())];
            s.fw.apply_delta(&added, &removed, &s.probs, id + 1);
            let mut v = Validator::new();
            v.check_framework(&s.fw);
            prop_assert!(v.is_clean(), "false positives: {:?}", v.violations());
        }
    }
}
