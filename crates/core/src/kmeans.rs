//! K-means subscription clustering (Section 4.2 of the paper).
//!
//! Both variants follow Figure 1 of the paper:
//!
//! 0. the `K` hyper-cells with the highest popularity rating seed the
//!    groups; every other hyper-cell is assigned to the closest group by
//!    the expected-waste distance;
//! 1. each hyper-cell is re-examined and moved to its closest group;
//! 2. repeat until no cell moves (or the iteration cap).
//!
//! The **MacQueen** variant updates a group's membership vector each
//! time a hyper-cell moves; the **Forgy** variant computes a whole pass
//! of re-assignments against a snapshot of the vectors and applies the
//! updates only after the pass. A hyper-cell never leaves a group it is
//! the last member of.

use crate::clustering::{Clustering, ClusteringAlgorithm, GroupAccumulator};
use crate::distance::DistanceMatrix;
use crate::framework::GridFramework;
use crate::parallel;

/// Which centroid-update discipline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansVariant {
    /// Update the moved-to/moved-from groups immediately (MacQueen).
    MacQueen,
    /// Update all groups only at the end of each full pass (Forgy).
    Forgy,
}

/// The K-means clustering algorithm.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{
///     CellProbability, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 4.0)?]),
///     Rect::new(vec![Interval::new(1.0, 5.0)?]),
///     Rect::new(vec![Interval::new(7.0, 10.0)?]),
/// ];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 2);
/// assert!(clustering.num_groups() <= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    variant: KMeansVariant,
    max_iterations: usize,
}

impl KMeans {
    /// Creates the algorithm with the paper's default cap of 100
    /// iterations ("usually the number of actual iterations was less
    /// than 20").
    pub fn new(variant: KMeansVariant) -> Self {
        KMeans {
            variant,
            max_iterations: 100,
        }
    }

    /// Overrides the iteration cap. The paper notes processing "can be
    /// stopped after any iteration, resulting in a feasible partition".
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// The variant.
    pub fn variant(&self) -> KMeansVariant {
        self.variant
    }

    /// Runs the re-assignment passes from a caller-supplied initial
    /// partition instead of the popularity seeding — the warm start
    /// used when subscriptions change and the previous clustering is
    /// still approximately right (Section 4.2: "an easy way to
    /// accommodate changes in cell membership, simply running a number
    /// of re-balancing iterations").
    ///
    /// `initial[h]` is the starting group of hyper-cell `h`; group ids
    /// must be `< k`. Returns the clustering and the number of moves
    /// performed across all passes (a convergence diagnostic: a warm
    /// start should need far fewer moves than a cold one).
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the hyper-cell count or
    /// any group id is `>= k`.
    pub fn cluster_seeded(
        &self,
        framework: &GridFramework,
        k: usize,
        initial: &[usize],
    ) -> (Clustering, usize) {
        let hcs = framework.hypercells();
        let l = hcs.len();
        assert_eq!(initial.len(), l, "one seed group per hyper-cell");
        if l == 0 {
            return (Clustering::from_assignment(framework, Vec::new()), 0);
        }
        let k = k.max(1).min(l.max(1));
        let matrix = framework.distance_matrix();
        let mut groups: Vec<GroupAccumulator> = (0..k)
            .map(|_| GroupAccumulator::for_framework(framework))
            .collect();
        // `sole[g]` is the hyper-cell index of a still-singleton group, so
        // its distance can be read from the shared cache instead of
        // recomputed (see `closest_group`).
        let mut sole: Vec<Option<usize>> = vec![None; k];
        let mut assignment = initial.to_vec();
        for (h, &g) in assignment.iter().enumerate() {
            assert!(g < k, "seed group {g} out of range for k = {k}");
            groups[g].add(&hcs[h]);
            sole[g] = if groups[g].num_cells() == 1 {
                Some(h)
            } else {
                None
            };
        }
        let mut total_moves = 0usize;
        for _ in 0..self.max_iterations {
            let mut moved = false;
            for h in 0..l {
                let cur = assignment[h];
                if groups[cur].num_cells() == 1 {
                    continue;
                }
                let best = closest_group(&groups, framework, matrix, &sole, h);
                if best != cur {
                    groups[cur].remove(&hcs[h]);
                    groups[best].add(&hcs[h]);
                    sole[best] = None;
                    assignment[h] = best;
                    moved = true;
                    total_moves += 1;
                }
            }
            if !moved {
                break;
            }
        }
        (
            Clustering::from_assignment(framework, assignment),
            total_moves,
        )
    }
}

impl ClusteringAlgorithm for KMeans {
    fn name(&self) -> &'static str {
        match self.variant {
            KMeansVariant::MacQueen => "kmeans",
            KMeansVariant::Forgy => "forgy",
        }
    }

    fn cluster(&self, framework: &GridFramework, k: usize) -> Clustering {
        let hcs = framework.hypercells();
        let l = hcs.len();
        if l == 0 {
            return Clustering::from_assignment(framework, Vec::new());
        }
        let k = k.max(1).min(l);

        // Step 0: the K most popular hyper-cells seed the groups
        // (hyper-cells are already sorted by popularity).
        let matrix = framework.distance_matrix();
        let mut groups: Vec<GroupAccumulator> = (0..k)
            .map(|_| GroupAccumulator::for_framework(framework))
            .collect();
        let mut sole: Vec<Option<usize>> = vec![None; k];
        let mut assignment: Vec<usize> = vec![usize::MAX; l];
        for (g, group) in groups.iter_mut().enumerate().take(k) {
            group.add(&hcs[g]);
            sole[g] = Some(g);
            assignment[g] = g;
        }
        // Assign the rest to the closest seed group (updating vectors as
        // we go — this is the initial-partition step for both variants).
        // Seed groups stay singletons until something joins them, so the
        // shared distance cache serves most of these lookups.
        for h in k..l {
            let g = closest_group(&groups, framework, matrix, &sole, h);
            groups[g].add(&hcs[h]);
            sole[g] = None;
            assignment[h] = g;
        }

        // Steps 1-2: re-assignment passes.
        for _ in 0..self.max_iterations {
            let mut moved = false;
            match self.variant {
                KMeansVariant::MacQueen => {
                    // Each move updates the vectors the next hyper-cell
                    // sees, so this pass is inherently sequential.
                    for h in 0..l {
                        let cur = assignment[h];
                        if groups[cur].num_cells() == 1 {
                            continue; // never empty a group
                        }
                        let best = closest_group(&groups, framework, matrix, &sole, h);
                        if best != cur {
                            groups[cur].remove(&hcs[h]);
                            groups[best].add(&hcs[h]);
                            sole[best] = None;
                            assignment[h] = best;
                            moved = true;
                        }
                    }
                }
                KMeansVariant::Forgy => {
                    // All distances are evaluated against the pre-pass
                    // vectors, so every hyper-cell's closest group is
                    // independent and the scan runs in parallel. `groups`
                    // is not mutated until the apply loop below, which
                    // makes it the frozen snapshot — no clone needed.
                    let groups_ref = &groups;
                    let sole_ref = &sole;
                    let best_of = parallel::par_map_indexed(l, 64, |h| {
                        closest_group(groups_ref, framework, matrix, sole_ref, h)
                    });
                    let mut pending: Vec<(usize, usize)> = Vec::new();
                    let mut leaving = vec![0usize; k];
                    for (h, &best) in best_of.iter().enumerate() {
                        let cur = assignment[h];
                        if best != cur && groups[cur].num_cells() > leaving[cur] + 1 {
                            pending.push((h, best));
                            leaving[cur] += 1;
                        }
                    }
                    // ...applied only after the pass.
                    for (h, best) in pending {
                        let cur = assignment[h];
                        groups[cur].remove(&hcs[h]);
                        groups[best].add(&hcs[h]);
                        sole[best] = None;
                        assignment[h] = best;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        Clustering::from_assignment(framework, assignment)
    }
}

/// Index of the group with minimal expected-waste distance to hyper-cell
/// `h` (ties go to the lower index, deterministically).
///
/// When a group is still a singleton (`sole[g]` is `Some(s)`) and the
/// framework's distance cache is populated, the distance is read from the
/// cache. `GroupAccumulator::distance_to` forms the same two products as
/// [`expected_waste`](crate::expected_waste) and IEEE-754 addition is
/// commutative, so the cached value is bit-identical to the recomputed
/// one.
fn closest_group(
    groups: &[GroupAccumulator],
    framework: &GridFramework,
    matrix: Option<&DistanceMatrix>,
    sole: &[Option<usize>],
    h: usize,
) -> usize {
    let hc = &framework.hypercells()[h];
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (g, group) in groups.iter().enumerate() {
        let d = match (matrix, sole[g]) {
            (Some(m), Some(s)) => m.get(s, h),
            _ => group.distance_to(hc),
        };
        if d < best_d {
            best_d = d;
            best = g;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellProbability;
    use geometry::{Grid, Interval, Rect};

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    /// Two clearly separated interest communities on a 1-D grid.
    fn two_communities() -> GridFramework {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut subs = Vec::new();
        // Community A: 5 subscribers around (0, 8].
        for i in 0..5 {
            subs.push(rect1(i as f64 * 0.5, 8.0 - i as f64 * 0.5));
        }
        // Community B: 5 subscribers around (12, 20].
        for i in 0..5 {
            subs.push(rect1(12.0 + i as f64 * 0.5, 20.0 - i as f64 * 0.5));
        }
        let probs = CellProbability::uniform(&grid);
        GridFramework::build(grid, &subs, &probs, None)
    }

    #[test]
    fn separates_two_communities() {
        let fw = two_communities();
        for variant in [KMeansVariant::MacQueen, KMeansVariant::Forgy] {
            let c = KMeans::new(variant).cluster(&fw, 2);
            assert_eq!(c.num_groups(), 2, "{variant:?}");
            // No group should mix subscribers from both communities:
            // each group's members must be entirely < 5 or >= 5.
            for g in c.groups() {
                let low = g.members.iter().filter(|&m| m < 5).count();
                let high = g.members.iter().filter(|&m| m >= 5).count();
                assert!(
                    low == 0 || high == 0,
                    "{variant:?} mixed group: {low} low + {high} high"
                );
            }
        }
    }

    #[test]
    fn k_one_puts_everything_in_one_group() {
        let fw = two_communities();
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 1);
        assert_eq!(c.num_groups(), 1);
        assert_eq!(c.groups()[0].hypercells.len(), fw.hypercells().len());
    }

    #[test]
    fn k_larger_than_cells_caps_at_cell_count() {
        let fw = two_communities();
        let l = fw.hypercells().len();
        let c = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 10 * l);
        assert!(c.num_groups() <= l);
        // With k = l every hyper-cell can be its own group: zero waste.
        assert_eq!(c.total_expected_waste(&fw), 0.0);
    }

    #[test]
    fn empty_framework() {
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &[], &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 3);
        assert_eq!(c.num_groups(), 0);
    }

    #[test]
    fn more_groups_do_not_increase_waste() {
        let fw = two_communities();
        let km = KMeans::new(KMeansVariant::Forgy);
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4, 8] {
            let w = km.cluster(&fw, k).total_expected_waste(&fw);
            // K-means is a heuristic, so allow small non-monotonicity,
            // but the broad trend must hold from K=1 to K=8.
            assert!(
                w <= prev + 1e-9 || k < 8,
                "waste went {prev} -> {w} at k={k}"
            );
            prev = w;
        }
        assert!(
            km.cluster(&fw, 8).total_expected_waste(&fw)
                <= km.cluster(&fw, 1).total_expected_waste(&fw)
        );
    }

    #[test]
    fn zero_iterations_still_yields_feasible_partition() {
        let fw = two_communities();
        let c = KMeans::new(KMeansVariant::MacQueen)
            .with_max_iterations(0)
            .cluster(&fw, 3);
        assert!(c.num_groups() <= 3);
        assert!(!c.groups().is_empty());
        // Every hyper-cell is assigned somewhere.
        let total: usize = c.groups().iter().map(|g| g.hypercells.len()).sum();
        assert_eq!(total, fw.hypercells().len());
    }

    #[test]
    fn names() {
        assert_eq!(KMeans::new(KMeansVariant::MacQueen).name(), "kmeans");
        assert_eq!(KMeans::new(KMeansVariant::Forgy).name(), "forgy");
    }
}
