//! The real-time matching engine: event → interested subscriptions.
//!
//! Section 4.6 of the paper reduces matching to "searching among
//! aligned rectangles in event space Ω for the rectangles that contain
//! a given point ω", served by a spatial index (the paper names the
//! R*-tree and S-tree). This module wraps the repo's R-tree into a
//! subscription index used by both the simulator's delivery loop and
//! the matchers, replacing the `O(k)` brute-force scan.

use geometry::{Point, Rect};
use spatial::RTree;

use crate::membership::BitSet;

/// An index over all subscription rectangles answering "which
/// subscriptions match this event" in sub-linear time.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
/// use pubsub_core::SubscriptionIndex;
///
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 10.0)?]),
///     Rect::new(vec![Interval::greater_than(5.0)]),
///     Rect::new(vec![Interval::at_most(2.0)]),
/// ];
/// let index = SubscriptionIndex::build(&subs);
/// assert_eq!(index.matching(&Point::new(vec![7.0])), vec![0, 1]);
/// assert_eq!(index.matching(&Point::new(vec![1.0])), vec![0, 2]);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionIndex {
    tree: RTree<usize>,
    len: usize,
}

impl SubscriptionIndex {
    /// Bulk-loads the index from the subscription rectangles
    /// (subscription id = slice position).
    ///
    /// # Panics
    ///
    /// Panics if subscriptions disagree on dimension.
    pub fn build(subscriptions: &[Rect]) -> Self {
        let len = subscriptions.len();
        if len == 0 {
            return SubscriptionIndex {
                tree: RTree::new(1),
                len: 0,
            };
        }
        // lint: allow(no-literal-index): the empty case returned above
        let dim = subscriptions[0].dim();
        let items: Vec<(Rect, usize)> = subscriptions
            .iter()
            .enumerate()
            .map(|(i, r)| {
                assert_eq!(r.dim(), dim, "subscription dimension mismatch");
                (r.clone(), i)
            })
            .collect();
        SubscriptionIndex {
            tree: RTree::bulk_load(dim, items),
            len,
        }
    }

    /// Appends `new_rects` with ids continuing from [`len`](Self::len),
    /// inserting into the existing tree instead of re-bulk-loading the
    /// whole population — the churn path grows the variant index
    /// incrementally with this. Matches equal a fresh
    /// [`build`](Self::build) over the concatenated population:
    /// [`matching_into`](Self::matching_into) sorts its output, so the
    /// differing tree shape is unobservable.
    ///
    /// # Panics
    ///
    /// Panics if a rectangle's dimension differs from the indexed ones.
    pub fn extend(&mut self, new_rects: &[Rect]) {
        if new_rects.is_empty() {
            return;
        }
        if self.len == 0 {
            // The empty index holds a placeholder 1-d tree; replace it
            // wholesale so the first real rectangles fix the dimension.
            *self = Self::build(new_rects);
            return;
        }
        for r in new_rects {
            self.tree.insert(r.clone(), self.len);
            self.len += 1;
        }
    }

    /// Number of indexed subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of the subscriptions whose rectangle contains the event, in
    /// increasing order.
    pub fn matching(&self, event: &Point) -> Vec<usize> {
        let mut ids = Vec::new();
        self.matching_into(event, &mut ids);
        ids
    }

    /// Allocation-free variant of [`matching`](Self::matching): clears
    /// `out` and fills it with the ids of the subscriptions whose
    /// rectangle contains the event, in increasing order. Per-event
    /// loops reuse one buffer across the whole stream instead of
    /// allocating a fresh `Vec` per event.
    pub fn matching_into(&self, event: &Point, out: &mut Vec<usize>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        self.tree.stab_with(event, |&id| out.push(id));
        out.sort_unstable();
    }

    /// The matching set as a membership bit-vector over all
    /// subscriptions.
    pub fn matching_set(&self, event: &Point) -> BitSet {
        if self.len == 0 {
            return BitSet::new(0);
        }
        let mut set = BitSet::new(self.len);
        self.tree.stab_with(event, |&id| {
            set.insert(id);
        });
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    #[test]
    fn empty_index() {
        let idx = SubscriptionIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.matching(&Point::new(vec![0.0])).is_empty());
        assert_eq!(idx.matching_set(&Point::new(vec![0.0])).universe(), 0);
    }

    #[test]
    fn matches_are_sorted_and_exact() {
        let subs = vec![rect1(0.0, 5.0), rect1(3.0, 9.0), rect1(8.0, 12.0)];
        let idx = SubscriptionIndex::build(&subs);
        assert_eq!(idx.matching(&Point::new(vec![4.0])), vec![0, 1]);
        assert_eq!(idx.matching(&Point::new(vec![8.5])), vec![1, 2]);
        assert!(idx.matching(&Point::new(vec![20.0])).is_empty());
        let set = idx.matching_set(&Point::new(vec![4.0]));
        assert_eq!(set.universe(), 3);
        assert!(set.contains(0) && set.contains(1) && !set.contains(2));
    }

    #[test]
    fn matching_into_reuses_and_clears_the_buffer() {
        let subs = vec![rect1(0.0, 5.0), rect1(3.0, 9.0), rect1(8.0, 12.0)];
        let idx = SubscriptionIndex::build(&subs);
        let mut buf = vec![99, 98, 97];
        idx.matching_into(&Point::new(vec![4.0]), &mut buf);
        assert_eq!(buf, vec![0, 1]);
        idx.matching_into(&Point::new(vec![20.0]), &mut buf);
        assert!(buf.is_empty());
        for p in [4.0, 8.5, 20.0, 0.0, 11.9] {
            let p = Point::new(vec![p]);
            idx.matching_into(&p, &mut buf);
            assert_eq!(buf, idx.matching(&p));
        }
    }

    #[test]
    fn extend_matches_a_fresh_build() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut rect2 = |_: usize| {
            Rect::new(
                (0..2)
                    .map(|_| {
                        let a = rng.gen_range(0.0..20.0);
                        Interval::from_unordered(a, a + rng.gen_range(0.1..6.0))
                    })
                    .collect(),
            )
        };
        let mut all: Vec<Rect> = Vec::new();
        // Grow from empty (exercises the placeholder-tree replacement)
        // through several batches of genuine inserts.
        let mut grown = SubscriptionIndex::build(&all);
        let mut rng2 = StdRng::seed_from_u64(30);
        for batch in 0..4 {
            let added: Vec<Rect> = (0..if batch == 0 { 7 } else { 12 })
                .map(&mut rect2)
                .collect();
            grown.extend(&added);
            all.extend(added);
            let fresh = SubscriptionIndex::build(&all);
            assert_eq!(grown.len(), fresh.len());
            for _ in 0..100 {
                let p = Point::new(vec![rng2.gen_range(-1.0..21.0), rng2.gen_range(-1.0..21.0)]);
                assert_eq!(
                    grown.matching(&p),
                    fresh.matching(&p),
                    "batch {batch}, {p:?}"
                );
            }
        }
        grown.extend(&[]);
        assert_eq!(grown.len(), all.len());
    }

    #[test]
    fn agrees_with_brute_force_on_random_4d_subscriptions() {
        let mut rng = StdRng::seed_from_u64(17);
        let subs: Vec<Rect> = (0..300)
            .map(|_| {
                Rect::new(
                    (0..4)
                        .map(|_| {
                            if rng.gen_bool(0.2) {
                                Interval::all()
                            } else {
                                let a = rng.gen_range(0.0..20.0);
                                let b = rng.gen_range(0.0..20.0);
                                Interval::from_unordered(a, b)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let idx = SubscriptionIndex::build(&subs);
        for _ in 0..200 {
            let p = Point::new((0..4).map(|_| rng.gen_range(0.0..20.0)).collect());
            let brute: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(idx.matching(&p), brute);
        }
    }
}
