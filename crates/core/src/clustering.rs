//! Shared clustering types: groups, clusterings, the algorithm trait and
//! the incremental group accumulator the iterative algorithms use.

use std::sync::Arc;

use geometry::Point;

use crate::framework::{GridFramework, HyperCell};
use crate::membership::BitSet;
use crate::waste::{expected_waste, expected_waste_weighted};

/// One multicast group produced by a clustering algorithm: the union of
/// one or more hyper-cells.
#[derive(Debug, Clone)]
pub struct Group {
    /// Indices into [`GridFramework::hypercells`] of the merged cells.
    pub hypercells: Vec<usize>,
    /// Union of the member vectors of those hyper-cells: the subscribers
    /// assigned to this multicast group.
    pub members: BitSet,
    /// Total publication probability over the group's cells.
    pub prob: f64,
}

/// A complete partition of the kept hyper-cells into at most `K` groups.
#[derive(Debug, Clone)]
pub struct Clustering {
    pub(crate) groups: Vec<Group>,
    /// `hyper_to_group[h]` — the group hyper-cell `h` belongs to.
    pub(crate) hyper_to_group: Vec<usize>,
}

impl Clustering {
    /// Builds a clustering from a per-hyper-cell group assignment.
    ///
    /// Group indices must be dense (`0..num_groups`); empty groups are
    /// permitted but dropped.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != framework.hypercells().len()`.
    pub fn from_assignment(framework: &GridFramework, assignment: Vec<usize>) -> Self {
        let hcs = framework.hypercells();
        assert_eq!(assignment.len(), hcs.len(), "one group per kept hyper-cell");
        let num_groups = assignment.iter().copied().max().map_or(0, |g| g + 1);
        let mut groups: Vec<Group> = (0..num_groups)
            .map(|_| Group {
                hypercells: Vec::new(),
                members: BitSet::new(framework.num_subscribers()),
                prob: 0.0,
            })
            .collect();
        for (h, &g) in assignment.iter().enumerate() {
            groups[g].hypercells.push(h);
            groups[g].members.union_with(&hcs[h].members);
            groups[g].prob += hcs[h].prob;
        }
        // Drop empty groups, remapping indices densely.
        let mut remap = vec![usize::MAX; groups.len()];
        let mut kept = Vec::with_capacity(groups.len());
        for (g, group) in groups.into_iter().enumerate() {
            if !group.hypercells.is_empty() {
                remap[g] = kept.len();
                kept.push(group);
            }
        }
        let hyper_to_group = assignment.into_iter().map(|g| remap[g]).collect();
        Clustering {
            groups: kept,
            hyper_to_group,
        }
    }

    /// The groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Number of (non-empty) groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The group that hyper-cell `h` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn group_of_hyper(&self, h: usize) -> usize {
        self.hyper_to_group[h]
    }

    /// The group an event point is matched to, if its cell was kept.
    pub fn group_of_point(&self, framework: &GridFramework, p: &Point) -> Option<usize> {
        framework.hyper_of_point(p).map(|h| self.group_of_hyper(h))
    }

    /// The total expected waste of the clustering: for each hyper-cell,
    /// the publication mass of the cell times the number of group
    /// members *not* interested in it. This is the objective the
    /// heuristics minimize; useful for comparing algorithms directly.
    pub fn total_expected_waste(&self, framework: &GridFramework) -> f64 {
        let hcs = framework.hypercells();
        self.hyper_to_group
            .iter()
            .enumerate()
            .map(|(h, &g)| {
                let hc = &hcs[h];
                let extra = self.groups[g].members.difference_count(&hc.members);
                hc.prob * extra as f64
            })
            .sum()
    }
}

/// A subscription clustering algorithm over the grid framework.
///
/// Implementations: K-means (MacQueen), Forgy K-means, pairwise grouping
/// (exact and approximate) and MST clustering. The `k` argument is the
/// number of available multicast groups.
pub trait ClusteringAlgorithm: Sync {
    /// A short human-readable name for reports ("kmeans", "forgy", ...).
    fn name(&self) -> &'static str;

    /// Partitions the framework's hyper-cells into at most `k` groups.
    fn cluster(&self, framework: &GridFramework, k: usize) -> Clustering;
}

/// Incrementally maintained group state: per-subscriber containment
/// counts so hyper-cells can be added *and removed* in
/// `O(|cell members|)`, plus the group size and probability mass the
/// expected-waste distance needs.
#[derive(Debug, Clone)]
pub(crate) struct GroupAccumulator {
    /// How many of the group's hyper-cells contain each subscriber.
    counts: Vec<u32>,
    /// Per-slot multiplicities for class-universe frameworks; `None`
    /// (every slot counts 1) for concrete frameworks.
    weights: Option<Arc<Vec<u64>>>,
    /// Weighted number of subscribers with `counts > 0`. Equal to the
    /// plain count when `weights` is `None`.
    size: u64,
    /// Number of hyper-cells in the group.
    num_cells: usize,
    /// Total publication probability.
    prob: f64,
}

impl GroupAccumulator {
    /// An unweighted accumulator over a bare subscriber universe
    /// (tests only; production paths go through
    /// [`GroupAccumulator::for_framework`]).
    #[cfg(test)]
    pub(crate) fn new(num_subscribers: usize) -> Self {
        GroupAccumulator {
            counts: vec![0; num_subscribers],
            weights: None,
            size: 0,
            num_cells: 0,
            prob: 0.0,
        }
    }

    /// An accumulator over `framework`'s subscriber universe, weighted
    /// when the framework is a class-universe (aggregated) build.
    pub(crate) fn for_framework(framework: &GridFramework) -> Self {
        GroupAccumulator {
            counts: vec![0; framework.num_subscribers()],
            weights: framework.weights.clone(),
            size: 0,
            num_cells: 0,
            prob: 0.0,
        }
    }

    #[inline]
    fn weight_of(&self, m: usize) -> u64 {
        match &self.weights {
            None => 1,
            Some(w) => w[m],
        }
    }

    pub(crate) fn add(&mut self, hc: &HyperCell) {
        for m in hc.members.iter() {
            if self.counts[m] == 0 {
                self.size += self.weight_of(m);
            }
            self.counts[m] += 1;
        }
        self.num_cells += 1;
        self.prob += hc.prob;
    }

    pub(crate) fn remove(&mut self, hc: &HyperCell) {
        for m in hc.members.iter() {
            debug_assert!(self.counts[m] > 0, "removing a cell that was never added");
            self.counts[m] -= 1;
            if self.counts[m] == 0 {
                self.size -= self.weight_of(m);
            }
        }
        self.num_cells -= 1;
        self.prob -= hc.prob;
    }

    pub(crate) fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Expected-waste distance between a hyper-cell and this group:
    /// `p(hc)·|group \ hc| + p(group)·|hc \ group|`, with set sizes
    /// weighted by the per-slot multiplicities when present. The
    /// weighted integers equal the concrete counts, so the `f64` result
    /// is bit-identical to the expanded computation.
    pub(crate) fn distance_to(&self, hc: &HyperCell) -> f64 {
        let mut in_both = 0u64;
        let mut only_cell = 0u64;
        for m in hc.members.iter() {
            if self.counts[m] > 0 {
                in_both += self.weight_of(m);
            } else {
                only_cell += self.weight_of(m);
            }
        }
        let only_group = self.size - in_both;
        hc.prob * only_group as f64 + self.prob * only_cell as f64
    }

    /// The materialized membership vector (union over the group's cells).
    #[cfg(test)]
    pub(crate) fn members(&self) -> BitSet {
        BitSet::from_members(
            self.counts.len(),
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| i),
        )
    }
}

/// Distance between two materialized groups (used by the hierarchical
/// algorithms): plain expected waste on their member vectors, weighted
/// by the per-slot multiplicities when clustering a class universe.
pub(crate) fn group_distance(
    pa: f64,
    a: &BitSet,
    pb: f64,
    b: &BitSet,
    weights: Option<&[u64]>,
) -> f64 {
    match weights {
        None => expected_waste(pa, a, pb, b),
        Some(w) => expected_waste_weighted(pa, a, pb, b, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellProbability;
    use geometry::{Grid, Interval, Rect};

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn framework() -> GridFramework {
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        // Three membership classes: {0,1} on (0,4], {1} on (4,7], {2} on (7,10].
        let subs = vec![rect1(0.0, 7.0), rect1(0.0, 4.0), rect1(7.0, 10.0)];
        let probs = CellProbability::uniform(&grid);
        GridFramework::build(grid, &subs, &probs, None)
    }

    #[test]
    fn from_assignment_builds_groups() {
        let fw = framework();
        assert_eq!(fw.hypercells().len(), 3);
        let c = Clustering::from_assignment(&fw, vec![0, 0, 1]);
        assert_eq!(c.num_groups(), 2);
        // Group 0 contains hyper-cells 0 and 1; its members are a union.
        let g0 = &c.groups()[0];
        assert_eq!(g0.hypercells, vec![0, 1]);
        assert_eq!(
            g0.members.count(),
            fw.hypercells()[0]
                .members
                .union_count(&fw.hypercells()[1].members)
        );
        assert_eq!(c.group_of_hyper(2), 1);
    }

    #[test]
    fn empty_groups_are_dropped_and_remapped() {
        let fw = framework();
        let c = Clustering::from_assignment(&fw, vec![2, 2, 0]);
        assert_eq!(c.num_groups(), 2);
        assert_eq!(c.group_of_hyper(0), c.group_of_hyper(1));
        assert_ne!(c.group_of_hyper(0), c.group_of_hyper(2));
    }

    #[test]
    fn singleton_groups_have_zero_waste() {
        let fw = framework();
        let c = Clustering::from_assignment(&fw, vec![0, 1, 2]);
        assert_eq!(c.total_expected_waste(&fw), 0.0);
    }

    #[test]
    fn merging_disjoint_memberships_costs_waste() {
        let fw = framework();
        let merged = Clustering::from_assignment(&fw, vec![0, 0, 0]);
        assert!(merged.total_expected_waste(&fw) > 0.0);
    }

    #[test]
    fn group_of_point_follows_cells() {
        let fw = framework();
        let c = Clustering::from_assignment(&fw, vec![0, 0, 1]);
        let g_left = c.group_of_point(&fw, &Point::new(vec![1.0]));
        let g_right = c.group_of_point(&fw, &Point::new(vec![9.0]));
        assert!(g_left.is_some());
        assert!(g_right.is_some());
        assert_ne!(g_left, g_right);
        // Outside the grid: no group.
        assert_eq!(c.group_of_point(&fw, &Point::new(vec![100.0])), None);
    }

    #[test]
    fn accumulator_tracks_members_through_moves() {
        let fw = framework();
        let hcs = fw.hypercells();
        let mut acc = GroupAccumulator::new(fw.num_subscribers());
        acc.add(&hcs[0]);
        acc.add(&hcs[1]);
        let full = acc.members();
        assert_eq!(full.count(), hcs[0].members.union_count(&hcs[1].members));
        acc.remove(&hcs[1]);
        assert_eq!(acc.members(), hcs[0].members);
        assert_eq!(acc.num_cells(), 1);
    }

    #[test]
    fn accumulator_distance_matches_expected_waste() {
        let fw = framework();
        let hcs = fw.hypercells();
        let mut acc = GroupAccumulator::new(fw.num_subscribers());
        acc.add(&hcs[0]);
        let d = acc.distance_to(&hcs[1]);
        let expected = expected_waste(hcs[1].prob, &hcs[1].members, hcs[0].prob, &hcs[0].members);
        assert!((d - expected).abs() < 1e-12, "{d} vs {expected}");
    }
}
