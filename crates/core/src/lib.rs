//! Subscription clustering for content-based publish-subscribe systems.
//!
//! This crate implements the primary contribution of *"Clustering
//! Algorithms for Content-Based Publication-Subscription Systems"*
//! (Riabov, Liu, Wolf, Yu, Zhang — ICDCS 2002): algorithms that
//! precompute a limited number `K` of multicast groups with as much
//! common interest as possible, given the totality of subscribers'
//! interest rectangles.
//!
//! # The grid-based family
//!
//! [`GridFramework`] rasterizes subscriptions onto a regular grid,
//! merges cells with identical subscriber membership into hyper-cells,
//! ranks them by popularity and truncates. Clustering heuristics then
//! partition the hyper-cells under the publication-weighted
//! expected-waste distance ([`expected_waste`]):
//!
//! * [`KMeans`] — MacQueen and Forgy variants (Section 4.2);
//! * [`PairwiseGrouping`] — exact and approximate (secretary-rule)
//!   bottom-up merging (Section 4.3);
//! * [`MstClustering`] — Kruskal/single-linkage components
//!   (Section 4.4).
//!
//! [`GridMatcher`] maps each published event to its cell's group and
//! applies the threshold optimization of Figure 5.
//!
//! # The No-Loss algorithm
//!
//! [`NoLossClustering`] (Section 4.5) clusters *intersections of
//! interest rectangles* instead of grid cells, guaranteeing that every
//! subscriber receiving a multicast is interested in the event.
//!
//! # Example
//!
//! ```
//! use geometry::{Grid, Interval, Rect};
//! use pubsub_core::{
//!     CellProbability, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant,
//! };
//!
//! // Two interest communities...
//! let subs = vec![
//!     Rect::new(vec![Interval::new(0.0, 4.0)?]),
//!     Rect::new(vec![Interval::new(1.0, 5.0)?]),
//!     Rect::new(vec![Interval::new(7.0, 10.0)?]),
//! ];
//! let grid = Grid::cube(0.0, 10.0, 1, 10)?;
//! let probs = CellProbability::uniform(&grid);
//! let fw = GridFramework::build(grid, &subs, &probs, None);
//! // ...clustered into two multicast groups.
//! let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 2);
//! assert_eq!(clustering.num_groups(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod batch;
mod clustering;
mod compressed;
mod counting;
mod dispatch;
mod distance;
mod dynamic;
mod framework;
mod intern;
mod kmeans;
mod knob;
mod match_index;
mod matching;
mod membership;
mod mst_cluster;
mod noloss;
mod pairs;
pub mod parallel;
mod service;
mod snapshot;
mod validate;
mod waste;

pub use aggregate::{
    AggregateChurnReport, AggregatePlan, AggregateScratch, Aggregation, ShardedAggregate,
};
pub use batch::BatchScratch;
pub use clustering::{Clustering, ClusteringAlgorithm, Group};
pub use compressed::CompressedSet;
pub use counting::CountingMatcher;
pub use dispatch::{DispatchPlan, DispatchScratch, NoLossDispatchPlan, DENSE_TABLE_MAX_CELLS};
pub use distance::DistanceMatrix;
pub use dynamic::{
    DynamicClustering, DynamicError, RebalanceError, RebalanceStats, SubscriptionId,
};
pub use framework::{CellProbability, DeltaReport, FrameworkStats, GridFramework, HyperCell};
pub use intern::{MembershipId, MembershipPool};
pub use kmeans::{KMeans, KMeansVariant};
pub use knob::env_knob;
pub use match_index::SubscriptionIndex;
pub use matching::{Delivery, GridMatcher};
pub use membership::BitSet;
pub use mst_cluster::MstClustering;
pub use noloss::{NoLossClustering, NoLossConfig, NoLossRegion};
pub use pairs::{PairsStrategy, PairwiseGrouping};
pub use service::{
    BrokerService, EventRecord, RebalanceAbort, ServiceConfig, ServiceReport, ShedPolicy,
    SwapReport,
};
pub use snapshot::{SnapshotCell, SnapshotReader};
pub use validate::{ValidationError, Validator, Violation};
pub use waste::{expected_waste, popularity};
