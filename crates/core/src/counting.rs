//! The counting matching algorithm: per-attribute predicate indexes
//! plus a match counter per subscription.
//!
//! This is the matching style of the literature the paper builds on
//! (Aguilera et al. [2]; Fabret et al. [7]): instead of treating a
//! subscription as an opaque rectangle, index each attribute's
//! predicates separately — an interval tree per dimension — and count,
//! per event, how many of a subscription's *bounded* predicates are
//! satisfied. A subscription matches when all of them are (don't-care
//! predicates are satisfied by definition and never enter an index).
//!
//! Complexity per event: `O(Σ_d (log n + hits_d))` plus the counter
//! sweep — independent of the number of dimensions a subscription
//! wildcards, which is what makes it fast on the paper's workloads
//! where 10–35% of predicates are `*`.

use geometry::{Point, Rect};
use spatial::IntervalTree;

/// A counting-based subscription matcher.
///
/// Functionally identical to [`crate::SubscriptionIndex`] (and tested
/// against it); the two differ in data layout and scaling behaviour.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
/// use pubsub_core::CountingMatcher;
///
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 10.0)?, Interval::all()]),
///     Rect::new(vec![Interval::all(), Interval::greater_than(5.0)]),
/// ];
/// let matcher = CountingMatcher::build(&subs);
/// assert_eq!(matcher.matching(&Point::new(vec![3.0, 9.0])), vec![0, 1]);
/// assert_eq!(matcher.matching(&Point::new(vec![3.0, 2.0])), vec![0]);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CountingMatcher {
    /// One interval tree per dimension over the *bounded* predicates,
    /// tagged with the owning subscription id.
    dims: Vec<IntervalTree<usize>>,
    /// Number of bounded (non-`*`) predicates per subscription; a
    /// subscription with `required[i] == 0` matches every event.
    required: Vec<u32>,
    /// Scratch counters, one per subscription.
    len: usize,
}

impl CountingMatcher {
    /// Builds the per-dimension indexes.
    ///
    /// # Panics
    ///
    /// Panics if subscriptions disagree on dimension.
    pub fn build(subscriptions: &[Rect]) -> Self {
        let len = subscriptions.len();
        if len == 0 {
            return CountingMatcher {
                dims: Vec::new(),
                required: Vec::new(),
                len: 0,
            };
        }
        // lint: allow(no-literal-index): the empty case returned above
        let dim = subscriptions[0].dim();
        let mut required = vec![0u32; len];
        let mut per_dim: Vec<Vec<(geometry::Interval, usize)>> = vec![Vec::new(); dim];
        for (i, rect) in subscriptions.iter().enumerate() {
            assert_eq!(rect.dim(), dim, "subscription dimension mismatch");
            for (d, iv) in rect.intervals().iter().enumerate() {
                // A predicate is "bounded" when it constrains anything.
                if iv.lo().is_finite() || iv.hi().is_finite() {
                    required[i] += 1;
                    per_dim[d].push((*iv, i));
                }
            }
        }
        CountingMatcher {
            dims: per_dim.into_iter().map(IntervalTree::build).collect(),
            required,
            len,
        }
    }

    /// Number of indexed subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matcher is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of the subscriptions matching the event, in increasing
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the event dimension differs from the subscriptions'.
    pub fn matching(&self, event: &Point) -> Vec<usize> {
        if self.len == 0 {
            return Vec::new();
        }
        assert_eq!(event.dim(), self.dims.len(), "event dimension mismatch");
        let mut counts = vec![0u32; self.len];
        for (d, tree) in self.dims.iter().enumerate() {
            for &i in tree.stab(event[d]) {
                counts[i] += 1;
            }
        }
        counts
            .iter()
            .zip(self.required.iter())
            .enumerate()
            .filter(|(_, (c, r))| c == r)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;
    use rand::prelude::*;

    #[test]
    fn empty_matcher() {
        let m = CountingMatcher::build(&[]);
        assert!(m.is_empty());
        assert!(m.matching(&Point::new(vec![0.0])).is_empty());
    }

    #[test]
    fn all_wildcard_subscription_matches_everything() {
        let m = CountingMatcher::build(&[Rect::all(3)]);
        assert_eq!(m.matching(&Point::new(vec![1.0, -100.0, 1e6])), vec![0]);
    }

    #[test]
    fn one_sided_predicates_count_as_bounded() {
        let subs = vec![Rect::new(vec![
            Interval::greater_than(5.0),
            Interval::at_most(3.0),
        ])];
        let m = CountingMatcher::build(&subs);
        assert_eq!(m.matching(&Point::new(vec![6.0, 2.0])), vec![0]);
        assert!(m.matching(&Point::new(vec![6.0, 4.0])).is_empty());
        assert!(m.matching(&Point::new(vec![4.0, 2.0])).is_empty());
    }

    #[test]
    fn agrees_with_subscription_index_on_random_workloads() {
        let mut rng = StdRng::seed_from_u64(41);
        let subs: Vec<Rect> = (0..300)
            .map(|_| {
                Rect::new(
                    (0..4)
                        .map(|_| {
                            let c: f64 = rng.gen();
                            if c < 0.25 {
                                Interval::all()
                            } else if c < 0.35 {
                                Interval::greater_than(rng.gen_range(0.0..20.0))
                            } else if c < 0.45 {
                                Interval::at_most(rng.gen_range(0.0..20.0))
                            } else {
                                let a = rng.gen_range(0.0..20.0);
                                let b = rng.gen_range(0.0..20.0);
                                Interval::from_unordered(a, b)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let counting = CountingMatcher::build(&subs);
        let rtree = crate::SubscriptionIndex::build(&subs);
        for _ in 0..300 {
            let p = Point::new((0..4).map(|_| rng.gen_range(-2.0..22.0)).collect());
            assert_eq!(counting.matching(&p), rtree.matching(&p));
        }
    }
}
