//! Minimum-spanning-tree clustering (Section 4.4 of the paper; Zahn's
//! method).
//!
//! Hyper-cells are vertices of a complete graph whose edge lengths are
//! the pairwise expected-waste distances. Kruskal's algorithm is run in
//! non-decreasing edge order and stopped when exactly `K` connected
//! components remain (Figure 3).
//!
//! Implementation note: stopping Kruskal at `K` components on a complete
//! graph yields exactly the components obtained by building the full MST
//! and deleting its `K-1` heaviest edges (single-linkage clustering).
//! We therefore build the MST with Prim in `O(l²)` — no `O(l²)` edge
//! sort, no `O(l²)` edge materialization — and cut. Unlike pairwise
//! grouping, distances are always between *cells*, never between merged
//! groups, which is what makes the pre-sorted/cut formulation valid and
//! the algorithm fast (the paper makes the same observation).

use crate::clustering::{group_distance, Clustering, ClusteringAlgorithm};
use crate::framework::GridFramework;
use crate::parallel;

/// Below this vertex count the Prim relaxation row is computed serially
/// even without the distance cache — the row is too cheap to amortize a
/// thread fan-out per iteration.
const PAR_RELAX_MIN_VERTICES: usize = 2048;

/// The MST clustering algorithm.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{CellProbability, ClusteringAlgorithm, GridFramework, MstClustering};
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 4.0)?]),
///     Rect::new(vec![Interval::new(6.0, 10.0)?]),
/// ];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// let c = MstClustering::new().cluster(&fw, 2);
/// assert_eq!(c.num_groups(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MstClustering;

impl MstClustering {
    /// Creates the algorithm.
    pub fn new() -> Self {
        MstClustering
    }
}

impl ClusteringAlgorithm for MstClustering {
    fn name(&self) -> &'static str {
        "mst"
    }

    fn cluster(&self, framework: &GridFramework, k: usize) -> Clustering {
        let hcs = framework.hypercells();
        let l = hcs.len();
        if l == 0 {
            return Clustering::from_assignment(framework, Vec::new());
        }
        let k = k.max(1).min(l);

        // Prim's algorithm over the implicit complete graph. MST edges
        // are always between hyper-cells (never merged groups), so every
        // distance is served by the shared cache when it fits; above the
        // cache cap each relaxation row is recomputed, in parallel for
        // large graphs.
        let matrix = framework.distance_matrix();
        let class_weights = framework.weights_ref();
        let d = |i: usize, j: usize| match matrix {
            Some(m) => m.get(i, j),
            None => group_distance(
                hcs[i].prob,
                &hcs[i].members,
                hcs[j].prob,
                &hcs[j].members,
                class_weights,
            ),
        };
        let mut in_tree = vec![false; l];
        let mut best = vec![f64::INFINITY; l];
        let mut best_from = vec![0usize; l];
        // lint: allow(no-literal-index): l >= 1 (the l == 0 case returned above)
        in_tree[0] = true;
        // With the cache a distance is a load — a parallel row would be
        // all fan-out overhead. Without it each d() walks two membership
        // vectors, which dominates for big graphs.
        let par_rows = matrix.is_none() && l >= PAR_RELAX_MIN_VERTICES;
        let row = |pick: usize, in_tree: &[bool]| -> Vec<f64> {
            if par_rows {
                parallel::par_map_indexed(l, 512, |j| {
                    if in_tree[j] {
                        f64::INFINITY
                    } else {
                        d(pick, j)
                    }
                })
            } else {
                (0..l)
                    .map(|j| {
                        if in_tree[j] {
                            f64::INFINITY
                        } else {
                            d(pick, j)
                        }
                    })
                    .collect()
            }
        };
        let first_row = row(0, &in_tree);
        best[1..].copy_from_slice(&first_row[1..]);
        // MST edges as (weight, u, v).
        let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(l.saturating_sub(1));
        for _ in 1..l {
            let mut pick = usize::MAX;
            let mut pick_w = f64::INFINITY;
            for j in 0..l {
                if !in_tree[j] && best[j] < pick_w {
                    pick_w = best[j];
                    pick = j;
                }
            }
            debug_assert_ne!(pick, usize::MAX);
            in_tree[pick] = true;
            edges.push((pick_w, best_from[pick], pick));
            // Relax: the row of candidate weights is computed first (in
            // parallel when worthwhile — each entry is independent), then
            // applied in index order exactly as the serial loop would.
            let weights = row(pick, &in_tree);
            for j in 0..l {
                if !in_tree[j] {
                    let w = weights[j];
                    if w < best[j] {
                        best[j] = w;
                        best_from[j] = pick;
                    }
                }
            }
        }

        // Cut the K-1 heaviest MST edges: sort ascending, keep the
        // lightest l-K edges, union-find the components.
        edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distance is never NaN"));
        let keep = l - k;
        let mut parent: Vec<usize> = (0..l).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(_, u, v) in edges.iter().take(keep) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        // Dense component ids → assignment.
        let mut comp_of_root = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(l);
        for h in 0..l {
            let root = find(&mut parent, h);
            let next = comp_of_root.len();
            let id = *comp_of_root.entry(root).or_insert(next);
            assignment.push(id);
        }
        Clustering::from_assignment(framework, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellProbability;
    use geometry::{Grid, Interval, Rect};

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn two_communities() -> GridFramework {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut subs = Vec::new();
        for i in 0..5 {
            subs.push(rect1(i as f64 * 0.5, 8.0 - i as f64 * 0.5));
        }
        for i in 0..5 {
            subs.push(rect1(12.0 + i as f64 * 0.5, 20.0 - i as f64 * 0.5));
        }
        let probs = CellProbability::uniform(&grid);
        GridFramework::build(grid, &subs, &probs, None)
    }

    #[test]
    fn separates_communities_at_k2() {
        let fw = two_communities();
        let c = MstClustering::new().cluster(&fw, 2);
        assert_eq!(c.num_groups(), 2);
        for g in c.groups() {
            let low = g.members.iter().filter(|&m| m < 5).count();
            let high = g.members.iter().filter(|&m| m >= 5).count();
            assert!(low == 0 || high == 0, "mixed group");
        }
    }

    #[test]
    fn produces_exactly_k_components() {
        let fw = two_communities();
        let l = fw.hypercells().len();
        for k in 1..=l {
            let c = MstClustering::new().cluster(&fw, k);
            assert_eq!(c.num_groups(), k, "k={k}");
        }
    }

    #[test]
    fn monotone_refinement() {
        // The defining property of MST clustering: the K+1-clustering
        // refines the K-clustering (new groups are formed by subdividing
        // existing ones — Section 6 of the paper).
        let fw = two_communities();
        let alg = MstClustering::new();
        let l = fw.hypercells().len();
        for k in 1..l {
            let coarse = alg.cluster(&fw, k);
            let fine = alg.cluster(&fw, k + 1);
            for fine_g in fine.groups() {
                let covered = coarse
                    .groups()
                    .iter()
                    .any(|cg| fine_g.hypercells.iter().all(|h| cg.hypercells.contains(h)));
                assert!(covered, "k={k}: fine group not nested");
            }
        }
    }

    #[test]
    fn k_equals_l_is_zero_waste() {
        let fw = two_communities();
        let l = fw.hypercells().len();
        let c = MstClustering::new().cluster(&fw, l);
        assert_eq!(c.total_expected_waste(&fw), 0.0);
    }

    #[test]
    fn empty_framework() {
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &[], &probs, None);
        let c = MstClustering::new().cluster(&fw, 3);
        assert_eq!(c.num_groups(), 0);
    }
}
