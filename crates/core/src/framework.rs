//! The grid-based clustering framework (Section 4.1 of the paper).
//!
//! The pipeline turns raw subscriptions into the objects the clustering
//! heuristics operate on:
//!
//! 1. **rasterize** every subscription rectangle onto a regular grid,
//!    building a membership bit-vector per cell;
//! 2. **merge** cells with identical membership into *hyper-cells*
//!    (combining them costs zero expected waste);
//! 3. **rank** hyper-cells by popularity `r(a) = p_p(a)·|s(a)|` and
//!    keep only the most popular ones ("the rest [is left] for
//!    unicast") — the paper's *number of rectangles* parameter that
//!    Figures 8 and 10 sweep.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use geometry::{CellId, Grid, Point, Rect};

use crate::distance::DistanceMatrix;
use crate::intern::{MembershipId, MembershipPool};
use crate::membership::BitSet;
use crate::parallel;
use crate::waste::{popularity, popularity_weighted};

/// Default cap (in hyper-cells) above which [`GridFramework`] declines to
/// materialize the pairwise distance cache (`l(l−1)/2` f64s ≈ 150 MB at
/// 6144 cells). Override with `PUBSUB_DISTANCE_CACHE_CELLS`; 0 disables
/// the cache entirely.
const DEFAULT_DISTANCE_CACHE_CELLS: usize = 6144;

fn distance_cache_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        crate::env_knob(
            "PUBSUB_DISTANCE_CACHE_CELLS",
            DEFAULT_DISTANCE_CACHE_CELLS,
            |s| s.parse().ok(),
        )
    })
}

/// Per-cell publication probability `p_p` over a grid.
///
/// The paper weighs distances and popularity by the publication density;
/// the simulator estimates it empirically from a sample of events
/// ([`CellProbability::empirical`]) or assumes a flat distribution
/// ([`CellProbability::uniform`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CellProbability {
    probs: Vec<f64>,
}

impl CellProbability {
    /// A uniform distribution: every cell gets `1 / num_cells`.
    pub fn uniform(grid: &Grid) -> Self {
        let n = grid.num_cells();
        CellProbability {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// An empirical estimate from a sample of event points: each cell's
    /// probability is its share of the in-bounds sample. Out-of-bounds
    /// points are ignored. An empty (or fully out-of-bounds) sample
    /// falls back to the uniform distribution.
    pub fn empirical<'a>(grid: &Grid, sample: impl IntoIterator<Item = &'a Point>) -> Self {
        let mut counts = vec![0usize; grid.num_cells()];
        let mut total = 0usize;
        for p in sample {
            if let Some(c) = grid.cell_of(p) {
                counts[c.index()] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return CellProbability::uniform(grid);
        }
        CellProbability {
            probs: counts
                .into_iter()
                .map(|c| c as f64 / total as f64)
                .collect(),
        }
    }

    /// The probability mass of cell `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn prob(&self, c: CellId) -> f64 {
        self.probs[c.index()]
    }

    /// From an arbitrary mass function over cell rectangles — e.g. the
    /// analytic publication density of a workload model. Masses are
    /// normalized over the grid; if the function assigns zero mass
    /// everywhere, falls back to uniform.
    ///
    /// # Panics
    ///
    /// Panics if the function returns a negative or NaN mass.
    pub fn from_mass_fn(grid: &Grid, mass: impl Fn(&Rect) -> f64) -> Self {
        let mut probs: Vec<f64> = grid
            .iter()
            .map(|c| {
                let m = mass(&grid.cell_rect(c));
                assert!(m >= 0.0, "cell mass must be non-negative, got {m}");
                m
            })
            .collect();
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return CellProbability::uniform(grid);
        }
        for p in &mut probs {
            *p /= total;
        }
        CellProbability { probs }
    }
}

/// A maximal set of grid cells sharing one membership vector. Combining
/// them into any group is free (zero expected waste), so hyper-cells are
/// the atomic clustering unit; the paper calls them "rectangles" when
/// counting how many are fed to an algorithm.
#[derive(Debug, Clone)]
pub struct HyperCell {
    /// The grid cells merged into this hyper-cell.
    pub cells: Vec<CellId>,
    /// The common membership vector.
    pub members: BitSet,
    /// Total publication probability over the member cells.
    pub prob: f64,
}

impl HyperCell {
    /// The popularity rating `r = p_p · |s|`.
    pub fn popularity(&self) -> f64 {
        popularity(self.prob, &self.members)
    }
}

/// Summary statistics of a prepared [`GridFramework`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkStats {
    /// Hyper-cells kept after merging and truncation.
    pub num_hypercells: usize,
    /// Raw grid cells those hyper-cells cover.
    pub num_cells: usize,
    /// Total publication probability mass of the kept cells (the
    /// fraction of events that can be matched to a group at all).
    pub covered_probability: f64,
    /// Mean membership-vector size.
    pub mean_members: f64,
    /// Largest membership-vector size.
    pub max_members: usize,
}

/// The prepared grid framework: hyper-cells ranked by popularity plus
/// the cell → hyper-cell index used at matching time.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{CellProbability, GridFramework};
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 5.0)?]),
///     Rect::new(vec![Interval::new(0.0, 5.0)?]),
///     Rect::new(vec![Interval::new(5.0, 10.0)?]),
/// ];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// // Cells (0,5] share membership {0,1}; cells (5,10] share {2}.
/// assert_eq!(fw.hypercells().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridFramework {
    pub(crate) grid: Grid,
    pub(crate) num_subscribers: usize,
    /// Per-subscriber multiplicities for class-universe frameworks built
    /// by the aggregation layer (`None` for ordinary concrete builds).
    /// A weighted framework ranks and measures hyper-cells as if member
    /// `i` were `weights[i]` concrete subscribers, which makes its
    /// clustering bit-identical to the expanded concrete clustering.
    pub(crate) weights: Option<Arc<Vec<u64>>>,
    pub(crate) hypercells: Vec<HyperCell>,
    pub(crate) cell_to_hyper: HashMap<CellId, usize>,
    /// Lazily-built pairwise distance cache, shared by clones. `None`
    /// once initialized means "too large to cache" — consumers fall back
    /// to computing distances on the fly.
    pub(crate) distances: OnceLock<Option<Arc<DistanceMatrix>>>,
    /// Whether the framework holds *every* merged hyper-cell (merged
    /// build, nothing truncated or filtered) — the precondition for
    /// [`GridFramework::apply_delta`], which assumes each live cell is
    /// mapped and each membership vector appears exactly once.
    pub(crate) complete: bool,
    /// Interning state carried across incremental updates; lazily
    /// initialized by the first [`GridFramework::apply_delta`].
    pub(crate) incremental: Option<IncrementalState>,
}

/// Hash-consed membership state the incremental path keeps between
/// deltas: the pool of distinct vectors plus each hyper-cell's id.
#[derive(Debug, Clone)]
pub(crate) struct IncrementalState {
    pub(crate) pool: MembershipPool,
    /// Interned id per hyper-cell, aligned with `hypercells`.
    pub(crate) hyper_ids: Vec<MembershipId>,
}

/// Per-cell bit flips accumulated from the delta rectangles.
#[derive(Default)]
struct CellOps {
    clears: Vec<usize>,
    sets: Vec<usize>,
}

/// A hyper-cell being reassembled during [`GridFramework::apply_delta`].
struct GroupBuild {
    cells: Vec<CellId>,
    members: Option<BitSet>,
    prob: f64,
    old: Option<usize>,
    touched: bool,
}

/// Outcome summary of one [`GridFramework::apply_delta`] call, with the
/// old↔new hyper-cell correspondence warm starts need.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Grid cells whose membership vector actually changed.
    pub dirty_cells: usize,
    /// New hyper-cells whose content differs from every old hyper-cell.
    pub changed_hypercells: usize,
    /// New hyper-cells byte-identical to an old hyper-cell.
    pub unchanged_hypercells: usize,
    /// Distance-cache entries copied from the previous matrix instead
    /// of recomputed (0 when no cache was materialized before).
    pub reused_distances: usize,
    /// For each new hyper-cell index, the old hyper-cell it is
    /// byte-identical to (`None` for changed hyper-cells).
    pub old_index: Vec<Option<usize>>,
    /// The pre-delta hyper-cell of every cell that now sits in a
    /// *changed* hyper-cell and was mapped before the delta (cells of
    /// previously empty regions are absent).
    pub old_hyper_of_cell: HashMap<CellId, usize>,
}

impl GridFramework {
    /// Builds the framework: rasterize, merge, rank, truncate.
    ///
    /// `max_cells` is the paper's *number of rectangles* knob — at most
    /// that many hyper-cells (by decreasing popularity) are kept; `None`
    /// keeps them all. Cells no subscriber overlaps are dropped outright
    /// (events there interest nobody).
    ///
    /// # Panics
    ///
    /// Panics if a subscription's dimension differs from the grid's.
    pub fn build(
        grid: Grid,
        subscriptions: &[Rect],
        probs: &CellProbability,
        max_cells: Option<usize>,
    ) -> Self {
        // Rasterization is embarrassingly parallel: each subscription's
        // overlapping-cell set is independent of the others.
        let cell_sets: Vec<Vec<CellId>> =
            parallel::par_map(subscriptions, parallel::MIN_PARALLEL_LEN, |rect| {
                grid.cells_overlapping(rect)
            });
        Self::build_from_cells(grid, &cell_sets, probs, max_cells)
    }

    /// [`GridFramework::build`] over a *class* universe from
    /// pre-rasterized cell sets: slot `i` stands for `weights[i]`
    /// concrete subscribers. Ranking, distances and popularity all use
    /// the weighted counts, so the resulting clustering is
    /// bit-identical to building over the expanded concrete population.
    /// The aggregation layer rasterizes itself so it can hand
    /// tombstoned (zero-weight) classes an empty cell set, keeping cold
    /// rebuilds consistent with churned frameworks whose dead-class
    /// bits were cleared in place.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != cell_sets.len()` or if a cell id is
    /// out of range for the grid.
    pub(crate) fn build_weighted_from_cells(
        grid: Grid,
        cell_sets: &[Vec<CellId>],
        weights: Arc<Vec<u64>>,
        probs: &CellProbability,
        max_cells: Option<usize>,
    ) -> Self {
        assert_eq!(
            weights.len(),
            cell_sets.len(),
            "one weight per class subscription"
        );
        Self::build_from_cells_impl(grid, cell_sets, probs, max_cells, Some(weights))
    }

    /// Builds the framework *without* the hyper-cell merge step: every
    /// non-empty cell becomes its own single-cell "hyper-cell". Same
    /// matching semantics, strictly more clustering input — the
    /// ablation for the paper's Section 4.1 implementation note that
    /// merging identical membership vectors is free.
    pub fn build_unmerged(
        grid: Grid,
        subscriptions: &[Rect],
        probs: &CellProbability,
        max_cells: Option<usize>,
    ) -> Self {
        let num_subscribers = subscriptions.len();
        let mut cell_members: HashMap<CellId, BitSet> = HashMap::new();
        for (i, rect) in subscriptions.iter().enumerate() {
            for cell in grid.cells_overlapping(rect) {
                cell_members
                    .entry(cell)
                    .or_insert_with(|| BitSet::new(num_subscribers))
                    .insert(i);
            }
        }
        let mut hypercells: Vec<HyperCell> = cell_members
            // lint: allow(hash-order): totally sorted by (popularity, first
            // cell) below
            .into_iter()
            .map(|(cell, members)| HyperCell {
                prob: probs.prob(cell),
                cells: vec![cell],
                members,
            })
            .collect();
        hypercells.sort_by(|a, b| {
            b.popularity()
                .partial_cmp(&a.popularity())
                .expect("popularity is never NaN")
                // lint: allow(no-literal-index): hyper-cells always hold >= 1 cell
                .then_with(|| a.cells[0].cmp(&b.cells[0]))
        });
        if let Some(max) = max_cells {
            hypercells.truncate(max);
        }
        let cell_to_hyper = hypercells
            .iter()
            .enumerate()
            // lint: allow(no-literal-index): hyper-cells always hold >= 1 cell
            .map(|(h, hc)| (hc.cells[0], h))
            .collect();
        GridFramework {
            grid,
            num_subscribers,
            weights: None,
            hypercells,
            cell_to_hyper,
            distances: OnceLock::new(),
            // Unmerged builds break apply_delta's "one hyper-cell per
            // membership vector" invariant.
            complete: false,
            incremental: None,
        }
    }

    /// Builds the framework from *arbitrary* per-subscriber cell sets
    /// instead of rectangles — the paper's Section 6 extension: "the
    /// same grid data structures can be created without requiring the
    /// sets to be rectangles". Any interest shape that can be
    /// rasterized (polygons, unions of rectangles, point sets rounded
    /// up to cells) clusters identically.
    ///
    /// # Panics
    ///
    /// Panics if any cell id is out of range for the grid.
    pub fn build_from_cells(
        grid: Grid,
        cell_sets: &[Vec<CellId>],
        probs: &CellProbability,
        max_cells: Option<usize>,
    ) -> Self {
        Self::build_from_cells_impl(grid, cell_sets, probs, max_cells, None)
    }

    /// Shared merged-build body; `weights` selects the class-universe
    /// (weighted) ranking, `None` the ordinary concrete ranking.
    fn build_from_cells_impl(
        grid: Grid,
        cell_sets: &[Vec<CellId>],
        probs: &CellProbability,
        max_cells: Option<usize>,
        weights: Option<Arc<Vec<u64>>>,
    ) -> Self {
        let num_subscribers = cell_sets.len();
        // 1. Rasterize: membership vector per non-empty cell. Subscriber
        //    chunks build partial maps in parallel, then the partials are
        //    OR-merged — set union is order-insensitive, so the result is
        //    identical to the serial insertion loop.
        let build_partial = |range: std::ops::Range<usize>| {
            let mut partial: HashMap<CellId, BitSet> = HashMap::new();
            for i in range {
                for &cell in &cell_sets[i] {
                    assert!(cell.index() < grid.num_cells(), "cell id out of range");
                    partial
                        .entry(cell)
                        .or_insert_with(|| BitSet::new(num_subscribers))
                        .insert(i);
                }
            }
            partial
        };
        let threads = parallel::num_threads();
        let cell_members: HashMap<CellId, BitSet> =
            if threads <= 1 || num_subscribers < parallel::MIN_PARALLEL_LEN {
                build_partial(0..num_subscribers)
            } else {
                let chunk = num_subscribers.div_ceil(threads * 4).max(1);
                let mut partials =
                    parallel::par_chunks(num_subscribers, chunk, build_partial).into_iter();
                let mut merged = partials.next().unwrap_or_default();
                for partial in partials {
                    // lint: allow(hash-order): merged by commutative set union
                    for (cell, members) in partial {
                        match merged.entry(cell) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                e.get_mut().union_with(&members)
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(members);
                            }
                        }
                    }
                }
                merged
            };
        // 2. Merge identical membership vectors into hyper-cells.
        let mut by_members: HashMap<BitSet, Vec<CellId>> = HashMap::new();
        // lint: allow(hash-order): grouping only; each group's cells are
        // sorted below and the hyper-cell list gets a total-order sort
        for (cell, members) in cell_members {
            by_members.entry(members).or_default().push(cell);
        }
        // lint: allow(hash-order): per-entry work is order-local (cells are
        // sorted, prob summed in sorted cell order); the list is totally
        // sorted by (popularity, first cell) before use
        let mut hypercells: Vec<HyperCell> = by_members
            // lint: allow(hash-order): see the note above
            .into_iter()
            .map(|(members, mut cells)| {
                cells.sort_unstable();
                let prob = cells.iter().map(|&c| probs.prob(c)).sum();
                HyperCell {
                    cells,
                    members,
                    prob,
                }
            })
            .collect();
        // 3. Rank by popularity (descending; ties broken by first cell id
        //    for determinism) and truncate. Weighted builds rank by the
        //    class-expanded popularity — the same value the concrete
        //    build would compute for the same hyper-cell.
        let rank = |hc: &HyperCell| match &weights {
            None => hc.popularity(),
            Some(w) => popularity_weighted(hc.prob, &hc.members, w),
        };
        hypercells.sort_by(|a, b| {
            rank(b)
                .partial_cmp(&rank(a))
                .expect("popularity is never NaN")
                // lint: allow(no-literal-index): hyper-cells always hold >= 1 cell
                .then_with(|| a.cells[0].cmp(&b.cells[0]))
        });
        let complete = match max_cells {
            None => true,
            Some(max) => hypercells.len() <= max,
        };
        if let Some(max) = max_cells {
            hypercells.truncate(max);
        }
        let cell_to_hyper = hypercells
            .iter()
            .enumerate()
            .flat_map(|(h, hc)| hc.cells.iter().map(move |&c| (c, h)))
            .collect();
        GridFramework {
            grid,
            num_subscribers,
            weights,
            hypercells,
            cell_to_hyper,
            distances: OnceLock::new(),
            complete,
            incremental: None,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of subscriptions the membership vectors are indexed by.
    pub fn num_subscribers(&self) -> usize {
        self.num_subscribers
    }

    /// The kept hyper-cells, sorted by decreasing popularity.
    pub fn hypercells(&self) -> &[HyperCell] {
        &self.hypercells
    }

    /// The hyper-cell containing grid cell `c`, if it was kept.
    pub fn hyper_of_cell(&self, c: CellId) -> Option<usize> {
        self.cell_to_hyper.get(&c).copied()
    }

    /// The hyper-cell (if any) containing the event point.
    pub fn hyper_of_point(&self, p: &Point) -> Option<usize> {
        self.grid.cell_of(p).and_then(|c| self.hyper_of_cell(c))
    }

    /// The full cell → kept-hyper-cell mapping, for plan compilation.
    pub(crate) fn cell_to_hyper(&self) -> &HashMap<CellId, usize> {
        &self.cell_to_hyper
    }

    /// The per-slot multiplicities of a class-universe (weighted)
    /// framework; `None` for ordinary concrete builds.
    pub(crate) fn weights_ref(&self) -> Option<&[u64]> {
        self.weights.as_deref().map(Vec::as_slice)
    }

    /// The shared pairwise distance cache over this framework's
    /// hyper-cells, building it (in parallel) on first access.
    ///
    /// Returns `None` when the framework exceeds the cache size cap
    /// (`PUBSUB_DISTANCE_CACHE_CELLS`, default 6144 hyper-cells) or has
    /// fewer than two hyper-cells; callers then compute distances
    /// directly. Entries are exactly the values
    /// [`expected_waste`](crate::expected_waste) would return for the
    /// same hyper-cell pair, so using the cache never changes results.
    /// Clones of a framework share the same cache.
    pub fn distance_matrix(&self) -> Option<&DistanceMatrix> {
        self.distances
            .get_or_init(|| {
                let l = self.hypercells.len();
                if l < 2 || l > distance_cache_cap() {
                    None
                } else if let (Some(w), Some(state)) = (self.weights_ref(), &self.incremental) {
                    // Weighted incremental framework: the pool already
                    // holds a compressed mirror of every hyper-cell's
                    // membership vector, so the weighted fill streams
                    // those instead of re-compressing (or re-walking the
                    // dense words). Same integers, same bits.
                    let mirrors: Vec<&crate::compressed::CompressedSet> = state
                        .hyper_ids
                        .iter()
                        .map(|&id| state.pool.compressed(id))
                        .collect();
                    Some(Arc::new(DistanceMatrix::build_weighted_from_mirrors(
                        &self.hypercells,
                        &mirrors,
                        w,
                    )))
                } else {
                    Some(Arc::new(DistanceMatrix::build_weighted(
                        &self.hypercells,
                        self.weights_ref(),
                    )))
                }
            })
            .as_deref()
    }

    /// A clone whose distance cache starts empty (not shared with
    /// `self`). Used by benchmarks to measure cold-cache runs.
    pub fn with_cold_distance_cache(&self) -> GridFramework {
        GridFramework {
            grid: self.grid.clone(),
            num_subscribers: self.num_subscribers,
            weights: self.weights.clone(),
            hypercells: self.hypercells.clone(),
            cell_to_hyper: self.cell_to_hyper.clone(),
            distances: OnceLock::new(),
            complete: self.complete,
            incremental: None,
        }
    }

    /// Summary statistics of the prepared framework — the quantities
    /// that predict clustering behaviour (how much the merge step
    /// compressed, how much publication mass the kept cells cover, how
    /// fat the membership vectors are).
    pub fn stats(&self) -> FrameworkStats {
        let num_hypercells = self.hypercells.len();
        let num_cells: usize = self.hypercells.iter().map(|h| h.cells.len()).sum();
        let covered_probability: f64 = self.hypercells.iter().map(|h| h.prob).sum();
        let member_counts: Vec<usize> = self.hypercells.iter().map(|h| h.members.count()).collect();
        let max_members = member_counts.iter().copied().max().unwrap_or(0);
        let mean_members = if num_hypercells == 0 {
            0.0
        } else {
            member_counts.iter().sum::<usize>() as f64 / num_hypercells as f64
        };
        FrameworkStats {
            num_hypercells,
            num_cells,
            covered_probability,
            mean_members,
            max_members,
        }
    }

    /// Removes the most isolated hyper-cells — the outlier-removal
    /// step the paper leaves as future work ("the implementation of
    /// outlier removal algorithms for detection of cells that have
    /// rather unique combination of subscribers").
    ///
    /// A hyper-cell's isolation is its expected-waste distance to the
    /// nearest other hyper-cell; the `fraction` most isolated cells
    /// are dropped (their events fall back to unicast). Returns the
    /// filtered framework.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn remove_outliers(&self, fraction: f64) -> GridFramework {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let l = self.hypercells.len();
        let drop = ((l as f64) * fraction).round() as usize;
        if drop == 0 || l < 2 {
            return self.clone();
        }
        // Isolation score: distance to the nearest other hyper-cell.
        // Rows are independent, so they are scored in parallel; the
        // shared distance cache (when present) holds exactly the values
        // `expected_waste` would produce for these singleton pairs.
        let matrix = self.distance_matrix();
        let scores_vec = parallel::par_map_indexed(l, 8, |i| {
            let a = &self.hypercells[i];
            let mut best = f64::INFINITY;
            for (j, b) in self.hypercells.iter().enumerate() {
                if i != j {
                    let d = match matrix {
                        Some(m) => m.get(i, j),
                        None => match self.weights_ref() {
                            None => {
                                crate::waste::expected_waste(a.prob, &a.members, b.prob, &b.members)
                            }
                            Some(w) => crate::waste::expected_waste_weighted(
                                a.prob, &a.members, b.prob, &b.members, w,
                            ),
                        },
                    };
                    if d < best {
                        best = d;
                    }
                }
            }
            (best, i)
        });
        let mut scores: Vec<(f64, usize)> = scores_vec;
        // Most isolated first; ties (e.g. mutually-nearest pairs, where
        // the distance is symmetric) break toward the least popular
        // cell — "rather unique combination of subscribers" means few
        // subscribers and little publication mass.
        scores.sort_by(|x, y| {
            y.0.partial_cmp(&x.0)
                .expect("distance is never NaN")
                .then_with(|| {
                    self.hypercells[x.1]
                        .popularity()
                        .partial_cmp(&self.hypercells[y.1].popularity())
                        .expect("popularity is never NaN")
                })
        });
        let dropped: std::collections::HashSet<usize> =
            scores.iter().take(drop).map(|&(_, i)| i).collect();
        let hypercells: Vec<HyperCell> = self
            .hypercells
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped.contains(i))
            .map(|(_, hc)| hc.clone())
            .collect();
        let cell_to_hyper = hypercells
            .iter()
            .enumerate()
            .flat_map(|(h, hc)| hc.cells.iter().map(move |&c| (c, h)))
            .collect();
        GridFramework {
            grid: self.grid.clone(),
            num_subscribers: self.num_subscribers,
            weights: self.weights.clone(),
            hypercells,
            cell_to_hyper,
            distances: OnceLock::new(),
            // Dropped outliers leave live cells unmapped, so the
            // filtered framework cannot take deltas.
            complete: false,
            incremental: None,
        }
    }

    /// Whether [`GridFramework::apply_delta`] may be called: the
    /// framework holds every merged hyper-cell (no truncation, no
    /// outlier filtering, not an unmerged ablation build).
    pub fn supports_incremental(&self) -> bool {
        self.complete
    }

    /// Applies a subscription delta in place: `removed[i] = (id, rect)`
    /// clears subscriber `id`'s bit in every cell of `rect`, `added`
    /// sets bits likewise, and only the *dirty* cells — those whose
    /// membership vector actually changed — are re-merged into
    /// hyper-cells. The subscriber universe may grow to
    /// `num_subscribers` (new indices start absent everywhere).
    ///
    /// The result is bit-for-bit identical to a cold
    /// [`GridFramework::build`] over the post-delta population, at any
    /// thread count: untouched hyper-cells keep their exact cells,
    /// membership words and probability sums; changed ones are
    /// recomputed with the very same expressions the full build uses;
    /// and the final popularity ranking applies the same comparator.
    /// When a distance cache was materialized before the call, it is
    /// rebuilt eagerly with every unchanged-pair entry copied instead
    /// of recomputed, and fresh pairs served from the interning pool's
    /// waste-count memo.
    ///
    /// A subscriber appearing in both slices is a *resubscribe*: its
    /// old rectangle's bits are cleared before the new one's are set.
    ///
    /// # Panics
    ///
    /// Panics if the framework is not [`GridFramework::supports_incremental`],
    /// if `num_subscribers` is smaller than the current universe, if a
    /// delta id is `>= num_subscribers`, or on rectangle dimension
    /// mismatch.
    pub fn apply_delta(
        &mut self,
        added: &[(usize, Rect)],
        removed: &[(usize, Rect)],
        probs: &CellProbability,
        num_subscribers: usize,
    ) -> DeltaReport {
        assert!(
            self.complete,
            "apply_delta requires a complete (merged, untruncated) framework"
        );
        assert!(
            num_subscribers >= self.num_subscribers,
            "the subscriber universe never shrinks (tombstones keep their slot)"
        );
        // (Re)build the interning state when absent or grown far past
        // the live hyper-cell count (stale ids from long churn runs).
        let stale = self
            .incremental
            .as_ref()
            .is_some_and(|s| s.pool.len() > (8 * self.hypercells.len()).max(1024));
        if stale {
            self.incremental = None;
        }
        if self.incremental.is_none() {
            let mut pool = MembershipPool::new(self.num_subscribers);
            let hyper_ids = self
                .hypercells
                .iter()
                .map(|hc| pool.intern(hc.members.clone()))
                .collect();
            self.incremental = Some(IncrementalState { pool, hyper_ids });
        }
        let mut state = self.incremental.take().expect("just initialized");

        // Grow the universe in place. Growth preserves members, counts
        // and therefore every cached distance and memoized waste count.
        if num_subscribers > self.num_subscribers {
            state.pool.grow(num_subscribers);
            for hc in &mut self.hypercells {
                hc.members.grow(num_subscribers);
            }
            self.num_subscribers = num_subscribers;
        }

        // 1. Delta rasterization: only the changed rectangles touch the
        //    grid, in parallel like the full build's rasterization.
        let removed_cells: Vec<Vec<CellId>> =
            parallel::par_map(removed, parallel::MIN_PARALLEL_LEN, |(_, r)| {
                self.grid.cells_overlapping(r)
            });
        let added_cells: Vec<Vec<CellId>> =
            parallel::par_map(added, parallel::MIN_PARALLEL_LEN, |(_, r)| {
                self.grid.cells_overlapping(r)
            });

        // 2. Collect the per-cell bit flips. Clears land before sets so
        //    a same-id resubscribe nets out correctly; flips of distinct
        //    ids commute.
        let mut ops: HashMap<CellId, CellOps> = HashMap::new();
        for ((id, _), cells) in removed.iter().zip(&removed_cells) {
            assert!(*id < num_subscribers, "removed id out of universe");
            for &c in cells {
                ops.entry(c).or_default().clears.push(*id);
            }
        }
        for ((id, _), cells) in added.iter().zip(&added_cells) {
            assert!(*id < num_subscribers, "added id out of universe");
            for &c in cells {
                ops.entry(c).or_default().sets.push(*id);
            }
        }
        // lint: allow(hash-order): collected then sorted by cell id below
        let mut flipped: Vec<(CellId, CellOps)> = ops.into_iter().collect();
        flipped.sort_unstable_by_key(|&(c, _)| c);

        // 3. Derive each touched cell's new membership vector; cells
        //    whose vector nets out unchanged (e.g. a resubscribe
        //    covering the same cell) are not dirty.
        let mut affected_old: HashSet<usize> = HashSet::new();
        let mut dirty: Vec<(CellId, Option<MembershipId>)> = Vec::new();
        for (cell, op) in flipped {
            let old_h = self.cell_to_hyper.get(&cell).copied();
            let mut m = match old_h {
                Some(h) => self.hypercells[h].members.clone(),
                None => BitSet::new(self.num_subscribers),
            };
            for &i in &op.clears {
                m.remove(i);
            }
            for &i in &op.sets {
                m.insert(i);
            }
            let unchanged = match old_h {
                Some(h) => m == self.hypercells[h].members,
                None => m.is_empty(),
            };
            if unchanged {
                continue;
            }
            if let Some(h) = old_h {
                affected_old.insert(h);
            }
            // An emptied cell is dropped outright (events there
            // interest nobody), exactly as the full build drops it.
            let id = if m.is_empty() {
                None
            } else {
                Some(state.pool.intern(m))
            };
            dirty.push((cell, id));
        }

        // 4. Re-merge inside the dirty region: affected hyper-cells
        //    give up their dirty cells, dirty cells join the group of
        //    their new membership id. A dirty cell's new vector always
        //    differs from its old hyper-cell's, so any group that gains
        //    or loses a cell is genuinely changed.
        let dirty_set: HashSet<CellId> = dirty.iter().map(|&(c, _)| c).collect();
        let old_hypercells = std::mem::take(&mut self.hypercells);
        let old_ids = std::mem::take(&mut state.hyper_ids);
        let mut groups: HashMap<u32, GroupBuild> =
            HashMap::with_capacity(old_hypercells.len() + dirty.len());
        for (h, (hc, id)) in old_hypercells.into_iter().zip(old_ids).enumerate() {
            let HyperCell {
                cells,
                members,
                prob,
            } = hc;
            let (cells, touched) = if affected_old.contains(&h) {
                let before = cells.len();
                let kept: Vec<CellId> = cells
                    .into_iter()
                    .filter(|c| !dirty_set.contains(c))
                    .collect();
                let t = kept.len() != before;
                (kept, t)
            } else {
                (cells, false)
            };
            groups.insert(
                id.0,
                GroupBuild {
                    cells,
                    members: Some(members),
                    prob,
                    old: Some(h),
                    touched,
                },
            );
        }
        for &(cell, id) in &dirty {
            let Some(id) = id else { continue };
            let b = groups.entry(id.0).or_insert_with(|| GroupBuild {
                cells: Vec::new(),
                members: None,
                prob: 0.0,
                old: None,
                touched: true,
            });
            b.cells.push(cell);
            b.touched = true;
        }

        // 5. Finalize. Touched groups recompute cells/prob with the
        //    full build's exact expressions; untouched groups move
        //    through byte-identical (and remember their old index, the
        //    key to distance reuse and warm starts).
        let mut rebuilt: Vec<(HyperCell, MembershipId, Option<usize>)> =
            Vec::with_capacity(groups.len());
        // lint: allow(hash-order): per-group work is order-local; `rebuilt`
        // gets a total-order sort by (popularity, first cell) below
        for (raw_id, b) in groups {
            if b.cells.is_empty() {
                continue;
            }
            let id = MembershipId(raw_id);
            if b.touched {
                let mut cells = b.cells;
                cells.sort_unstable();
                let prob = cells.iter().map(|&c| probs.prob(c)).sum();
                let members = b.members.unwrap_or_else(|| state.pool.get(id).clone());
                rebuilt.push((
                    HyperCell {
                        cells,
                        members,
                        prob,
                    },
                    id,
                    None,
                ));
            } else {
                let members = b
                    .members
                    .expect("untouched groups come from an old hyper-cell");
                rebuilt.push((
                    HyperCell {
                        cells: b.cells,
                        members,
                        prob: b.prob,
                    },
                    id,
                    b.old,
                ));
            }
        }
        let rank = |hc: &HyperCell| match self.weights.as_deref() {
            None => hc.popularity(),
            Some(w) => popularity_weighted(hc.prob, &hc.members, w),
        };
        rebuilt.sort_by(|a, b| {
            rank(&b.0)
                .partial_cmp(&rank(&a.0))
                .expect("popularity is never NaN")
                // lint: allow(no-literal-index): hyper-cells always hold >= 1 cell
                .then_with(|| a.0.cells[0].cmp(&b.0.cells[0]))
        });

        // 6. Capture, from the *old* cell index, where each cell of a
        //    changed hyper-cell used to live — warm-start votes read
        //    this instead of the discarded old framework.
        let mut old_hyper_of_cell = HashMap::new();
        for (hc, _, old) in &rebuilt {
            if old.is_none() {
                for &c in &hc.cells {
                    if let Some(&oh) = self.cell_to_hyper.get(&c) {
                        old_hyper_of_cell.insert(c, oh);
                    }
                }
            }
        }

        // 7. Install the new hyper-cells and indexes.
        let old_index: Vec<Option<usize>> = rebuilt.iter().map(|r| r.2).collect();
        state.hyper_ids = rebuilt.iter().map(|r| r.1).collect();
        self.hypercells = rebuilt.into_iter().map(|r| r.0).collect();
        self.cell_to_hyper = self
            .hypercells
            .iter()
            .enumerate()
            .flat_map(|(h, hc)| hc.cells.iter().map(move |&c| (c, h)))
            .collect();

        // 8. Distance cache: when the old matrix was materialized,
        //    rebuild the new one eagerly, copying every entry whose two
        //    hyper-cells are unchanged and serving fresh pairs from the
        //    pool's waste-count memo. Entries equal what a cold build
        //    would compute, bitwise (f64 `+`/`×` are commutative, and
        //    cached entries were themselves produced by `expected_waste`
        //    over identical inputs).
        // Weighted (class-universe) frameworks skip the eager rebuild:
        // the pool's memoized counts are unweighted, so the reassembly
        // expressions below would mix universes. The cache simply
        // rebuilds lazily (weighted) on the next `distance_matrix` call.
        let old_matrix = if self.weights.is_none() {
            self.distances.get().and_then(|o| o.clone())
        } else {
            None
        };
        self.distances = OnceLock::new();
        let l = self.hypercells.len();
        let mut reused_distances = 0usize;
        if let Some(old_m) = old_matrix {
            if l >= 2 && l <= distance_cache_cap() {
                let pool = &state.pool;
                let ids = &state.hyper_ids;
                let hcs = &self.hypercells;
                let oi = &old_index;
                let block = crate::distance::dm_block();
                type FreshPairs = Vec<((MembershipId, MembershipId), (usize, usize))>;
                // Cache-blocked like the cold build (`DistanceMatrix::
                // build`): 8-row chunks × `block`-column tiles, so the
                // tile's membership vectors stay hot across the chunk's
                // rows. Each entry is the same reuse-or-recompute value
                // as the plain row walk, placed at its own index, and
                // the per-row fresh-pair order (ascending j) is
                // preserved by the ascending tile sweep — so the
                // assembled matrix and the pool memo are bit-identical
                // to the untiled pipeline.
                let chunks: Vec<Vec<(Vec<f64>, FreshPairs, usize)>> =
                    parallel::par_chunks(l, 8, |rows| {
                        let mut out: Vec<(Vec<f64>, FreshPairs, usize)> = rows
                            .clone()
                            .map(|i| (vec![0.0f64; i], FreshPairs::new(), 0usize))
                            .collect();
                        let cols = rows.end.saturating_sub(1);
                        let mut j0 = 0usize;
                        while j0 < cols {
                            let j1 = (j0 + block).min(cols);
                            for (r, i) in rows.clone().enumerate() {
                                let (row, fresh, reused) = &mut out[r];
                                for j in j0..j1.min(i) {
                                    if let (Some(a), Some(b)) = (oi[i], oi[j]) {
                                        row[j] = old_m.get(a, b);
                                        *reused += 1;
                                    } else {
                                        let (ia, ib) = (ids[i], ids[j]);
                                        let (only_i, only_j) = match pool.cached_waste(ia, ib) {
                                            Some(c) => c,
                                            None => {
                                                let c = pool.compute_waste(ia, ib);
                                                fresh.push(((ia, ib), c));
                                                c
                                            }
                                        };
                                        row[j] = hcs[i].prob * only_j as f64
                                            + hcs[j].prob * only_i as f64;
                                    }
                                }
                            }
                            j0 = j1;
                        }
                        out
                    });
                let mut data_rows = Vec::with_capacity(l);
                for rows in chunks {
                    for (row, fresh, reused) in rows {
                        data_rows.push(row);
                        reused_distances += reused;
                        state.pool.memoize_waste(fresh);
                    }
                }
                let _ = self
                    .distances
                    .set(Some(Arc::new(DistanceMatrix::from_rows(data_rows))));
            }
        }

        self.incremental = Some(state);
        DeltaReport {
            dirty_cells: dirty.len(),
            changed_hypercells: old_index.iter().filter(|o| o.is_none()).count(),
            unchanged_hypercells: old_index.iter().filter(|o| o.is_some()).count(),
            reused_distances,
            old_index,
            old_hyper_of_cell,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn grid10() -> Grid {
        Grid::cube(0.0, 10.0, 1, 10).unwrap()
    }

    #[test]
    fn empirical_probability_counts_sample() {
        let g = grid10();
        let pts = vec![
            Point::new(vec![0.5]),
            Point::new(vec![0.7]),
            Point::new(vec![5.5]),
            Point::new(vec![50.0]), // out of bounds, ignored
        ];
        let p = CellProbability::empirical(&g, &pts);
        let c0 = g.cell_of(&Point::new(vec![0.5])).unwrap();
        let c5 = g.cell_of(&Point::new(vec![5.5])).unwrap();
        assert!((p.prob(c0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.prob(c5) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_falls_back_to_uniform() {
        let g = grid10();
        let p = CellProbability::empirical(&g, &[]);
        assert_eq!(p, CellProbability::uniform(&g));
    }

    #[test]
    fn build_merges_identical_membership() {
        let g = grid10();
        let subs = vec![rect1(0.0, 5.0), rect1(0.0, 5.0), rect1(5.0, 10.0)];
        let fw = GridFramework::build(g, &subs, &CellProbability::uniform(&grid10()), None);
        assert_eq!(fw.hypercells().len(), 2);
        // Each hyper-cell spans 5 unit cells; probabilities sum to 0.5.
        for hc in fw.hypercells() {
            assert_eq!(hc.cells.len(), 5);
            assert!((hc.prob - 0.5).abs() < 1e-12);
        }
        // Most popular first: membership {0,1} has popularity 1.0 > 0.5.
        assert_eq!(fw.hypercells()[0].members.count(), 2);
        assert_eq!(fw.hypercells()[1].members.count(), 1);
    }

    #[test]
    fn empty_cells_are_dropped() {
        let g = grid10();
        let subs = vec![rect1(0.0, 2.0)];
        let fw = GridFramework::build(g, &subs, &CellProbability::uniform(&grid10()), None);
        // Only the two cells under (0,2] survive, as one hyper-cell.
        assert_eq!(fw.hypercells().len(), 1);
        assert_eq!(fw.hypercells()[0].cells.len(), 2);
        // A point outside any subscription maps to no hyper-cell.
        assert_eq!(fw.hyper_of_point(&Point::new(vec![9.5])), None);
    }

    #[test]
    fn truncation_keeps_most_popular() {
        let g = grid10();
        // Three membership classes with different popularity.
        let subs = vec![
            rect1(0.0, 3.0),
            rect1(0.0, 3.0),
            rect1(0.0, 3.0),
            rect1(3.0, 6.0),
            rect1(3.0, 6.0),
            rect1(6.0, 10.0),
        ];
        let full = GridFramework::build(g.clone(), &subs, &CellProbability::uniform(&g), None);
        assert_eq!(full.hypercells().len(), 3);
        let fw = GridFramework::build(g, &subs, &CellProbability::uniform(&grid10()), Some(1));
        assert_eq!(fw.hypercells().len(), 1);
        assert_eq!(fw.hypercells()[0].members.count(), 3);
        // Dropped cells resolve to no hyper-cell.
        assert_eq!(fw.hyper_of_point(&Point::new(vec![7.0])), None);
        assert_eq!(fw.hyper_of_point(&Point::new(vec![1.0])), Some(0));
    }

    #[test]
    fn hyper_of_point_round_trip() {
        let g = grid10();
        let subs = vec![rect1(0.0, 5.0), rect1(2.0, 8.0)];
        let fw = GridFramework::build(g, &subs, &CellProbability::uniform(&grid10()), None);
        // (2,5] overlaps both subs; (0,2] only the first; (5,8] only the
        // second → three hyper-cells.
        assert_eq!(fw.hypercells().len(), 3);
        let h_both = fw.hyper_of_point(&Point::new(vec![3.0])).unwrap();
        assert_eq!(fw.hypercells()[h_both].members.count(), 2);
    }

    #[test]
    fn build_unmerged_keeps_single_cell_hypercells() {
        let g = grid10();
        let subs = vec![rect1(0.0, 5.0), rect1(0.0, 5.0)];
        let probs = CellProbability::uniform(&g);
        let fw = GridFramework::build_unmerged(g, &subs, &probs, None);
        // Five non-empty unit cells, none merged.
        assert_eq!(fw.hypercells().len(), 5);
        for hc in fw.hypercells() {
            assert_eq!(hc.cells.len(), 1);
            assert_eq!(hc.members.count(), 2);
        }
        // Matching is identical to the merged build.
        let merged =
            GridFramework::build(grid10(), &subs, &CellProbability::uniform(&grid10()), None);
        for x in [0.5, 2.5, 4.9, 6.0] {
            let p = Point::new(vec![x]);
            assert_eq!(
                fw.hyper_of_point(&p).is_some(),
                merged.hyper_of_point(&p).is_some(),
                "x={x}"
            );
        }
    }

    #[test]
    fn remove_outliers_drops_isolated_membership() {
        let g = grid10();
        // Nine similar subscribers on (0,5] plus one loner on (9,10]:
        // the loner's hyper-cell is the most isolated.
        let mut subs = vec![rect1(0.0, 5.0); 9];
        subs.push(rect1(9.0, 10.0));
        let probs = CellProbability::uniform(&g);
        let fw = GridFramework::build(g, &subs, &probs, None);
        assert_eq!(fw.hypercells().len(), 2);
        let filtered = fw.remove_outliers(0.5);
        assert_eq!(filtered.hypercells().len(), 1);
        // The popular community survives; the loner's cell is gone.
        assert_eq!(filtered.hypercells()[0].members.count(), 9);
        assert_eq!(filtered.hyper_of_point(&Point::new(vec![9.5])), None);
        assert!(filtered.hyper_of_point(&Point::new(vec![2.0])).is_some());
    }

    #[test]
    fn remove_outliers_zero_fraction_is_identity() {
        let g = grid10();
        let subs = vec![rect1(0.0, 5.0), rect1(5.0, 10.0)];
        let probs = CellProbability::uniform(&g);
        let fw = GridFramework::build(g, &subs, &probs, None);
        let same = fw.remove_outliers(0.0);
        assert_eq!(same.hypercells().len(), fw.hypercells().len());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn remove_outliers_validates_fraction() {
        let g = grid10();
        let probs = CellProbability::uniform(&g);
        let fw = GridFramework::build(g, &[], &probs, None);
        let _ = fw.remove_outliers(1.5);
    }

    #[test]
    fn from_mass_fn_normalizes() {
        let g = grid10();
        // Mass proportional to the cell midpoint.
        let p =
            CellProbability::from_mass_fn(&g, |r| (r.interval(0).lo() + r.interval(0).hi()) / 2.0);
        let total: f64 = g.iter().map(|c| p.prob(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Later cells carry more mass.
        assert!(p.prob(CellId(9)) > p.prob(CellId(0)));
        // All-zero mass falls back to uniform.
        let u = CellProbability::from_mass_fn(&g, |_| 0.0);
        assert_eq!(u, CellProbability::uniform(&g));
    }

    #[test]
    fn build_from_cells_supports_non_rectangular_interest() {
        let g = grid10();
        // An L-shaped (non-rectangular) interest: cells {0, 1, 5}.
        let sets = vec![vec![CellId(0), CellId(1), CellId(5)]];
        let probs = CellProbability::uniform(&g);
        let fw = GridFramework::build_from_cells(g, &sets, &probs, None);
        assert_eq!(fw.hypercells().len(), 1);
        assert_eq!(fw.hypercells()[0].cells.len(), 3);
        assert!(fw.hyper_of_point(&Point::new(vec![0.5])).is_some());
        assert!(fw.hyper_of_point(&Point::new(vec![5.5])).is_some());
        assert_eq!(fw.hyper_of_point(&Point::new(vec![2.5])), None);
    }

    #[test]
    fn stats_summarize_the_framework() {
        let g = grid10();
        let subs = vec![rect1(0.0, 5.0), rect1(0.0, 5.0), rect1(5.0, 10.0)];
        let fw = GridFramework::build(g, &subs, &CellProbability::uniform(&grid10()), None);
        let st = fw.stats();
        assert_eq!(st.num_hypercells, 2);
        assert_eq!(st.num_cells, 10);
        assert!((st.covered_probability - 1.0).abs() < 1e-12);
        assert_eq!(st.max_members, 2);
        assert!((st.mean_members - 1.5).abs() < 1e-12);
        // Empty framework.
        let empty = GridFramework::build(grid10(), &[], &CellProbability::uniform(&grid10()), None);
        let st = empty.stats();
        assert_eq!(st.num_hypercells, 0);
        assert_eq!(st.mean_members, 0.0);
    }

    fn assert_bit_identical(a: &GridFramework, b: &GridFramework) {
        assert_eq!(a.num_subscribers(), b.num_subscribers());
        assert_eq!(a.hypercells().len(), b.hypercells().len());
        for (x, y) in a.hypercells().iter().zip(b.hypercells()) {
            assert_eq!(x.cells, y.cells);
            assert_eq!(x.members, y.members);
            assert_eq!(x.prob.to_bits(), y.prob.to_bits());
        }
        assert_eq!(a.cell_to_hyper, b.cell_to_hyper);
    }

    #[test]
    fn apply_delta_matches_cold_build() {
        let g = grid10();
        let probs = CellProbability::uniform(&g);
        let initial = vec![rect1(0.0, 5.0), rect1(2.0, 8.0), rect1(6.0, 10.0)];
        let mut fw = GridFramework::build(g.clone(), &initial, &probs, None);
        assert!(fw.supports_incremental());
        // Materialize the cache so the delta exercises the reuse path.
        assert!(fw.distance_matrix().is_some());
        // Resubscribe #0 to (1,4], unsubscribe #1, add #3 on (3,9].
        let report = fw.apply_delta(
            &[(0, rect1(1.0, 4.0)), (3, rect1(3.0, 9.0))],
            &[(0, rect1(0.0, 5.0)), (1, rect1(2.0, 8.0))],
            &probs,
            4,
        );
        let post_sets: Vec<Vec<CellId>> = vec![
            g.cells_overlapping(&rect1(1.0, 4.0)),
            Vec::new(), // tombstone
            g.cells_overlapping(&rect1(6.0, 10.0)),
            g.cells_overlapping(&rect1(3.0, 9.0)),
        ];
        let cold = GridFramework::build_from_cells(g, &post_sets, &probs, None);
        assert_bit_identical(&fw, &cold);
        // The rebuilt cache agrees with a cold one, bitwise.
        let (inc_m, cold_m) = (
            fw.distance_matrix().unwrap(),
            cold.distance_matrix().unwrap(),
        );
        for i in 0..fw.hypercells().len() {
            for j in 0..i {
                assert_eq!(inc_m.get(i, j).to_bits(), cold_m.get(i, j).to_bits());
            }
        }
        assert_eq!(report.old_index.len(), fw.hypercells().len());
        assert_eq!(
            report.changed_hypercells + report.unchanged_hypercells,
            fw.hypercells().len()
        );
        // A second, empty delta is a no-op with full reuse.
        let noop = fw.apply_delta(&[], &[], &probs, 4);
        assert_eq!(noop.dirty_cells, 0);
        assert_eq!(noop.changed_hypercells, 0);
        assert!(noop
            .old_index
            .iter()
            .enumerate()
            .all(|(h, o)| *o == Some(h)));
        assert_bit_identical(&fw, &cold);
    }

    #[test]
    fn apply_delta_grows_the_universe() {
        let g = grid10();
        let probs = CellProbability::uniform(&g);
        let mut fw = GridFramework::build(g.clone(), &[], &probs, None);
        assert_eq!(fw.hypercells().len(), 0);
        fw.apply_delta(
            &[(0, rect1(0.0, 3.0)), (1, rect1(2.0, 6.0))],
            &[],
            &probs,
            2,
        );
        let cold =
            GridFramework::build(g.clone(), &[rect1(0.0, 3.0), rect1(2.0, 6.0)], &probs, None);
        assert_bit_identical(&fw, &cold);
        // Remove everything again.
        fw.apply_delta(
            &[],
            &[(0, rect1(0.0, 3.0)), (1, rect1(2.0, 6.0))],
            &probs,
            2,
        );
        assert_eq!(fw.hypercells().len(), 0);
        assert_eq!(fw.num_subscribers(), 2);
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn apply_delta_rejects_truncated_frameworks() {
        let g = grid10();
        let probs = CellProbability::uniform(&g);
        let subs = vec![rect1(0.0, 3.0), rect1(3.0, 6.0), rect1(6.0, 10.0)];
        let mut fw = GridFramework::build(g, &subs, &probs, Some(1));
        assert!(!fw.supports_incremental());
        fw.apply_delta(&[], &[], &probs, 3);
    }

    #[test]
    fn incremental_support_flags() {
        let g = grid10();
        let probs = CellProbability::uniform(&g);
        let subs = vec![rect1(0.0, 5.0), rect1(5.0, 10.0)];
        let full = GridFramework::build(g.clone(), &subs, &probs, None);
        assert!(full.supports_incremental());
        // A cap that truncates nothing keeps the framework complete.
        let roomy = GridFramework::build(g.clone(), &subs, &probs, Some(100));
        assert!(roomy.supports_incremental());
        assert!(full.with_cold_distance_cache().supports_incremental());
        let unmerged = GridFramework::build_unmerged(g, &subs, &probs, None);
        assert!(!unmerged.supports_incremental());
        assert!(!full.remove_outliers(0.5).supports_incremental());
    }

    #[test]
    fn probabilities_weight_popularity() {
        let g = grid10();
        // One subscriber on (0,1]; two on (9,10] — but all publication
        // mass sits in (0,1].
        let subs = vec![rect1(0.0, 1.0), rect1(9.0, 10.0), rect1(9.0, 10.0)];
        let sample = vec![Point::new(vec![0.5]); 10];
        let probs = CellProbability::empirical(&g, &sample);
        let fw = GridFramework::build(g, &subs, &probs, Some(1));
        // The single-subscriber hot cell wins: popularity 1·1 > 0·2.
        assert_eq!(fw.hypercells()[0].members.count(), 1);
    }
}
