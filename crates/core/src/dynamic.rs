//! Dynamic subscription maintenance (Section 6, item 5 of the paper).
//!
//! Real systems see subscribers join, leave, and change their
//! rectangles continuously. Rebuilding the clustering from scratch on
//! every change wastes the work already done; the paper observes that
//! the iterative algorithms (K-means / Forgy) "are well suited for
//! dynamic changes in subscription structure": after a change, the old
//! partition is still approximately right, so a *warm-started*
//! re-balancing pass converges in a handful of moves.
//!
//! [`DynamicClustering`] owns the subscription population and the
//! current clustering. Subscriptions are added/removed with stable
//! ids; [`DynamicClustering::rebalance`] re-rasterizes and re-balances
//! from the previous assignment, reporting how many hyper-cell moves
//! the update needed.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use geometry::{CellId, Grid, Point, Rect};

use crate::clustering::Clustering;
use crate::framework::{CellProbability, GridFramework};
use crate::kmeans::KMeans;
use crate::parallel;
use crate::validate::{ValidationError, Validator};

/// Default dirty-fraction threshold above which [`DynamicClustering::rebalance`]
/// falls back to the full re-rasterizing path. Override with
/// `PUBSUB_INCREMENTAL_MAX_DIRTY` (a float; `0` forces the full path,
/// `1` allows incremental updates for any delta size).
const DEFAULT_INCREMENTAL_MAX_DIRTY: f64 = 0.2;

fn incremental_max_dirty() -> f64 {
    static CAP: OnceLock<f64> = OnceLock::new();
    *CAP.get_or_init(|| {
        crate::env_knob(
            "PUBSUB_INCREMENTAL_MAX_DIRTY",
            DEFAULT_INCREMENTAL_MAX_DIRTY,
            |s| {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && (0.0..=1.0).contains(v))
            },
        )
    })
}

/// Stable identifier of a dynamic subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub usize);

impl SubscriptionId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A clustering that tracks subscription churn and re-balances
/// incrementally.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{
///     CellProbability, DynamicClustering, KMeans, KMeansVariant,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let probs = CellProbability::uniform(&grid);
/// let mut dynamic = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), 2);
/// let a = dynamic.subscribe(Rect::new(vec![Interval::new(0.0, 4.0)?]));
/// let _b = dynamic.subscribe(Rect::new(vec![Interval::new(6.0, 10.0)?]));
/// let moves = dynamic.rebalance();
/// assert!(dynamic.clustering().num_groups() <= 2);
/// dynamic.unsubscribe(a)?;
/// let _ = moves;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicClustering {
    grid: Grid,
    probs: CellProbability,
    algorithm: KMeans,
    k: usize,
    /// Slot per subscription; `None` marks an unsubscribed tombstone so
    /// ids stay stable.
    subscriptions: Vec<Option<Rect>>,
    framework: GridFramework,
    clustering: Clustering,
    /// Changes since the last rebalance.
    pending: usize,
    /// Rectangle each touched slot held *at the last rebalance*
    /// (`None` = the slot was empty then). Together with the current
    /// slots this yields the net delta for the incremental path.
    baseline: HashMap<usize, Option<Rect>>,
    /// Dirty-fraction threshold override; `None` reads
    /// `PUBSUB_INCREMENTAL_MAX_DIRTY` (default 0.2).
    max_dirty: Option<f64>,
    /// Diagnostics of the most recent rebalance.
    last_stats: RebalanceStats,
}

/// Diagnostics of the most recent [`DynamicClustering::rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RebalanceStats {
    /// Whether the incremental delta path ran (vs the full rebuild).
    pub incremental: bool,
    /// Net changed subscription slots folded in.
    pub changed_slots: usize,
    /// Grid cells whose membership changed (incremental path only).
    pub dirty_cells: usize,
    /// Hyper-cells carried over byte-identical (incremental path only).
    pub unchanged_hypercells: usize,
    /// Distance-cache entries reused (incremental path only).
    pub reused_distances: usize,
    /// Hyper-cell moves the re-balancing pass performed.
    pub moves: usize,
}

/// Error returned by [`DynamicClustering::unsubscribe`] and
/// [`DynamicClustering::resubscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicError {
    /// The id was never issued or already unsubscribed.
    UnknownSubscription(SubscriptionId),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::UnknownSubscription(id) => {
                write!(f, "subscription #{} does not exist", id.0)
            }
        }
    }
}

impl std::error::Error for DynamicError {}

/// Why a [`DynamicClustering::try_rebalance`] attempt was rejected.
/// Either way the clustering is rolled back to the state it held
/// before the call — the error never poisons the serve path, which is
/// exactly what the service-loop watchdog
/// ([`crate::BrokerService`]) consumes.
#[derive(Debug, Clone)]
pub enum RebalanceError {
    /// A maintenance path panicked; the payload message is preserved
    /// for diagnostics.
    Panicked(String),
    /// The rebalanced artifacts failed the structural audit
    /// ([`Validator`]); publishing them would corrupt dispatch.
    Validation(ValidationError),
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::Panicked(msg) => write!(f, "rebalance panicked: {msg}"),
            RebalanceError::Validation(e) => write!(f, "rebalance produced invalid artifacts: {e}"),
        }
    }
}

impl std::error::Error for RebalanceError {}

impl DynamicClustering {
    /// Creates an empty dynamic clustering over the grid.
    pub fn new(grid: Grid, probs: CellProbability, algorithm: KMeans, k: usize) -> Self {
        let framework = GridFramework::build(grid.clone(), &[], &probs, None);
        let clustering = Clustering::from_assignment(&framework, Vec::new());
        DynamicClustering {
            grid,
            probs,
            algorithm,
            k,
            subscriptions: Vec::new(),
            framework,
            clustering,
            pending: 0,
            baseline: HashMap::new(),
            max_dirty: None,
            last_stats: RebalanceStats::default(),
        }
    }

    /// Overrides the dirty-fraction threshold of the incremental path
    /// (normally `PUBSUB_INCREMENTAL_MAX_DIRTY`, default 0.2): deltas
    /// touching at most `fraction` of the slots fold in incrementally,
    /// larger ones re-rasterize everything. `0.0` always takes the full
    /// path, `1.0` (or more) always tries the incremental one.
    pub fn with_max_dirty(mut self, fraction: f64) -> Self {
        assert!(fraction >= 0.0, "fraction must be non-negative");
        self.max_dirty = Some(fraction);
        self
    }

    /// Registers a new subscription, returning its stable id. The
    /// clustering is not updated until [`DynamicClustering::rebalance`].
    pub fn subscribe(&mut self, rect: Rect) -> SubscriptionId {
        let id = self.subscriptions.len();
        // The slot did not exist at the last rebalance.
        self.baseline.entry(id).or_insert(None);
        self.subscriptions.push(Some(rect));
        self.pending += 1;
        SubscriptionId(id)
    }

    /// Removes a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::UnknownSubscription`] for unknown or
    /// already-removed ids.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), DynamicError> {
        match self.subscriptions.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                let before = slot.clone();
                self.baseline.entry(id.0).or_insert(before);
                *slot = None;
                self.pending += 1;
                Ok(())
            }
            _ => Err(DynamicError::UnknownSubscription(id)),
        }
    }

    /// Replaces a subscription's rectangle (a preference change).
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::UnknownSubscription`] for unknown or
    /// removed ids.
    pub fn resubscribe(&mut self, id: SubscriptionId, rect: Rect) -> Result<(), DynamicError> {
        match self.subscriptions.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                let before = slot.clone();
                self.baseline.entry(id.0).or_insert(before);
                *slot = Some(rect);
                self.pending += 1;
                Ok(())
            }
            _ => Err(DynamicError::UnknownSubscription(id)),
        }
    }

    /// Number of live (non-tombstoned) subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.subscriptions.iter().filter(|s| s.is_some()).count()
    }

    /// The subscription slots in id order, tombstones included
    /// (`slots()[id] == None` once `id` was unsubscribed). Slot count
    /// equals [`GridFramework::num_subscribers`] after a rebalance, so
    /// callers compiling a [`crate::DispatchPlan`] with
    /// [`with_subscriptions`](crate::DispatchPlan::with_subscriptions)
    /// can derive an id-aligned rectangle vector from it.
    pub fn subscription_slots(&self) -> &[Option<Rect>] {
        &self.subscriptions
    }

    /// Number of changes since the last rebalance.
    pub fn pending_changes(&self) -> usize {
        self.pending
    }

    /// The current clustering (as of the last rebalance).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The current grid framework (as of the last rebalance).
    pub fn framework(&self) -> &GridFramework {
        &self.framework
    }

    /// The group currently matched to an event point, if any.
    pub fn group_of_point(&self, p: &Point) -> Option<usize> {
        self.clustering.group_of_point(&self.framework, p)
    }

    /// Diagnostics of the most recent rebalance (which path ran, how
    /// much was dirty, how much was reused).
    pub fn last_rebalance(&self) -> RebalanceStats {
        self.last_stats
    }

    /// Folds pending subscription changes into the framework and
    /// re-balances the clustering, warm-starting each hyper-cell from
    /// the group its cells belonged to before the change. Returns the
    /// number of hyper-cell moves the re-balancing needed — the warm
    /// start's convergence cost.
    ///
    /// When the net delta touches at most a threshold fraction of the
    /// slots (`PUBSUB_INCREMENTAL_MAX_DIRTY`, default 0.2, or
    /// [`DynamicClustering::with_max_dirty`]), the framework is updated
    /// in place via [`GridFramework::apply_delta`] — only dirty cells
    /// are re-rasterized and unchanged hyper-cells (and their cached
    /// distances) carry over. Larger deltas re-rasterize everything.
    /// Both paths produce bit-identical frameworks, clusterings and
    /// move counts at any `PUBSUB_THREADS`.
    pub fn rebalance(&mut self) -> usize {
        let moves = self.rebalance_paths();
        self.debug_validate("DynamicClustering::rebalance");
        moves
    }

    /// Path selection shared by [`rebalance`](Self::rebalance) and
    /// [`try_rebalance`](Self::try_rebalance) — everything except the
    /// post-condition audit.
    fn rebalance_paths(&mut self) -> usize {
        let changed = self.baseline.len();
        let threshold = self.max_dirty.unwrap_or_else(incremental_max_dirty);
        let fraction = changed as f64 / self.subscriptions.len().max(1) as f64;
        if self.framework.supports_incremental() && fraction <= threshold {
            self.rebalance_incremental(changed)
        } else {
            self.rebalance_full(changed)
        }
    }

    /// Panic-free [`rebalance`](Self::rebalance) with an *unconditional*
    /// (release-mode too) structural audit: folds pending churn in,
    /// re-balances, and runs [`Validator::check_framework`] +
    /// [`Validator::check_clustering`] over the result before accepting
    /// it. On any failure — a panic in a maintenance path or an audit
    /// violation — the clustering (subscriptions, framework, pending
    /// baseline, stats) is rolled back bit-for-bit to its pre-call
    /// state and the error is returned instead, so a long-running
    /// service can keep serving the last good clustering. This is the
    /// entry point the service-loop watchdog consumes; on success it is
    /// observationally identical to [`rebalance`](Self::rebalance).
    pub fn try_rebalance(&mut self) -> Result<RebalanceStats, RebalanceError> {
        let before = self.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.rebalance_paths()));
        let rolled_back = match outcome {
            Ok(_moves) => {
                let mut v = Validator::new();
                v.check_framework(&self.framework)
                    .check_clustering(&self.framework, &self.clustering);
                match v.finish() {
                    Ok(()) => return Ok(self.last_stats),
                    Err(e) => RebalanceError::Validation(e),
                }
            }
            Err(payload) => RebalanceError::Panicked(panic_message(payload.as_ref())),
        };
        *self = before;
        Err(rolled_back)
    }

    /// Debug-build structural audit at the rebalance boundary: the
    /// framework and clustering leaving either maintenance path must
    /// satisfy every invariant [`crate::Validator`] knows about. Free
    /// in release builds.
    #[inline]
    fn debug_validate(&self, _context: &str) {
        #[cfg(debug_assertions)]
        {
            let mut v = crate::Validator::new();
            v.check_framework(&self.framework)
                .check_clustering(&self.framework, &self.clustering);
            v.assert_clean(_context);
        }
    }

    /// The net `(added, removed)` delta since the last rebalance, in
    /// slot order. A slot whose rectangle ends up where it started
    /// (subscribe-then-unsubscribe, resubscribe back) contributes
    /// nothing.
    #[allow(clippy::type_complexity)]
    fn take_delta(&mut self) -> (Vec<(usize, Rect)>, Vec<(usize, Rect)>) {
        // lint: allow(hash-order): collected then sorted on the next line
        let mut ids: Vec<usize> = self.baseline.keys().copied().collect();
        ids.sort_unstable();
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for id in ids {
            let before = self.baseline.remove(&id).expect("key from baseline");
            let now = self.subscriptions[id].clone();
            if before == now {
                continue;
            }
            if let Some(r) = before {
                removed.push((id, r));
            }
            if let Some(r) = now {
                added.push((id, r));
            }
        }
        (added, removed)
    }

    /// Incremental path: delta rasterization + dirty-region re-merge,
    /// then a warm-started re-balance seeded from the old assignment.
    fn rebalance_incremental(&mut self, changed: usize) -> usize {
        let (added, removed) = self.take_delta();
        let report =
            self.framework
                .apply_delta(&added, &removed, &self.probs, self.subscriptions.len());
        let l = self.framework.hypercells().len();
        let mut stats = RebalanceStats {
            incremental: true,
            changed_slots: changed,
            dirty_cells: report.dirty_cells,
            unchanged_hypercells: report.unchanged_hypercells,
            reused_distances: report.reused_distances,
            moves: 0,
        };
        if l == 0 {
            self.clustering = Clustering::from_assignment(&self.framework, Vec::new());
            self.last_stats = stats;
            self.pending = 0;
            return 0;
        }
        let k = self.k.min(l);
        // Same warm start as the full path, served from the delta
        // report instead of a rebuilt framework: an unchanged
        // hyper-cell's cells all vote for its own old group, so the
        // vote collapses to a lookup; a changed hyper-cell tallies its
        // cells' old groups exactly as the full path does.
        let seed: Vec<usize> = (0..l)
            .map(|h| match report.old_index[h] {
                Some(old_h) => {
                    let g = self.clustering.group_of_hyper(old_h);
                    if g < k {
                        g
                    } else {
                        h % k
                    }
                }
                None => {
                    let mut votes = HashMap::new();
                    for &cell in &self.framework.hypercells()[h].cells {
                        if let Some(&old_h) = report.old_hyper_of_cell.get(&cell) {
                            let g = self.clustering.group_of_hyper(old_h);
                            if g < k {
                                *votes.entry(g).or_insert(0usize) += 1;
                            }
                        }
                    }
                    votes
                        // lint: allow(hash-order): max over the total key
                        // (count, group id) is order-independent
                        .into_iter()
                        .max_by_key(|&(g, count)| (count, usize::MAX - g))
                        .map(|(g, _)| g)
                        .unwrap_or(h % k)
                }
            })
            .collect();
        let (clustering, moves) = self.algorithm.cluster_seeded(&self.framework, k, &seed);
        self.clustering = clustering;
        stats.moves = moves;
        self.last_stats = stats;
        self.pending = 0;
        moves
    }

    /// Rasterizes the whole population, computing `cells_overlapping`
    /// once per *distinct* rectangle bit-pattern. Churned populations
    /// are dominated by repeated interest specifications, and the cell
    /// set is a pure function of the rectangle, so slots sharing a
    /// rectangle share the rasterization. Tombstoned slots rasterize
    /// nothing, keeping membership vectors aligned with ids.
    fn rasterize_population(&self) -> Vec<Vec<CellId>> {
        const TOMBSTONE: u32 = u32::MAX;
        let mut distinct_rects: Vec<Rect> = Vec::new();
        let mut index: HashMap<Vec<(u64, u64)>, u32> = HashMap::new();
        let distinct_of: Vec<u32> = self
            .subscriptions
            .iter()
            .map(|s| match s {
                None => TOMBSTONE,
                Some(r) => *index
                    .entry(crate::aggregate::rect_key(r))
                    .or_insert_with(|| {
                        distinct_rects.push(r.clone());
                        (distinct_rects.len() - 1) as u32
                    }),
            })
            .collect();
        let grid = &self.grid;
        let distinct_sets: Vec<Vec<CellId>> =
            parallel::par_map(&distinct_rects, parallel::MIN_PARALLEL_LEN, |r| {
                grid.cells_overlapping(r)
            });
        distinct_of
            .iter()
            .map(|&d| {
                if d == TOMBSTONE {
                    Vec::new()
                } else {
                    distinct_sets[d as usize].clone()
                }
            })
            .collect()
    }

    /// Full path: re-rasterize the whole population and re-balance
    /// from the per-cell vote warm start.
    fn rebalance_full(&mut self, changed: usize) -> usize {
        let cell_sets = self.rasterize_population();
        let new_fw =
            GridFramework::build_from_cells(self.grid.clone(), &cell_sets, &self.probs, None);
        let l = new_fw.hypercells().len();
        if l == 0 {
            self.framework = new_fw;
            self.clustering = Clustering::from_assignment(&self.framework, Vec::new());
            self.finish_full(changed, 0);
            return 0;
        }
        let k = self.k.min(l);
        // Warm start: a new hyper-cell inherits the group that most of
        // its cells belonged to before (falling back to round-robin for
        // cells in previously empty regions).
        let seed: Vec<usize> = new_fw
            .hypercells()
            .iter()
            .enumerate()
            .map(|(h, hc)| {
                let mut votes = HashMap::new();
                for &cell in &hc.cells {
                    if let Some(old_h) = self.framework.hyper_of_cell(cell) {
                        let g = self.clustering.group_of_hyper(old_h);
                        if g < k {
                            *votes.entry(g).or_insert(0usize) += 1;
                        }
                    }
                }
                votes
                    // lint: allow(hash-order): max over the total key
                    // (count, group id) is order-independent
                    .into_iter()
                    .max_by_key(|&(g, count)| (count, usize::MAX - g))
                    .map(|(g, _)| g)
                    .unwrap_or(h % k)
            })
            .collect();
        let (clustering, moves) = self.algorithm.cluster_seeded(&new_fw, k, &seed);
        self.framework = new_fw;
        self.clustering = clustering;
        self.finish_full(changed, moves);
        moves
    }

    fn finish_full(&mut self, changed: usize, moves: usize) {
        self.baseline.clear();
        self.pending = 0;
        self.last_stats = RebalanceStats {
            incremental: false,
            changed_slots: changed,
            dirty_cells: 0,
            unchanged_hypercells: 0,
            reused_distances: 0,
            moves,
        };
    }

    /// Rebuilds from scratch (cold start) — the baseline the warm
    /// start is measured against. Returns the moves performed.
    pub fn rebuild(&mut self) -> usize {
        let changed = self.baseline.len();
        let cell_sets = self.rasterize_population();
        let new_fw =
            GridFramework::build_from_cells(self.grid.clone(), &cell_sets, &self.probs, None);
        let l = new_fw.hypercells().len();
        let k = self.k.min(l.max(1));
        // Cold seed: round-robin (deliberately uninformed).
        let seed: Vec<usize> = (0..l).map(|h| h % k).collect();
        let (clustering, moves) = if l == 0 {
            (Clustering::from_assignment(&new_fw, Vec::new()), 0)
        } else {
            self.algorithm.cluster_seeded(&new_fw, k, &seed)
        };
        self.framework = new_fw;
        self.clustering = clustering;
        self.finish_full(changed, moves);
        self.debug_validate("DynamicClustering::rebuild");
        moves
    }
}

/// Best-effort rendering of a panic payload (the two shapes `panic!`
/// actually produces, then a fallback).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansVariant;
    use geometry::Interval;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn system(k: usize) -> DynamicClustering {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let probs = CellProbability::uniform(&grid);
        DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), k)
    }

    #[test]
    fn empty_system() {
        let mut s = system(3);
        assert_eq!(s.num_subscriptions(), 0);
        assert_eq!(s.rebalance(), 0);
        assert_eq!(s.clustering().num_groups(), 0);
        assert_eq!(s.group_of_point(&Point::new(vec![5.0])), None);
    }

    #[test]
    fn subscribe_then_rebalance_matches_events() {
        let mut s = system(2);
        s.subscribe(rect1(0.0, 8.0));
        s.subscribe(rect1(12.0, 20.0));
        assert_eq!(s.pending_changes(), 2);
        s.rebalance();
        assert_eq!(s.pending_changes(), 0);
        let left = s.group_of_point(&Point::new(vec![3.0]));
        let right = s.group_of_point(&Point::new(vec![15.0]));
        assert!(left.is_some() && right.is_some());
        assert_ne!(left, right);
    }

    #[test]
    fn unsubscribe_removes_interest() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 8.0));
        s.subscribe(rect1(12.0, 20.0));
        s.rebalance();
        assert!(s.group_of_point(&Point::new(vec![3.0])).is_some());
        s.unsubscribe(a).unwrap();
        s.rebalance();
        // Nobody is interested around 3.0 anymore.
        assert_eq!(s.group_of_point(&Point::new(vec![3.0])), None);
        assert_eq!(s.num_subscriptions(), 1);
    }

    #[test]
    fn unsubscribe_errors() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 5.0));
        s.unsubscribe(a).unwrap();
        assert_eq!(s.unsubscribe(a), Err(DynamicError::UnknownSubscription(a)));
        assert_eq!(
            s.unsubscribe(SubscriptionId(99)),
            Err(DynamicError::UnknownSubscription(SubscriptionId(99)))
        );
        assert_eq!(
            s.resubscribe(SubscriptionId(99), rect1(0.0, 1.0)),
            Err(DynamicError::UnknownSubscription(SubscriptionId(99)))
        );
        // A tombstoned id is just as dead as a never-issued one, and
        // the failed calls leave no pending change behind.
        assert_eq!(
            s.resubscribe(a, rect1(0.0, 1.0)),
            Err(DynamicError::UnknownSubscription(a))
        );
        let pending = s.pending_changes();
        let _ = s.unsubscribe(a);
        let _ = s.resubscribe(a, rect1(2.0, 3.0));
        assert_eq!(s.pending_changes(), pending);
        // Errors render their id for diagnostics.
        assert_eq!(
            DynamicError::UnknownSubscription(a).to_string(),
            format!("subscription #{} does not exist", a.0)
        );
    }

    #[test]
    fn resubscribe_moves_interest() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 5.0));
        s.rebalance();
        assert!(s.group_of_point(&Point::new(vec![2.0])).is_some());
        s.resubscribe(a, rect1(10.0, 15.0)).unwrap();
        s.rebalance();
        assert_eq!(s.group_of_point(&Point::new(vec![2.0])), None);
        assert!(s.group_of_point(&Point::new(vec![12.0])).is_some());
    }

    #[test]
    fn warm_start_needs_fewer_moves_than_cold_rebuild() {
        // Build a 2-community population, rebalance, then perturb with
        // one extra subscription: the warm restart should move (far)
        // fewer hyper-cells than a cold round-robin rebuild.
        let mut s = system(2);
        for i in 0..8 {
            s.subscribe(rect1(i as f64 * 0.3, 8.0 - i as f64 * 0.3));
            s.subscribe(rect1(12.0 + i as f64 * 0.3, 20.0 - i as f64 * 0.3));
        }
        s.rebalance();
        s.subscribe(rect1(1.0, 7.0));
        let warm_moves = s.rebalance();

        // Same perturbation, cold rebuild.
        let mut cold = system(2);
        for i in 0..8 {
            cold.subscribe(rect1(i as f64 * 0.3, 8.0 - i as f64 * 0.3));
            cold.subscribe(rect1(12.0 + i as f64 * 0.3, 20.0 - i as f64 * 0.3));
        }
        cold.rebalance();
        cold.subscribe(rect1(1.0, 7.0));
        let cold_moves = cold.rebuild();
        assert!(
            warm_moves <= cold_moves,
            "warm {warm_moves} > cold {cold_moves}"
        );
    }

    /// Drives the same churn through an always-incremental and an
    /// always-full instance and checks every observable is bitwise
    /// equal after each rebalance.
    fn assert_paths_agree(ops: impl Fn(&mut DynamicClustering)) {
        let mut inc = system(3).with_max_dirty(f64::INFINITY);
        let mut full = system(3).with_max_dirty(0.0);
        for s in [&mut inc, &mut full] {
            for i in 0..12 {
                s.subscribe(rect1(i as f64, (i + 5) as f64 % 20.0 + 0.5));
            }
            s.rebalance();
        }
        ops(&mut inc);
        ops(&mut full);
        let (mi, mf) = (inc.rebalance(), full.rebalance());
        assert!(inc.last_rebalance().incremental);
        // Threshold 0.0 forces the full path whenever anything changed
        // (a zero-change rebalance folds in as an incremental no-op).
        assert_eq!(
            full.last_rebalance().incremental,
            full.last_rebalance().changed_slots == 0
        );
        assert_eq!(mi, mf, "move counts diverge");
        assert_eq!(
            inc.framework().hypercells().len(),
            full.framework().hypercells().len()
        );
        for (a, b) in inc
            .framework()
            .hypercells()
            .iter()
            .zip(full.framework().hypercells())
        {
            assert_eq!(a.cells, b.cells);
            assert_eq!(a.members, b.members);
            assert_eq!(a.prob.to_bits(), b.prob.to_bits());
        }
        assert_eq!(
            inc.clustering().num_groups(),
            full.clustering().num_groups()
        );
        for (x, y) in inc
            .clustering()
            .groups()
            .iter()
            .zip(full.clustering().groups())
        {
            assert_eq!(x.hypercells, y.hypercells);
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn incremental_path_is_bit_identical_to_full() {
        assert_paths_agree(|s| {
            s.unsubscribe(SubscriptionId(2)).unwrap();
            s.resubscribe(SubscriptionId(5), rect1(0.5, 3.5)).unwrap();
            let _ = s.subscribe(rect1(10.0, 17.0));
        });
        // Net-zero churn: subscribe then immediately unsubscribe, and
        // resubscribe back to the original rectangle.
        assert_paths_agree(|s| {
            let id = s.subscribe(rect1(1.0, 2.0));
            s.unsubscribe(id).unwrap();
            s.resubscribe(SubscriptionId(0), rect1(9.0, 9.5)).unwrap();
            s.resubscribe(SubscriptionId(0), rect1(0.0, 5.5)).unwrap();
        });
        // Empty delta.
        assert_paths_agree(|_| {});
    }

    #[test]
    fn rebalance_reports_incremental_stats() {
        let mut s = system(2).with_max_dirty(0.5);
        for i in 0..10 {
            s.subscribe(rect1(i as f64, i as f64 + 4.0));
        }
        s.rebalance(); // 10/10 dirty → full path
        assert!(!s.last_rebalance().incremental);
        assert_eq!(s.last_rebalance().changed_slots, 10);
        s.resubscribe(SubscriptionId(0), rect1(2.0, 6.0)).unwrap();
        s.rebalance(); // 1/10 dirty → incremental
        let stats = s.last_rebalance();
        assert!(stats.incremental);
        assert_eq!(stats.changed_slots, 1);
        assert!(stats.dirty_cells > 0);
        assert!(stats.unchanged_hypercells > 0);
        // The default threshold comes from the environment knob.
        assert!((0.0..=1.0).contains(&super::incremental_max_dirty()));
    }

    #[test]
    fn try_rebalance_matches_rebalance_and_exposes_slots() {
        let mut a = system(2);
        let mut b = system(2);
        for s in [&mut a, &mut b] {
            for i in 0..6 {
                s.subscribe(rect1(i as f64, i as f64 + 3.0));
            }
        }
        let moves = a.rebalance();
        let stats = b.try_rebalance().expect("healthy rebalance validates");
        assert_eq!(stats.moves, moves);
        assert_eq!(stats, b.last_rebalance());
        assert_eq!(
            a.framework().hypercells().len(),
            b.framework().hypercells().len()
        );
        // Slot accessor: ids index the slots, tombstones stay visible.
        let id = SubscriptionId(2);
        b.unsubscribe(id).unwrap();
        assert_eq!(b.subscription_slots().len(), 6);
        assert!(b.subscription_slots()[id.index()].is_none());
        assert!(b.subscription_slots()[0].is_some());
        b.try_rebalance().expect("tombstone fold validates");
        assert_eq!(b.framework().num_subscribers(), 6);
        // Error rendering is exercised even without a failure path.
        let err = RebalanceError::Panicked("boom".into());
        assert!(err.to_string().contains("boom"));
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("s"));
        assert_eq!(panic_message(payload.as_ref()), "s");
        let payload: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(payload.as_ref()), "static");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }

    #[test]
    fn ids_stay_stable_across_churn() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 5.0));
        let b = s.subscribe(rect1(5.0, 10.0));
        s.unsubscribe(a).unwrap();
        let c = s.subscribe(rect1(10.0, 15.0));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        s.rebalance();
        assert_eq!(s.num_subscriptions(), 2);
    }
}
