//! Dynamic subscription maintenance (Section 6, item 5 of the paper).
//!
//! Real systems see subscribers join, leave, and change their
//! rectangles continuously. Rebuilding the clustering from scratch on
//! every change wastes the work already done; the paper observes that
//! the iterative algorithms (K-means / Forgy) "are well suited for
//! dynamic changes in subscription structure": after a change, the old
//! partition is still approximately right, so a *warm-started*
//! re-balancing pass converges in a handful of moves.
//!
//! [`DynamicClustering`] owns the subscription population and the
//! current clustering. Subscriptions are added/removed with stable
//! ids; [`DynamicClustering::rebalance`] re-rasterizes and re-balances
//! from the previous assignment, reporting how many hyper-cell moves
//! the update needed.

use geometry::{Grid, Point, Rect};

use crate::clustering::Clustering;
use crate::framework::{CellProbability, GridFramework};
use crate::kmeans::KMeans;

/// Stable identifier of a dynamic subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub usize);

impl SubscriptionId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A clustering that tracks subscription churn and re-balances
/// incrementally.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{
///     CellProbability, DynamicClustering, KMeans, KMeansVariant,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let probs = CellProbability::uniform(&grid);
/// let mut dynamic = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), 2);
/// let a = dynamic.subscribe(Rect::new(vec![Interval::new(0.0, 4.0)?]));
/// let _b = dynamic.subscribe(Rect::new(vec![Interval::new(6.0, 10.0)?]));
/// let moves = dynamic.rebalance();
/// assert!(dynamic.clustering().num_groups() <= 2);
/// dynamic.unsubscribe(a)?;
/// let _ = moves;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicClustering {
    grid: Grid,
    probs: CellProbability,
    algorithm: KMeans,
    k: usize,
    /// Slot per subscription; `None` marks an unsubscribed tombstone so
    /// ids stay stable.
    subscriptions: Vec<Option<Rect>>,
    framework: GridFramework,
    clustering: Clustering,
    /// Changes since the last rebalance.
    pending: usize,
}

/// Error returned by [`DynamicClustering::unsubscribe`] and
/// [`DynamicClustering::resubscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicError {
    /// The id was never issued or already unsubscribed.
    UnknownSubscription(SubscriptionId),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::UnknownSubscription(id) => {
                write!(f, "subscription #{} does not exist", id.0)
            }
        }
    }
}

impl std::error::Error for DynamicError {}

impl DynamicClustering {
    /// Creates an empty dynamic clustering over the grid.
    pub fn new(grid: Grid, probs: CellProbability, algorithm: KMeans, k: usize) -> Self {
        let framework = GridFramework::build(grid.clone(), &[], &probs, None);
        let clustering = Clustering::from_assignment(&framework, Vec::new());
        DynamicClustering {
            grid,
            probs,
            algorithm,
            k,
            subscriptions: Vec::new(),
            framework,
            clustering,
            pending: 0,
        }
    }

    /// Registers a new subscription, returning its stable id. The
    /// clustering is not updated until [`DynamicClustering::rebalance`].
    pub fn subscribe(&mut self, rect: Rect) -> SubscriptionId {
        self.subscriptions.push(Some(rect));
        self.pending += 1;
        SubscriptionId(self.subscriptions.len() - 1)
    }

    /// Removes a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::UnknownSubscription`] for unknown or
    /// already-removed ids.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), DynamicError> {
        match self.subscriptions.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.pending += 1;
                Ok(())
            }
            _ => Err(DynamicError::UnknownSubscription(id)),
        }
    }

    /// Replaces a subscription's rectangle (a preference change).
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::UnknownSubscription`] for unknown or
    /// removed ids.
    pub fn resubscribe(&mut self, id: SubscriptionId, rect: Rect) -> Result<(), DynamicError> {
        match self.subscriptions.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = Some(rect);
                self.pending += 1;
                Ok(())
            }
            _ => Err(DynamicError::UnknownSubscription(id)),
        }
    }

    /// Number of live (non-tombstoned) subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.subscriptions.iter().filter(|s| s.is_some()).count()
    }

    /// Number of changes since the last rebalance.
    pub fn pending_changes(&self) -> usize {
        self.pending
    }

    /// The current clustering (as of the last rebalance).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The current grid framework (as of the last rebalance).
    pub fn framework(&self) -> &GridFramework {
        &self.framework
    }

    /// The group currently matched to an event point, if any.
    pub fn group_of_point(&self, p: &Point) -> Option<usize> {
        self.clustering.group_of_point(&self.framework, p)
    }

    /// Re-rasterizes the (changed) subscription population and
    /// re-balances the clustering, warm-starting each hyper-cell from
    /// the group its cells belonged to before the change. Returns the
    /// number of hyper-cell moves the re-balancing needed — the warm
    /// start's convergence cost.
    pub fn rebalance(&mut self) -> usize {
        // Tombstoned slots keep their index but rasterize nothing, so
        // membership vectors stay aligned with ids.
        let rects: Vec<Rect> = self
            .subscriptions
            .iter()
            .map(|s| s.clone().unwrap_or_else(|| empty_rect(self.grid.dim())))
            .collect();
        let new_fw = GridFramework::build(self.grid.clone(), &rects, &self.probs, None);
        let l = new_fw.hypercells().len();
        if l == 0 {
            self.framework = new_fw;
            self.clustering = Clustering::from_assignment(&self.framework, Vec::new());
            self.pending = 0;
            return 0;
        }
        let k = self.k.min(l);
        // Warm start: a new hyper-cell inherits the group that most of
        // its cells belonged to before (falling back to round-robin for
        // cells in previously empty regions).
        let seed: Vec<usize> = new_fw
            .hypercells()
            .iter()
            .enumerate()
            .map(|(h, hc)| {
                let mut votes = std::collections::HashMap::new();
                for &cell in &hc.cells {
                    if let Some(old_h) = self.framework.hyper_of_cell(cell) {
                        let g = self.clustering.group_of_hyper(old_h);
                        if g < k {
                            *votes.entry(g).or_insert(0usize) += 1;
                        }
                    }
                }
                votes
                    .into_iter()
                    .max_by_key(|&(g, count)| (count, usize::MAX - g))
                    .map(|(g, _)| g)
                    .unwrap_or(h % k)
            })
            .collect();
        let (clustering, moves) = self.algorithm.cluster_seeded(&new_fw, k, &seed);
        self.framework = new_fw;
        self.clustering = clustering;
        self.pending = 0;
        moves
    }

    /// Rebuilds from scratch (cold start) — the baseline the warm
    /// start is measured against. Returns the moves performed.
    pub fn rebuild(&mut self) -> usize {
        let rects: Vec<Rect> = self
            .subscriptions
            .iter()
            .map(|s| s.clone().unwrap_or_else(|| empty_rect(self.grid.dim())))
            .collect();
        let new_fw = GridFramework::build(self.grid.clone(), &rects, &self.probs, None);
        let l = new_fw.hypercells().len();
        let k = self.k.min(l.max(1));
        // Cold seed: round-robin (deliberately uninformed).
        let seed: Vec<usize> = (0..l).map(|h| h % k).collect();
        let (clustering, moves) = if l == 0 {
            (Clustering::from_assignment(&new_fw, Vec::new()), 0)
        } else {
            self.algorithm.cluster_seeded(&new_fw, k, &seed)
        };
        self.framework = new_fw;
        self.clustering = clustering;
        self.pending = 0;
        moves
    }
}

/// A rectangle that rasterizes to no cell (used for tombstoned slots).
fn empty_rect(dim: usize) -> Rect {
    use geometry::Interval;
    Rect::new(
        (0..dim)
            .map(|_| Interval::new(0.0, 0.0).expect("empty interval is valid"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansVariant;
    use geometry::Interval;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn system(k: usize) -> DynamicClustering {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let probs = CellProbability::uniform(&grid);
        DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), k)
    }

    #[test]
    fn empty_system() {
        let mut s = system(3);
        assert_eq!(s.num_subscriptions(), 0);
        assert_eq!(s.rebalance(), 0);
        assert_eq!(s.clustering().num_groups(), 0);
        assert_eq!(s.group_of_point(&Point::new(vec![5.0])), None);
    }

    #[test]
    fn subscribe_then_rebalance_matches_events() {
        let mut s = system(2);
        s.subscribe(rect1(0.0, 8.0));
        s.subscribe(rect1(12.0, 20.0));
        assert_eq!(s.pending_changes(), 2);
        s.rebalance();
        assert_eq!(s.pending_changes(), 0);
        let left = s.group_of_point(&Point::new(vec![3.0]));
        let right = s.group_of_point(&Point::new(vec![15.0]));
        assert!(left.is_some() && right.is_some());
        assert_ne!(left, right);
    }

    #[test]
    fn unsubscribe_removes_interest() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 8.0));
        s.subscribe(rect1(12.0, 20.0));
        s.rebalance();
        assert!(s.group_of_point(&Point::new(vec![3.0])).is_some());
        s.unsubscribe(a).unwrap();
        s.rebalance();
        // Nobody is interested around 3.0 anymore.
        assert_eq!(s.group_of_point(&Point::new(vec![3.0])), None);
        assert_eq!(s.num_subscriptions(), 1);
    }

    #[test]
    fn unsubscribe_errors() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 5.0));
        s.unsubscribe(a).unwrap();
        assert_eq!(s.unsubscribe(a), Err(DynamicError::UnknownSubscription(a)));
        assert_eq!(
            s.unsubscribe(SubscriptionId(99)),
            Err(DynamicError::UnknownSubscription(SubscriptionId(99)))
        );
        assert_eq!(
            s.resubscribe(SubscriptionId(99), rect1(0.0, 1.0)),
            Err(DynamicError::UnknownSubscription(SubscriptionId(99)))
        );
        // A tombstoned id is just as dead as a never-issued one, and
        // the failed calls leave no pending change behind.
        assert_eq!(
            s.resubscribe(a, rect1(0.0, 1.0)),
            Err(DynamicError::UnknownSubscription(a))
        );
        let pending = s.pending_changes();
        let _ = s.unsubscribe(a);
        let _ = s.resubscribe(a, rect1(2.0, 3.0));
        assert_eq!(s.pending_changes(), pending);
        // Errors render their id for diagnostics.
        assert_eq!(
            DynamicError::UnknownSubscription(a).to_string(),
            format!("subscription #{} does not exist", a.0)
        );
    }

    #[test]
    fn resubscribe_moves_interest() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 5.0));
        s.rebalance();
        assert!(s.group_of_point(&Point::new(vec![2.0])).is_some());
        s.resubscribe(a, rect1(10.0, 15.0)).unwrap();
        s.rebalance();
        assert_eq!(s.group_of_point(&Point::new(vec![2.0])), None);
        assert!(s.group_of_point(&Point::new(vec![12.0])).is_some());
    }

    #[test]
    fn warm_start_needs_fewer_moves_than_cold_rebuild() {
        // Build a 2-community population, rebalance, then perturb with
        // one extra subscription: the warm restart should move (far)
        // fewer hyper-cells than a cold round-robin rebuild.
        let mut s = system(2);
        for i in 0..8 {
            s.subscribe(rect1(i as f64 * 0.3, 8.0 - i as f64 * 0.3));
            s.subscribe(rect1(12.0 + i as f64 * 0.3, 20.0 - i as f64 * 0.3));
        }
        s.rebalance();
        s.subscribe(rect1(1.0, 7.0));
        let warm_moves = s.rebalance();

        // Same perturbation, cold rebuild.
        let mut cold = system(2);
        for i in 0..8 {
            cold.subscribe(rect1(i as f64 * 0.3, 8.0 - i as f64 * 0.3));
            cold.subscribe(rect1(12.0 + i as f64 * 0.3, 20.0 - i as f64 * 0.3));
        }
        cold.rebalance();
        cold.subscribe(rect1(1.0, 7.0));
        let cold_moves = cold.rebuild();
        assert!(
            warm_moves <= cold_moves,
            "warm {warm_moves} > cold {cold_moves}"
        );
    }

    #[test]
    fn ids_stay_stable_across_churn() {
        let mut s = system(2);
        let a = s.subscribe(rect1(0.0, 5.0));
        let b = s.subscribe(rect1(5.0, 10.0));
        s.unsubscribe(a).unwrap();
        let c = s.subscribe(rect1(10.0, 15.0));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        s.rebalance();
        assert_eq!(s.num_subscriptions(), 2);
    }
}
